//! # PRIME — processing in ReRAM-based main memory
//!
//! A from-scratch Rust reproduction of *PRIME: A Novel
//! Processing-in-Memory Architecture for Neural Network Computation in
//! ReRAM-Based Main Memory* (Chi et al., ISCA 2016).
//!
//! PRIME turns part of a ReRAM main memory into a neural-network
//! accelerator: *full-function (FF) subarrays* morph between ordinary
//! storage and analog matrix-vector computation, reusing the memory's own
//! peripheral circuits instead of adding a processor. This crate is a
//! façade re-exporting the whole stack:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`device`] | `prime-device` | ReRAM cells, MLC encoding, crossbar arrays |
//! | [`circuits`] | `prime-circuits` | drivers, reconfigurable SAs, sigmoid/ReLU/pooling, the precision composing scheme |
//! | [`mem`] | `prime-mem` | memory geometry, timing, Table I commands, OS runtime |
//! | [`nn`] | `prime-nn` | tensors, dynamic fixed point, layers, training, MlBench workloads |
//! | [`compiler`] | `prime-compiler` | NN-to-crossbar mapping (replication / split-merge / inter-bank) |
//! | [`core`] | `prime-core` | FF mats, Buffer subarrays, the PRIME controller, the Fig. 7 API |
//! | [`serve`] | `prime-serve` | TCP inference serving: wire protocol, batch collector, admission control, load bencher |
//! | [`sim`] | `prime-sim` | machine models and the figure-regeneration experiments |
//!
//! # Examples
//!
//! The five-call software/hardware interface of the paper's Fig. 7:
//!
//! ```no_run
//! use prime::core::{NnParamFile, PrimeProgram};
//! use prime::nn::MlBench;
//!
//! let spec = MlBench::MlpS.spec();
//! let network = spec.to_network()?; // weights would come from offline training
//! let params = NnParamFile { spec, network };
//!
//! let mut program = PrimeProgram::new();
//! program.map_topology(&params)?;
//! program.program_weight(&params)?;
//! let compiled = program.config_datapath()?;
//! let output = program.run(&vec![0.5; 784])?;
//! let class = PrimeProgram::post_proc(&output);
//! println!("{} commands, class {class}", compiled.dataflow_commands.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use prime_analyze as analyze;
pub use prime_circuits as circuits;
pub use prime_compiler as compiler;
pub use prime_core as core;
pub use prime_device as device;
pub use prime_mem as mem;
pub use prime_nn as nn;
pub use prime_serve as serve;
pub use prime_sim as sim;
