//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace uses:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!` / `prop_assert_eq!`, the [`Strategy`] trait with
//! `prop_flat_map` / `prop_map`, [`Just`], [`any`], numeric range
//! strategies, tuple strategies, and [`collection::vec`].
//!
//! Unlike real proptest there is no shrinking: each test runs
//! `ProptestConfig::cases` deterministically-seeded random cases and
//! panics with the failing case's message on the first failure. Seeds
//! are fixed per case index, so failures reproduce exactly.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SeedableRng};

/// The RNG handed to strategies while generating a case.
pub type TestRng = rand::rngs::SmallRng;

/// Runner configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed `prop_assert!` inside a test case body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runs `case` once per configured case with a per-index seeded RNG.
/// Called by the code `proptest!` expands to; not part of the public
/// proptest API surface.
pub fn run_cases<F>(config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for index in 0..config.cases {
        let seed = 0x9E37_79B9_7F4A_7C15u64 ^ u64::from(index).wrapping_mul(0xD134_2543_DE82_EF95);
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(err) = case(&mut rng) {
            panic!("proptest case {index} (seed {seed:#x}) failed: {err}");
        }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Builds a dependent strategy from each drawn value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Transforms each drawn value.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, S, F> Strategy for FlatMap<B, F>
where
    B: Strategy,
    S: Strategy,
    F: Fn(B::Value) -> S,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, T, F> Strategy for Map<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng))
    }
}

/// A strategy that always yields a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { lo: exact, hi: exact + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Returns a strategy for vectors with the given element strategy
    /// and length specification.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual proptest glob import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests. Each `fn` item takes `pattern in strategy`
/// arguments; the body may use `prop_assert!`/`prop_assert_eq!`. An
/// optional leading `#![proptest_config(expr)]` sets the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::run_cases(&__config, |__rng| {
                let ($($pat,)+) = ($($crate::Strategy::generate(&($strat), __rng),)+);
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                __outcome
            });
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Fails the current proptest case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current proptest case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)+),
                __l, __r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_case() -> impl Strategy<Value = (usize, Vec<u8>)> {
        (1usize..8).prop_flat_map(|n| (Just(n), crate::collection::vec(0u8..=9, n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn flat_map_links_length(case in pair_case()) {
            let (n, items) = case;
            prop_assert_eq!(items.len(), n);
            prop_assert!(items.iter().all(|&b| b <= 9));
        }

        #[test]
        fn destructuring_args_work((a, b) in (0u8..4, 4u8..8)) {
            prop_assert!(a < 4 && (4..8).contains(&b));
        }

        #[test]
        fn vec_exact_length(items in crate::collection::vec(any::<bool>(), 5usize)) {
            prop_assert_eq!(items.len(), 5);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_assert_panics_with_case_info() {
        crate::run_cases(&ProptestConfig::with_cases(4), |_| {
            prop_assert!(false, "forced failure");
            Ok(())
        });
    }
}
