//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde` crate's value-based
//! `Serialize`/`Deserialize` traits for the type shapes this workspace
//! uses: named/tuple/unit structs and enums with unit, tuple, and struct
//! variants. Generic types and `#[serde(...)]` attributes are not
//! supported (the workspace uses neither).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of a struct body or an enum variant's payload.
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Parsed type definition.
struct Def {
    name: String,
    /// `Some(variants)` for enums, `None` for structs.
    variants: Option<Vec<(String, Shape)>>,
    /// Body shape for structs.
    shape: Shape,
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse(input);
    gen_serialize(&def).parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse(input);
    gen_deserialize(&def).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Def {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic types ({name})");
    }
    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("unsupported struct body for {name}: {other:?}"),
            };
            Def { name, variants: None, shape }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for {name}, found {other:?}"),
            };
            Def { name, variants: Some(parse_variants(body)), shape: Shape::Unit }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Field names of a `{ .. }` body, in declaration order.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        // Consume the type up to the next comma outside angle brackets.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Number of fields in a `( .. )` body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma does not add a field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<(String, Shape)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let vname = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant, then the separating comma.
        while let Some(tok) = tokens.get(i) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push((vname, shape));
    }
    variants
}

// ------------------------------------------------------------- generation

fn gen_serialize(def: &Def) -> String {
    let name = &def.name;
    let body = match &def.variants {
        None => match &def.shape {
            Shape::Unit => "::serde::Value::Null".to_string(),
            Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
            }
            Shape::Named(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
            }
        },
        Some(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    Shape::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Shape::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Seq(::std::vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Map(::std::vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(def: &Def) -> String {
    let name = &def.name;
    let body = match &def.variants {
        None => match &def.shape {
            Shape::Unit => format!("::std::result::Result::Ok({name})"),
            Shape::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
            ),
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                    .collect();
                format!(
                    "match __v {{\n\
                         ::serde::Value::Seq(__items) if __items.len() == {n} => \
                             ::std::result::Result::Ok({name}({})),\n\
                         _ => ::std::result::Result::Err(::serde::DeError::msg(\
                             \"expected a {n}-element sequence for {name}\")),\n\
                     }}",
                    items.join(", ")
                )
            }
            Shape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::field(__v, \"{f}\")?"))
                    .collect();
                format!("::std::result::Result::Ok({name} {{ {} }})", inits.join(", "))
            }
        },
        Some(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, s)| matches!(s, Shape::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, shape)| match shape {
                    Shape::Unit => None,
                    Shape::Tuple(1) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok(\
                         {name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => match __inner {{\n\
                                 ::serde::Value::Seq(__items) if __items.len() == {n} => \
                                     ::std::result::Result::Ok({name}::{v}({})),\n\
                                 _ => ::std::result::Result::Err(::serde::DeError::msg(\
                                     \"malformed payload for variant {v}\")),\n\
                             }},",
                            items.join(", ")
                        ))
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(__inner, \"{f}\")?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            let str_arm = if unit_arms.is_empty() {
                format!(
                    "::serde::Value::Str(_) => ::std::result::Result::Err(\
                     ::serde::DeError::msg(\"{name} has no unit variants\")),"
                )
            } else {
                format!(
                    "::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::msg(\
                             \"unknown {name} variant\")),\n\
                     }},",
                    unit_arms.join("\n")
                )
            };
            let map_arm = if payload_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__k, __inner) = &__entries[0];\n\
                         match __k.as_str() {{\n\
                             {}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::msg(\
                                 \"unknown {name} variant\")),\n\
                         }}\n\
                     }}",
                    payload_arms.join("\n")
                )
            };
            format!(
                "match __v {{\n\
                     {str_arm}\n\
                     {map_arm}\n\
                     _ => ::std::result::Result::Err(::serde::DeError::msg(\
                         \"malformed value for enum {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
