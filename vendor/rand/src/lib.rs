//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small API subset it actually uses: the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`] (xoshiro256++ seeded through SplitMix64, the same
//! generator real `rand 0.8` uses for `SmallRng` on 64-bit targets), and
//! [`seq::SliceRandom::shuffle`].
//!
//! Determinism contract: a given seed always produces the same stream on
//! every platform. The exact stream differs from upstream `rand` only in
//! the `gen_range` reduction (modulo instead of Lemire widening), which no
//! test in this workspace depends on.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the stand-in for `Standard: Distribution<T>`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over half-open and inclusive ranges
/// (the stand-in for `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`. `high` must exceed `low`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                let draw = rng.next_u64() % span;
                ((low as $wide).wrapping_add(draw as $wide)) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = rng.next_u64() % (span + 1);
                ((low as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
    )*};
}
uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample(rng);
                low + unit * (high - low)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let unit = <$t as StandardSample>::sample(rng);
                low + unit * (high - low)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing random-number trait (extension methods over
/// [`RngCore`], mirroring `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws one value of an inferred type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy. The stand-in derives entropy
    /// from the system clock; use [`seed_from_u64`](Self::seed_from_u64)
    /// for reproducible streams.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(nanos)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded through SplitMix64 — the same construction
    /// real `rand 0.8` uses for `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// The default general-purpose generator (same engine as
    /// [`SmallRng`] in this stand-in).
    pub type StdRng = SmallRng;
}

/// Sequence-related random operations, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices (the subset of `rand::seq::SliceRandom` the
    /// workspace uses).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range_and_cover() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(-15i32..=15);
            assert!((-15..=15).contains(&v));
            let u = rng.gen_range(0usize..8);
            assert!(u < 8);
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
