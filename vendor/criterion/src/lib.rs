//! Offline stand-in for `criterion`.
//!
//! Implements the macro and type surface this workspace's benches use —
//! [`Criterion`], [`Bencher::iter`], [`BenchmarkId`], benchmark groups,
//! `criterion_group!` / `criterion_main!`, and [`black_box`] — backed by
//! a simple wall-clock timer instead of criterion's statistical engine.
//!
//! Each benchmark warms up briefly, then runs enough iterations to fill
//! a short measurement window and prints the mean time per iteration.
//! Passing `--quick` (or setting `CRITERION_SMOKE=1`) runs every closure
//! exactly once, which CI uses as a does-it-run smoke check. Unknown
//! CLI flags (as passed by `cargo bench`) are ignored; a positional
//! argument filters benchmarks by substring, like the real harness.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How a benchmark run measures.
#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Warm up, then measure a timed window.
    Measure,
    /// Run each closure once (smoke/CI mode).
    Smoke,
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    mode: Mode,
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut filter = None;
        let mut mode = Mode::Measure;
        if std::env::var_os("CRITERION_SMOKE").is_some() {
            mode = Mode::Smoke;
        }
        for arg in &args {
            match arg.as_str() {
                "--quick" | "--test" | "--smoke" => mode = Mode::Smoke,
                a if a.starts_with("--") => {} // cargo-bench plumbing; ignored
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            filter,
            mode,
            measurement_window: Duration::from_millis(40),
        }
    }
}

impl Criterion {
    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F>(&mut self, id: &str, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.selected(id) {
            return;
        }
        let mut bencher = Bencher {
            mode: self.mode,
            window: self.measurement_window,
            report: None,
        };
        routine(&mut bencher);
        match bencher.report {
            Some(report) => println!("{id:<48} {report}"),
            None => println!("{id:<48} (no measurement)"),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        self.criterion.run_one(&full, routine);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        self.criterion.run_one(&full, |b| routine(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Builds an id from just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing handle passed to benchmark routines.
pub struct Bencher {
    mode: Mode,
    window: Duration,
    report: Option<String>,
}

impl Bencher {
    /// Times the routine and records the mean time per iteration.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        if matches!(self.mode, Mode::Smoke) {
            let start = Instant::now();
            black_box(routine());
            self.report = Some(format!("smoke ok ({:?})", start.elapsed()));
            return;
        }

        // Warm-up: discover an iteration count that fills the window.
        let mut iters_per_batch: u64 = 1;
        let warmup_deadline = Instant::now() + self.window / 4;
        let mut last_batch;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            last_batch = start.elapsed();
            if Instant::now() >= warmup_deadline || last_batch >= self.window / 8 {
                break;
            }
            iters_per_batch = iters_per_batch.saturating_mul(2);
        }

        // Measurement: repeat batches until the window is spent.
        let mut total = last_batch;
        let mut iterations = iters_per_batch;
        while total < self.window {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            total += start.elapsed();
            iterations += iters_per_batch;
        }

        let ns_per_iter = total.as_nanos() as f64 / iterations as f64;
        let mut report = String::new();
        let _ = write!(report, "{} /iter ({iterations} iters)", format_ns(ns_per_iter));
        self.report = Some(report);
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group of benchmark functions (stand-in for criterion's).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion {
            filter: None,
            mode: Mode::Measure,
            measurement_window: Duration::from_millis(2),
        };
        let mut counter = 0u64;
        c.bench_function("tiny", |b| {
            b.iter(|| {
                counter = counter.wrapping_add(1);
                counter
            })
        });
        assert!(counter > 0, "routine should have run at least once");
    }

    #[test]
    fn smoke_mode_runs_exactly_once_per_iter_call() {
        let mut c = Criterion {
            filter: None,
            mode: Mode::Smoke,
            measurement_window: Duration::from_millis(40),
        };
        let mut runs = 0u32;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("match-me".into()),
            mode: Mode::Smoke,
            measurement_window: Duration::from_millis(40),
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("yes-match-me", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn group_ids_compose() {
        let mut c = Criterion {
            filter: Some("grp/7".into()),
            mode: Mode::Smoke,
            measurement_window: Duration::from_millis(40),
        };
        let mut ran = false;
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| ran = n == 7)
        });
        group.finish();
        assert!(ran);
    }
}
