//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a serialization framework with the same *names* as serde —
//! [`Serialize`], [`Deserialize`], `serde::de::DeserializeOwned`, derive
//! macros re-exported from `serde_derive` — but a much simpler data
//! model: every serializable type converts to and from a self-describing
//! [`Value`] tree, and `serde_json` renders that tree as JSON text.
//!
//! Supported type shapes match what this workspace derives: named, tuple,
//! and unit structs; enums with unit, newtype, tuple, and struct variants
//! (externally tagged, as real serde encodes them); and the std types
//! used in fields (integers, floats, `bool`, `String`, `Vec`, `Option`,
//! tuples, and `HashMap` — maps serialize as sequences of `[key, value]`
//! pairs so non-string keys round-trip).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the stand-in's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (used when the value is negative).
    I64(i64),
    /// Unsigned integer (used for all non-negative integers).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples, maps-as-pair-lists).
    Seq(Vec<Value>),
    /// Ordered string-keyed map (structs and enum payloads).
    Map(Vec<(String, Value)>),
}

/// Deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        DeError(message.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization traits namespace, mirroring `serde::de`.
pub mod de {
    /// Owned deserialization — in this stand-in every [`Deserialize`]
    /// type qualifies, matching how the workspace uses the bound.
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}

    pub use super::{DeError, Deserialize};
}

/// Serialization traits namespace, mirroring `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}

/// Looks up a struct field by name (used by derive-generated code).
///
/// # Errors
///
/// Returns [`DeError`] if `v` is not a map or lacks the field.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v {
        Value::Map(entries) => match entries.iter().find(|(k, _)| k == name) {
            Some((_, inner)) => T::from_value(inner),
            None => Err(DeError::msg(format!("missing field `{name}`"))),
        },
        _ => Err(DeError::msg(format!("expected a map with field `{name}`"))),
    }
}

// ------------------------------------------------------------ primitives

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    _ => return Err(DeError::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::msg(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let raw = *self as i64;
                if raw >= 0 { Value::U64(raw as u64) } else { Value::I64(raw) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| DeError::msg(concat!(stringify!($t), " out of range")))?,
                    _ => return Err(DeError::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::msg(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            _ => Err(DeError::msg("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 is exact, so the round trip is lossless.
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::msg("expected single-character string")),
        }
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::msg("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::msg("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::msg("expected tuple sequence")),
                }
            }
        }
    )*};
}
impl_tuple!(
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
);

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Pair-list encoding: key order is not significant, and non-string
        // keys (this workspace uses tuple keys) round-trip unchanged.
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items
                .iter()
                .map(|pair| match pair {
                    Value::Seq(kv) if kv.len() == 2 => {
                        Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                    }
                    _ => Err(DeError::msg("expected [key, value] pair")),
                })
                .collect(),
            _ => Err(DeError::msg("expected map pair list")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::msg("expected null")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.25f32.to_value()).unwrap(), 1.25);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = "hello".to_string();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1i64, -2, 3];
        assert_eq!(Vec::<i64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = Some(9);
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), o);
        let none: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&none.to_value()).unwrap(), none);
        let t = (1usize, 2usize);
        assert_eq!(<(usize, usize)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn hash_maps_with_tuple_keys_round_trip() {
        let mut m: HashMap<(usize, usize), Vec<i64>> = HashMap::new();
        m.insert((1, 2), vec![3, 4]);
        m.insert((0, 0), vec![]);
        let back = HashMap::<(usize, usize), Vec<i64>>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn field_lookup_reports_missing() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(field::<u64>(&v, "a").unwrap(), 1);
        assert!(field::<u64>(&v, "b").is_err());
    }
}
