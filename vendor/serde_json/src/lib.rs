//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` [`Value`] model as JSON text and parses
//! it back. The API surface matches what this workspace calls:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`Error`].
//!
//! Encoding notes:
//! - Floats are written with Rust's shortest round-trip `{:?}` format;
//!   non-finite floats are written as `null` (as real serde_json does).
//! - Struct fields keep declaration order; enums are externally tagged.
//! - `HashMap`s arrive from the serde stand-in as pair-list sequences,
//!   so they render as JSON arrays of `[key, value]` arrays.

use serde::{de::DeserializeOwned, DeError, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value to indented JSON text.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a deserializable value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(Error::from)
}

// ------------------------------------------------------------------ writer

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_delimited(items.iter(), '[', ']', indent, depth, out, |item, out, ind, d| {
            write_value(item, ind, d, out);
        }),
        Value::Map(entries) => write_delimited(entries.iter(), '{', '}', indent, depth, out, |(k, v), out, ind, d| {
            write_string(k, out);
            out.push(':');
            if ind.is_some() {
                out.push(' ');
            }
            write_value(v, ind, d, out);
        }),
    }
}

fn write_delimited<I, T>(
    items: I,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: impl FnMut(T, &mut String, Option<usize>, usize),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(indent, depth + 1, out);
        write_item(item, out, indent, depth + 1);
    }
    if !empty {
        newline_indent(indent, depth, out);
    }
    out.push(close);
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{:?}` is Rust's shortest round-trip formatting; it always
        // includes a decimal point or exponent, so the text re-parses
        // as a float rather than an integer.
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: require a trailing \uXXXX low surrogate.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::msg("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let text = std::str::from_utf8(hex).map_err(|_| Error::msg("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_through_text() {
        for json in ["null", "true", "false", "42", "-7", "1.5", "\"hi\""] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1_f64, 1.0 / 3.0, 1e-30, -2.5e17, f64::MIN_POSITIVE] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "round trip failed for {f} via {text}");
        }
    }

    #[test]
    fn nested_structures_parse() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x"], "b": {"c": null}}"#).unwrap();
        match &v {
            Value::Map(entries) => {
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[0].0, "a");
            }
            other => panic!("expected map, got {other:?}"),
        }
        // Compact output re-parses to the same tree.
        let text = to_string(&v).unwrap();
        let again: Value = from_str(&text).unwrap();
        assert_eq!(again, v);
    }

    #[test]
    fn pretty_output_re_parses() {
        let v: Value = from_str(r#"[{"k": 1}, {"k": 2}]"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let again: Value = from_str(&pretty).unwrap();
        assert_eq!(again, v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" \\ \u{1F600} \u{7}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }
}
