//! Golden fixtures for the Pass-3 program abstract interpreter: each
//! deliberately corrupted plan must trip its pinned `P0xx` code, the
//! statically lowered plans of the paper's workloads must be clean, and
//! (by property) any deployment Pass 3 lets through must run inference —
//! plain and seeded-noise — without an internal runtime error, under
//! both mapping strategies.

use proptest::prelude::*;

use prime::analyze::{
    analyze_program, lower_program, Code, ProgramPlan, ProgramTile, Severity, Target,
};
use prime::compiler::{map_network, CompileOptions, MappingStrategy, NetworkMapping};
use prime::core::{PrimeError, PrimeSystem};
use prime::device::NoiseModel;
use prime::nn::{
    Activation, Conv2d, FullyConnected, Layer, MlBench, Network, NetworkSpec, Pool2d,
    PoolKind,
};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// `PrimeSystem::deploy` maps without replication.
fn options(strategy: MappingStrategy) -> CompileOptions {
    CompileOptions { replicate: false, ..CompileOptions::fixed(strategy) }
}

/// A workload, its mapping, and its legal statically lowered plan — the
/// base every corruption fixture starts from.
fn lowered(bench: MlBench) -> (NetworkSpec, Target, NetworkMapping, ProgramPlan) {
    let target = Target::prime_default();
    let spec = bench.spec();
    let mapping = map_network(&spec, &target.hw, options(MappingStrategy::ReplicateDense))
        .expect("workload maps");
    let plan = lower_program(&spec, &target, &mapping).expect("workload lowers");
    (spec, target, mapping, plan)
}

fn codes_of(diags: &[prime::analyze::Diagnostic]) -> Vec<Code> {
    diags.iter().map(|d| d.code).collect()
}

#[test]
fn lowered_workload_plans_are_clean() {
    for strategy in [MappingStrategy::ReplicateDense, MappingStrategy::SharedKernel] {
        for bench in MlBench::ALL {
            let target = Target::prime_default();
            let spec = bench.spec();
            let mapping =
                map_network(&spec, &target.hw, options(strategy)).expect("workload maps");
            let plan = lower_program(&spec, &target, &mapping).expect("workload lowers");
            let diags = analyze_program(&spec, &target, &mapping, &plan);
            assert!(
                diags.iter().all(|d| d.severity < Severity::Warning),
                "{} [{}]: {}",
                bench.name(),
                strategy.name(),
                prime::analyze::render_human(&diags)
            );
        }
    }
}

#[test]
fn shrunken_staging_region_is_rejected_with_p024() {
    let (spec, target, mapping, mut plan) = lowered(MlBench::MlpS);
    // Declare one word less than the op stages: the last staged word is
    // read before any write defines it.
    plan.layers[0].out_addr -= 1;
    let codes = codes_of(&analyze_program(&spec, &target, &mapping, &plan));
    assert!(codes.contains(&Code::P024), "expected P024, got {codes:?}");
}

#[test]
fn buffer_spill_is_rejected_with_p025() {
    let (spec, target, mapping, mut plan) = lowered(MlBench::MlpS);
    // Slide the first staging window to the very end of the buffer,
    // keeping its declared size intact so P024 stays silent.
    let words = plan.layers[0].out_addr - plan.layers[0].in_addr;
    plan.layers[0].in_addr = plan.buffer_words as u64 - 1;
    plan.layers[0].out_addr = plan.layers[0].in_addr + words;
    let codes = codes_of(&analyze_program(&spec, &target, &mapping, &plan));
    assert!(codes.contains(&Code::P025), "expected P025, got {codes:?}");
}

#[test]
fn overlapping_live_regions_are_rejected_with_p025() {
    let (spec, target, mapping, mut plan) = lowered(MlBench::MlpS);
    // Move layer 1's staging window onto layer 0's still-live region,
    // preserving its declared size.
    let words = plan.layers[1].out_addr - plan.layers[1].in_addr;
    plan.layers[1].in_addr = plan.layers[0].in_addr;
    plan.layers[1].out_addr = plan.layers[1].in_addr + words;
    let codes = codes_of(&analyze_program(&spec, &target, &mapping, &plan));
    assert!(codes.contains(&Code::P025), "expected P025, got {codes:?}");
}

#[test]
fn ring_schedule_deviation_is_rejected_with_p026() {
    // CNN-1's conv is resident on the default target; a plan claiming a
    // different chunking than the conv_staging contract would key a
    // still-live halo row into an occupied ring slot.
    let (spec, target, mapping, mut plan) = lowered(MlBench::Cnn1);
    let conv = plan
        .layers
        .iter()
        .position(|l| matches!(l.op, prime::analyze::ProgramOp::Conv { resident: true, .. }))
        .expect("CNN-1 has a resident conv");
    if let prime::analyze::ProgramOp::Conv { ref mut chunk_pixels, .. } =
        plan.layers[conv].op
    {
        *chunk_pixels += 1;
    }
    // Keep the declared window in step with the inflated op so the P024
    // size check stays silent and the schedule check speaks alone.
    let required = plan.layers[conv].op.staging_words(plan.layers[conv].inputs) as u64;
    plan.layers[conv].out_addr = plan.layers[conv].in_addr + required;
    let codes = codes_of(&analyze_program(&spec, &target, &mapping, &plan));
    assert!(codes.contains(&Code::P026), "expected P026, got {codes:?}");
}

#[test]
fn unprovable_merge_register_is_rejected_with_p027() {
    let (spec, target, mapping, mut plan) = lowered(MlBench::MlpS);
    // A bias at the register limit pushes the merged interval past i64.
    plan.layers[0].bias_peak = i64::MAX;
    let codes = codes_of(&analyze_program(&spec, &target, &mapping, &plan));
    assert!(codes.contains(&Code::P027), "expected P027, got {codes:?}");
}

#[test]
fn vacuous_precision_budget_is_flagged_with_p028() {
    let (spec, target, mapping, mut plan) = lowered(MlBench::MlpS);
    // A 63-bit shift on a non-final ReLU layer discards every bit the
    // layer computes: the output interval provably collapses to {0}.
    plan.layers[0].relu = true;
    plan.layers[0].requant_shift = 63;
    let diags = analyze_program(&spec, &target, &mapping, &plan);
    let p028: Vec<_> = diags.iter().filter(|d| d.code == Code::P028).collect();
    assert!(!p028.is_empty(), "expected P028, got {:?}", codes_of(&diags));
    assert!(
        p028.iter().all(|d| d.severity == Severity::Warning),
        "P028 must be a warning"
    );
}

#[test]
fn write_armed_shared_tile_is_rejected_with_p029() {
    let (spec, target, mapping, mut plan) = lowered(MlBench::MlpS);
    plan.layers[0].tiles[0] = ProgramTile { aliased: true, write_armed: true };
    let codes = codes_of(&analyze_program(&spec, &target, &mapping, &plan));
    assert!(codes.contains(&Code::P029), "expected P029, got {codes:?}");
    // Aliased but compute-mapped (copy-on-write armed) is the legal
    // shared-kernel steady state — not a finding.
    plan.layers[0].tiles[0] = ProgramTile { aliased: true, write_armed: false };
    let codes = codes_of(&analyze_program(&spec, &target, &mapping, &plan));
    assert!(!codes.contains(&Code::P029), "aliased read-only tile misflagged");
}

#[test]
fn creditless_recycle_edge_is_rejected_with_p030() {
    let (spec, target, mapping, mut plan) = lowered(MlBench::MlpS);
    // Split the single stage into a two-stage chain, then strip the
    // recycle credits: stage 0 blocks on recv before the final stage can
    // ever feed the recycle channel.
    let n = plan.layers.len();
    plan.stages = vec![
        prime::analyze::ProgramStage { bank: 0, layers: (0, 1) },
        prime::analyze::ProgramStage { bank: 1, layers: (1, n) },
    ];
    plan.recycle_credits = 0;
    let codes = codes_of(&analyze_program(&spec, &target, &mapping, &plan));
    assert!(codes.contains(&Code::P030), "expected P030, got {codes:?}");
}

#[test]
fn broken_stage_chain_is_rejected_with_p030() {
    let (spec, target, mapping, mut plan) = lowered(MlBench::MlpS);
    let n = plan.layers.len();
    // A duplicate bank gets no thread of its own; its channel never
    // drains.
    plan.stages = vec![
        prime::analyze::ProgramStage { bank: 0, layers: (0, 1) },
        prime::analyze::ProgramStage { bank: 0, layers: (1, n) },
    ];
    let codes = codes_of(&analyze_program(&spec, &target, &mapping, &plan));
    assert!(codes.contains(&Code::P030), "expected P030, got {codes:?}");
}

/// A small conv/pool/fc network exercising both planned-op families.
fn cnn_net(seed: u64) -> Network {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = Network::new(vec![
        Layer::Conv(Conv2d::new(1, 3, 3, 8, 8, 1, Activation::Relu)),
        Layer::Pool(Pool2d::new(PoolKind::Max, 3, 8, 8, 2)),
        Layer::Pool(Pool2d::new(PoolKind::Mean, 3, 4, 4, 2)),
        Layer::Fc(FullyConnected::new(12, 4, Activation::Identity)),
    ])
    .expect("shapes chain");
    net.init_random(&mut rng);
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Pass 3 accepted ⇒ the runner executes without an internal error,
    /// on both the plain and the seeded-noise path, under both mapping
    /// strategies. Deployment refusals must be typed static rejections.
    #[test]
    fn accepted_programs_run_without_internal_errors(
        seed in any::<u64>(),
        strategy_bit in any::<bool>(),
    ) {
        let strategy = if strategy_bit {
            MappingStrategy::SharedKernel
        } else {
            MappingStrategy::ReplicateDense
        };
        let net = cnn_net(seed);
        let mut system = PrimeSystem::new(4, 2, 4, 2048);
        let calibration = [0.5f32; 64];
        match system.deploy_with(&net, &calibration, strategy) {
            Ok(()) => {
                let inputs: Vec<Vec<f32>> = (0..3)
                    .map(|b| (0..64).map(|i| ((b + i) % 9) as f32 / 9.0).collect())
                    .collect();
                let out = system.infer_batch(&inputs);
                prop_assert!(
                    !matches!(out, Err(PrimeError::Internal { .. })),
                    "accepted program hit an internal error: {out:?}"
                );
                let noise = NoiseModel { program_sigma: 0.0, read_sigma: 0.05 };
                let noisy = system.infer_batch_noisy(&inputs, &noise, 0xDEED ^ seed);
                prop_assert!(
                    !matches!(noisy, Err(PrimeError::Internal { .. })),
                    "accepted program hit an internal error under noise: {noisy:?}"
                );
            }
            Err(PrimeError::Rejected { diagnostics }) => {
                prop_assert!(!diagnostics.is_empty(), "rejection carries no diagnostics");
            }
            Err(PrimeError::MappingMismatch { .. }) => {}
            Err(other) => {
                return Err(TestCaseError::fail(format!("non-static deploy error: {other}")));
            }
        }
    }
}
