//! Serial/parallel equivalence of the batched inference engines: for
//! every bank count, driving the banks with one thread each must produce
//! bit-identical outputs to the serial round-robin — on the exact
//! digital path and on the noisy analog path with seeded per-bank RNG
//! streams. For large-scale deployments that follow the compiler's
//! `Mapping::pipeline` across banks, the stage-overlapped engine must
//! likewise match stage-by-stage serial execution, and the digital path
//! must additionally match the same network flattened onto one
//! sufficiently large bank (placement never changes arithmetic).

use prime::core::PrimeSystem;
use prime::device::NoiseModel;
use prime::nn::{Activation, Conv2d, FullyConnected, Layer, Network, Pool2d, PoolKind};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn relu_net(seed: u64) -> Network {
    let mut net = Network::new(vec![
        Layer::Fc(FullyConnected::new(16, 10, Activation::Relu)),
        Layer::Fc(FullyConnected::new(10, 4, Activation::Identity)),
    ])
    .expect("widths match");
    net.init_random(&mut SmallRng::seed_from_u64(seed));
    net
}

/// A batch whose length is deliberately not a multiple of any bank count,
/// so partial last rounds are exercised.
fn batch(len: usize) -> Vec<Vec<f32>> {
    (0..len)
        .map(|i| (0..16).map(|j| ((i * 5 + j * 3) % 11) as f32 / 11.0).collect())
        .collect()
}

fn deployed_system(banks: usize) -> PrimeSystem {
    let net = relu_net(7);
    let mut system = PrimeSystem::new(banks, 2, 4, 2048);
    system.deploy(&net, &[0.5; 16]).expect("fits");
    system
}

#[test]
fn parallel_digital_matches_serial_for_every_bank_count() {
    for banks in 1..=8 {
        let mut system = deployed_system(banks);
        let inputs = batch(13);
        system.set_parallel(false);
        let serial = system.infer_batch(&inputs).unwrap();
        system.set_parallel(true);
        let parallel = system.infer_batch(&inputs).unwrap();
        assert_eq!(serial, parallel, "digital outputs diverged at banks={banks}");
        assert_eq!(serial.len(), inputs.len());
    }
}

#[test]
fn parallel_noisy_matches_serial_for_every_bank_count() {
    let noise = NoiseModel { program_sigma: 0.0, read_sigma: 0.05 };
    for banks in 1..=8 {
        let mut system = deployed_system(banks);
        let inputs = batch(11);
        system.set_parallel(false);
        let serial = system.infer_batch_noisy(&inputs, &noise, 0xDEED).unwrap();
        system.set_parallel(true);
        let parallel = system.infer_batch_noisy(&inputs, &noise, 0xDEED).unwrap();
        assert_eq!(serial, parallel, "noisy outputs diverged at banks={banks}");
        // Same seed again: the per-bank streams restart, so the batch
        // reproduces exactly.
        let repeat = system.infer_batch_noisy(&inputs, &noise, 0xDEED).unwrap();
        assert_eq!(serial, repeat, "noisy batch not reproducible at banks={banks}");
    }
}

#[test]
fn inference_counters_agree_between_engines() {
    let mut system = deployed_system(4);
    let inputs = batch(9);
    system.set_parallel(false);
    system.infer_batch(&inputs).unwrap();
    assert_eq!(system.stats().inferences, 9);
    system.set_parallel(true);
    system.infer_batch(&inputs).unwrap();
    assert_eq!(system.stats().inferences, 18);
}

/// A VGG-D-class stack for the functional engine: a deep chain of
/// fully-connected layers (the runner's executable subset) that cannot
/// fit one small bank, so the compiler splits it into an inter-bank
/// pipeline exactly as it splits VGG-D on the real geometry.
fn deep_net(seed: u64) -> Network {
    let mut net = Network::new(vec![
        Layer::Fc(FullyConnected::new(48, 100, Activation::Relu)),
        Layer::Fc(FullyConnected::new(100, 90, Activation::Relu)),
        Layer::Fc(FullyConnected::new(90, 80, Activation::Relu)),
        Layer::Fc(FullyConnected::new(80, 70, Activation::Relu)),
        Layer::Fc(FullyConnected::new(70, 60, Activation::Relu)),
        Layer::Fc(FullyConnected::new(60, 50, Activation::Relu)),
        Layer::Fc(FullyConnected::new(50, 40, Activation::Relu)),
        Layer::Fc(FullyConnected::new(40, 6, Activation::Identity)),
    ])
    .expect("widths match");
    net.init_random(&mut SmallRng::seed_from_u64(seed));
    net
}

fn deep_batch(len: usize) -> Vec<Vec<f32>> {
    (0..len)
        .map(|i| (0..48).map(|j| ((i * 5 + j * 3) % 11) as f32 / 11.0).collect())
        .collect()
}

/// Two-mat banks force one pipeline stage per layer pair; six banks give
/// two independent pipelined copies.
fn pipelined_system(banks: usize) -> PrimeSystem {
    let net = deep_net(23);
    let mut system = PrimeSystem::new(banks, 1, 2, 4096);
    system.deploy(&net, &[0.5; 48]).expect("fits as a pipeline");
    assert!(
        system.deployed_stages().unwrap() >= 2,
        "expected an inter-bank pipeline, got {:?} stages",
        system.deployed_stages()
    );
    system
}

#[test]
fn pipelined_digital_matches_single_bank_execution() {
    let net = deep_net(23);
    let inputs = deep_batch(9);
    // Reference: the whole network flattened onto one bank big enough to
    // hold it, run serially.
    let mut flat = PrimeSystem::new(1, 1, 8, 4096);
    flat.deploy(&net, &[0.5; 48]).expect("fits one large bank");
    assert_eq!(flat.deployed_stages(), Some(1));
    flat.set_parallel(false);
    let reference = flat.infer_batch(&inputs).unwrap();
    // Pipelined deployments of every span must reproduce it bit for bit,
    // on both engines.
    for banks in [4, 6, 8] {
        let mut system = pipelined_system(banks);
        system.set_parallel(false);
        let serial = system.infer_batch(&inputs).unwrap();
        assert_eq!(serial, reference, "serial pipeline diverged at banks={banks}");
        system.set_parallel(true);
        let overlapped = system.infer_batch(&inputs).unwrap();
        assert_eq!(overlapped, reference, "overlapped pipeline diverged at banks={banks}");
    }
}

#[test]
fn pipelined_noisy_overlap_matches_serial_and_reproduces() {
    let noise = NoiseModel { program_sigma: 0.0, read_sigma: 0.05 };
    for banks in [4, 6] {
        let mut system = pipelined_system(banks);
        let inputs = deep_batch(11);
        system.set_parallel(false);
        let serial = system.infer_batch_noisy(&inputs, &noise, 0xFEED).unwrap();
        system.set_parallel(true);
        let overlapped = system.infer_batch_noisy(&inputs, &noise, 0xFEED).unwrap();
        assert_eq!(serial, overlapped, "noisy pipeline diverged at banks={banks}");
        // Same seed again: every stage bank's stream restarts, so the
        // overlapped batch reproduces exactly.
        let repeat = system.infer_batch_noisy(&inputs, &noise, 0xFEED).unwrap();
        assert_eq!(serial, repeat, "noisy pipeline not reproducible at banks={banks}");
    }
}

#[test]
fn pipelined_inference_counters_agree_between_engines() {
    let mut system = pipelined_system(8);
    let inputs = deep_batch(7);
    system.set_parallel(false);
    system.infer_batch(&inputs).unwrap();
    assert_eq!(system.stats().inferences, 7);
    system.set_parallel(true);
    system.infer_batch(&inputs).unwrap();
    assert_eq!(system.stats().inferences, 14);
}

/// A CNN-1-class stack (paper §V): padded conv, winner-code max pooling,
/// 1/n-weight mean pooling, and an FC head — every layer kind the device
/// runner executes.
fn cnn_net(seed: u64) -> Network {
    let mut net = Network::new(vec![
        Layer::Conv(Conv2d::new(1, 3, 3, 8, 8, 1, Activation::Relu)),
        Layer::Pool(Pool2d::new(PoolKind::Max, 3, 8, 8, 2)),
        Layer::Pool(Pool2d::new(PoolKind::Mean, 3, 4, 4, 2)),
        Layer::Fc(FullyConnected::new(12, 4, Activation::Identity)),
    ])
    .expect("widths match");
    net.init_random(&mut SmallRng::seed_from_u64(seed));
    net
}

fn cnn_batch(len: usize) -> Vec<Vec<f32>> {
    (0..len)
        .map(|i| (0..64).map(|j| ((i * 5 + j * 7) % 13) as f32 / 13.0).collect())
        .collect()
}

fn cnn_calibration() -> Vec<f32> {
    (0..64).map(|j| ((j * 7) % 13) as f32 / 13.0).collect()
}

#[test]
fn cnn_deploys_and_tracks_host_reference() {
    let net = cnn_net(41);
    let mut system = PrimeSystem::new(2, 2, 4, 2048);
    system.deploy(&net, &cnn_calibration()).expect("CNN-1-class must deploy");
    let inputs = cnn_batch(4);
    let outputs = system.infer_batch(&inputs).unwrap();
    for (input, hw) in inputs.iter().zip(&outputs) {
        let sw = net.forward(input).unwrap();
        let max = sw.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(0.2);
        for (a, b) in hw.iter().zip(&sw) {
            assert!((a - b).abs() / max < 0.3, "device {a} vs host {b}");
        }
    }
}

#[test]
fn cnn_parallel_digital_matches_serial_for_every_bank_count() {
    for banks in 1..=4 {
        let net = cnn_net(41);
        let mut system = PrimeSystem::new(banks, 2, 4, 2048);
        system.deploy(&net, &cnn_calibration()).expect("fits");
        let inputs = cnn_batch(7);
        system.set_parallel(false);
        let serial = system.infer_batch(&inputs).unwrap();
        system.set_parallel(true);
        let parallel = system.infer_batch(&inputs).unwrap();
        assert_eq!(serial, parallel, "CNN digital outputs diverged at banks={banks}");
    }
}

#[test]
fn cnn_parallel_noisy_matches_serial_and_reproduces() {
    let noise = NoiseModel { program_sigma: 0.0, read_sigma: 0.05 };
    for banks in [1, 3] {
        let net = cnn_net(41);
        let mut system = PrimeSystem::new(banks, 2, 4, 2048);
        system.deploy(&net, &cnn_calibration()).expect("fits");
        let inputs = cnn_batch(5);
        system.set_parallel(false);
        let serial = system.infer_batch_noisy(&inputs, &noise, 0xDEED).unwrap();
        system.set_parallel(true);
        let parallel = system.infer_batch_noisy(&inputs, &noise, 0xDEED).unwrap();
        assert_eq!(serial, parallel, "CNN noisy outputs diverged at banks={banks}");
        let repeat = system.infer_batch_noisy(&inputs, &noise, 0xDEED).unwrap();
        assert_eq!(serial, repeat, "CNN noisy batch not reproducible at banks={banks}");
    }
}

/// One-mat banks split the CNN into conv+pool and FC stages: the
/// stage-overlapped engine must match serial execution and the same
/// network flattened onto one large bank, streaming the conv/pool
/// boundary through the burst protocol.
#[test]
fn cnn_pipelined_matches_single_bank_execution() {
    let net = cnn_net(43);
    let inputs = cnn_batch(6);
    let mut flat = PrimeSystem::new(1, 2, 4, 2048);
    flat.deploy(&net, &cnn_calibration()).expect("fits one bank");
    assert_eq!(flat.deployed_stages(), Some(1));
    flat.set_parallel(false);
    let reference = flat.infer_batch(&inputs).unwrap();
    for banks in [2, 4] {
        let mut system = PrimeSystem::new(banks, 1, 1, 2048);
        system.deploy(&net, &cnn_calibration()).expect("fits as a pipeline");
        assert!(
            system.deployed_stages().unwrap() >= 2,
            "expected an inter-bank CNN pipeline, got {:?} stages",
            system.deployed_stages()
        );
        system.set_parallel(false);
        let serial = system.infer_batch(&inputs).unwrap();
        assert_eq!(serial, reference, "serial CNN pipeline diverged at banks={banks}");
        system.set_parallel(true);
        let overlapped = system.infer_batch(&inputs).unwrap();
        assert_eq!(overlapped, reference, "overlapped CNN pipeline diverged at banks={banks}");
    }
}

#[test]
fn cnn_pipelined_noisy_overlap_matches_serial() {
    let noise = NoiseModel { program_sigma: 0.0, read_sigma: 0.05 };
    let net = cnn_net(43);
    let inputs = cnn_batch(5);
    let mut system = PrimeSystem::new(2, 1, 1, 2048);
    system.deploy(&net, &cnn_calibration()).expect("fits as a pipeline");
    assert!(system.deployed_stages().unwrap() >= 2);
    system.set_parallel(false);
    let serial = system.infer_batch_noisy(&inputs, &noise, 0xFEED).unwrap();
    system.set_parallel(true);
    let overlapped = system.infer_batch_noisy(&inputs, &noise, 0xFEED).unwrap();
    assert_eq!(serial, overlapped, "noisy CNN pipeline diverged");
}

/// Sigmoid layers are not executable by the command runner: deployment
/// must be refused with a typed rejection carrying P017, never silently
/// accepted.
#[test]
fn sigmoid_network_is_rejected_with_p017() {
    let mut net = Network::new(vec![
        Layer::Conv(Conv2d::new(1, 2, 3, 6, 6, 1, Activation::Sigmoid)),
        Layer::Fc(FullyConnected::new(72, 4, Activation::Identity)),
    ])
    .expect("widths match");
    net.init_random(&mut SmallRng::seed_from_u64(3));
    let mut system = PrimeSystem::new(2, 2, 4, 2048);
    let err = system.deploy(&net, &[0.5; 36]);
    match err {
        Err(prime::core::PrimeError::Rejected { diagnostics }) => {
            assert!(
                diagnostics.iter().any(|d| d.code == prime::analyze::Code::P017),
                "expected a P017 diagnostic, got {diagnostics:?}"
            );
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary weights, batch lengths, and engines: splitting a network
    /// into an inter-bank pipeline never changes the digital arithmetic
    /// relative to the same network flattened onto one large bank.
    #[test]
    fn pipelined_placement_preserves_digital_outputs(
        seed in any::<u64>(),
        len in 1usize..6,
        parallel in any::<bool>(),
    ) {
        let mut net = Network::new(vec![
            Layer::Fc(FullyConnected::new(32, 80, Activation::Relu)),
            Layer::Fc(FullyConnected::new(80, 60, Activation::Relu)),
            Layer::Fc(FullyConnected::new(60, 40, Activation::Relu)),
            Layer::Fc(FullyConnected::new(40, 5, Activation::Identity)),
        ]).expect("widths match");
        net.init_random(&mut SmallRng::seed_from_u64(seed));
        let inputs: Vec<Vec<f32>> = (0..len)
            .map(|i| (0..32).map(|j| ((i * 7 + j) % 9) as f32 / 9.0).collect())
            .collect();
        let mut flat = PrimeSystem::new(1, 1, 4, 4096);
        flat.deploy(&net, &[0.5; 32]).expect("fits one bank");
        flat.set_parallel(false);
        let reference = flat.infer_batch(&inputs).unwrap();
        let mut piped = PrimeSystem::new(4, 1, 2, 4096);
        piped.deploy(&net, &[0.5; 32]).expect("fits as a pipeline");
        prop_assert!(piped.deployed_stages().unwrap() >= 2);
        piped.set_parallel(parallel);
        let outputs = piped.infer_batch(&inputs).unwrap();
        prop_assert_eq!(outputs, reference);
    }
}
