//! Serial/parallel equivalence of the bank-parallel batched inference
//! engine: for every bank count, driving the banks with one thread each
//! must produce bit-identical outputs to the serial round-robin — on the
//! exact digital path and on the noisy analog path with seeded per-bank
//! RNG streams.

use prime::core::PrimeSystem;
use prime::device::NoiseModel;
use prime::nn::{Activation, FullyConnected, Layer, Network};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn relu_net(seed: u64) -> Network {
    let mut net = Network::new(vec![
        Layer::Fc(FullyConnected::new(16, 10, Activation::Relu)),
        Layer::Fc(FullyConnected::new(10, 4, Activation::Identity)),
    ])
    .expect("widths match");
    net.init_random(&mut SmallRng::seed_from_u64(seed));
    net
}

/// A batch whose length is deliberately not a multiple of any bank count,
/// so partial last rounds are exercised.
fn batch(len: usize) -> Vec<Vec<f32>> {
    (0..len)
        .map(|i| (0..16).map(|j| ((i * 5 + j * 3) % 11) as f32 / 11.0).collect())
        .collect()
}

fn deployed_system(banks: usize) -> PrimeSystem {
    let net = relu_net(7);
    let mut system = PrimeSystem::new(banks, 2, 4, 2048);
    system.deploy(&net, &[0.5; 16]).expect("fits");
    system
}

#[test]
fn parallel_digital_matches_serial_for_every_bank_count() {
    for banks in 1..=8 {
        let mut system = deployed_system(banks);
        let inputs = batch(13);
        system.set_parallel(false);
        let serial = system.infer_batch(&inputs).unwrap();
        system.set_parallel(true);
        let parallel = system.infer_batch(&inputs).unwrap();
        assert_eq!(serial, parallel, "digital outputs diverged at banks={banks}");
        assert_eq!(serial.len(), inputs.len());
    }
}

#[test]
fn parallel_noisy_matches_serial_for_every_bank_count() {
    let noise = NoiseModel { program_sigma: 0.0, read_sigma: 0.05 };
    for banks in 1..=8 {
        let mut system = deployed_system(banks);
        let inputs = batch(11);
        system.set_parallel(false);
        let serial = system.infer_batch_noisy(&inputs, &noise, 0xDEED).unwrap();
        system.set_parallel(true);
        let parallel = system.infer_batch_noisy(&inputs, &noise, 0xDEED).unwrap();
        assert_eq!(serial, parallel, "noisy outputs diverged at banks={banks}");
        // Same seed again: the per-bank streams restart, so the batch
        // reproduces exactly.
        let repeat = system.infer_batch_noisy(&inputs, &noise, 0xDEED).unwrap();
        assert_eq!(serial, repeat, "noisy batch not reproducible at banks={banks}");
    }
}

#[test]
fn inference_counters_agree_between_engines() {
    let mut system = deployed_system(4);
    let inputs = batch(9);
    system.set_parallel(false);
    system.infer_batch(&inputs).unwrap();
    assert_eq!(system.stats().inferences, 9);
    system.set_parallel(true);
    system.infer_batch(&inputs).unwrap();
    assert_eq!(system.stats().inferences, 18);
}
