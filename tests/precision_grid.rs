//! Precision-scheme grid: the FF mat honours the composing contract not
//! only at the paper's default (6-bit inputs / 8-bit weights / 6-bit
//! outputs) but across the design space of plausible schemes — the
//! ablation surface §III-D opens ("PRIME can be adapted to different
//! assumptions of input precision, synaptic weight precision, and output
//! precision").

use prime::circuits::ComposingScheme;
use prime::core::FfMat;
use prime::mem::MatFunction;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runs one scheme over random weights/inputs and checks the mat output
/// against the exact shifted dot product within the scheme's bound.
fn exercise_scheme(pin: u8, pw: u8, po: u8, seed: u64) {
    let scheme = ComposingScheme::new(pin, pw, po, 8).expect("valid scheme");
    let mut rng = SmallRng::seed_from_u64(seed);
    let rows = 48usize;
    let cols = 6usize;
    let w_max = (1i32 << pw) - 1;
    let in_max = (1u16 << pin) - 1;
    let weights: Vec<i32> = (0..rows * cols).map(|_| rng.gen_range(-w_max..=w_max)).collect();
    let inputs: Vec<u16> = (0..rows).map(|_| rng.gen_range(0..=in_max)).collect();

    let mut mat = FfMat::with_scheme(scheme);
    mat.set_function(MatFunction::Program);
    mat.program_composed(&weights, rows, cols).expect("fits");
    mat.set_function(MatFunction::Compute);
    let got = mat.compute(&inputs).expect("computes");
    // The mat re-derives PN from the programmed row count.
    let effective = mat.scheme();
    let shift = mat.output_shift();
    let sat = (1i64 << effective.output_bits()) - 1;
    for c in 0..cols {
        let exact: i64 = (0..rows)
            .map(|r| i64::from(inputs[r]) * i64::from(weights[r * cols + c]))
            .sum();
        let target = (exact >> shift).clamp(-sat, sat);
        let bound = effective.max_composition_error() + 1;
        assert!(
            (got[c] - target).abs() <= bound,
            "scheme pin={pin} pw={pw} po={po} col {c}: got {} target {target} bound {bound}",
            got[c]
        );
    }
}

#[test]
fn default_paper_scheme_holds() {
    exercise_scheme(6, 8, 6, 1);
}

#[test]
fn narrow_schemes_hold() {
    exercise_scheme(2, 2, 4, 2);
    exercise_scheme(2, 4, 4, 3);
    exercise_scheme(4, 4, 6, 4);
}

#[test]
fn wide_schemes_hold() {
    exercise_scheme(6, 6, 8, 5);
    exercise_scheme(8, 8, 8, 6);
    exercise_scheme(4, 8, 8, 7);
}

#[test]
fn output_precision_sweep_holds_at_fixed_io() {
    // Fixed 6/8 composed operands, outputs swept 2..8 bits — the SA's
    // reconfigurable-precision axis.
    for po in 2..=8u8 {
        exercise_scheme(6, 8, po, 100 + u64::from(po));
    }
}

#[test]
fn higher_output_precision_tightens_results() {
    // At more SA bits, the mat's quantization unit shrinks, so outputs
    // approximate the real dot product strictly better (in aggregate).
    let mut rng = SmallRng::seed_from_u64(11);
    let rows = 64usize;
    let cols = 8usize;
    let weights: Vec<i32> = (0..rows * cols).map(|_| rng.gen_range(-255..=255)).collect();
    let inputs: Vec<u16> = (0..rows).map(|_| rng.gen_range(0..64)).collect();
    let error_at = |po: u8| -> f64 {
        let scheme = ComposingScheme::new(6, 8, po, 8).unwrap();
        let mut mat = FfMat::with_scheme(scheme);
        mat.set_function(MatFunction::Program);
        mat.program_composed(&weights, rows, cols).unwrap();
        mat.set_function(MatFunction::Compute);
        let shift = mat.output_shift();
        let got = mat.compute(&inputs).unwrap();
        let mut total = 0.0f64;
        for c in 0..cols {
            let exact: i64 = (0..rows)
                .map(|r| i64::from(inputs[r]) * i64::from(weights[r * cols + c]))
                .sum();
            // Reconstruct in full-precision units for a fair comparison.
            let reconstructed = got[c] << shift;
            total += (exact - reconstructed).abs() as f64;
        }
        total
    };
    let coarse = error_at(3);
    let fine = error_at(8);
    assert!(
        fine < coarse,
        "8-bit outputs should reconstruct better than 3-bit: {fine} vs {coarse}"
    );
}
