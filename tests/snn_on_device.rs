//! SNN-on-device integration: binary spike trains drive real crossbar
//! models. Spikes are 1-bit wordline inputs, so each timestep's synaptic
//! current is exactly one crossbar evaluation — the natural fit between
//! SNNs and PRIME's FF subarrays that the paper's future-work note
//! (§II-B) points at.

use prime::device::{MlcSpec, PairedCrossbar};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Quantizes signed f32 weights to crossbar codes and returns the scale.
fn quantize(weights: &[f32]) -> (Vec<i32>, f32) {
    let max = weights.iter().fold(1e-6f32, |m, &v| m.max(v.abs()));
    let scale = max / 15.0; // single 4-bit cell per weight (SNN needs no composing)
    (weights.iter().map(|&w| ((w / scale).round()) as i32).collect(), scale)
}

#[test]
fn crossbar_current_equals_software_current_for_spikes() {
    let mut rng = SmallRng::seed_from_u64(81);
    let (inputs, outputs) = (96usize, 24usize);
    let weights: Vec<f32> = (0..inputs * outputs).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let (codes, _scale) = quantize(&weights);
    let mut pair = PairedCrossbar::new(inputs, outputs, MlcSpec::new(4).unwrap());
    // Crossbar orientation: row-major [inputs, outputs].
    let mut device_codes = vec![0i32; inputs * outputs];
    for o in 0..outputs {
        for i in 0..inputs {
            device_codes[i * outputs + o] = codes[o * inputs + i];
        }
    }
    pair.program_signed_matrix(&device_codes).unwrap();
    for trial in 0..20 {
        let spikes: Vec<bool> = (0..inputs).map(|i| (i * 7 + trial) % 3 == 0).collect();
        let spike_codes: Vec<u16> = spikes.iter().map(|&s| u16::from(s)).collect();
        let device = pair.dot_signed(&spike_codes).unwrap();
        for o in 0..outputs {
            let software: i64 = (0..inputs)
                .filter(|&i| spikes[i])
                .map(|i| i64::from(codes[o * inputs + i]))
                .sum();
            assert_eq!(device[o], software, "output {o}, trial {trial}");
        }
    }
}

#[test]
fn lif_dynamics_on_device_match_software_reference() {
    // A full spiking layer over 40 timesteps: the device supplies the
    // synaptic current, the host integrates the membrane. The software
    // reference uses the same quantized weights; spike trains must match
    // exactly (integer currents, identical thresholds).
    let mut rng = SmallRng::seed_from_u64(82);
    let (inputs, outputs) = (64usize, 16usize);
    let weights: Vec<f32> = (0..inputs * outputs).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let (codes, scale) = quantize(&weights);
    let mut pair = PairedCrossbar::new(inputs, outputs, MlcSpec::new(4).unwrap());
    let mut device_codes = vec![0i32; inputs * outputs];
    for o in 0..outputs {
        for i in 0..inputs {
            device_codes[i * outputs + o] = codes[o * inputs + i];
        }
    }
    pair.program_signed_matrix(&device_codes).unwrap();

    let rates: Vec<f32> = (0..inputs).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    let threshold_real = 2.0f32;
    let threshold_units = (threshold_real / scale).round() as i64;

    let mut phase = vec![0.0f32; inputs];
    let mut membrane_dev = vec![0i64; outputs];
    let mut membrane_sw = vec![0i64; outputs];
    let mut spikes_dev = vec![0u32; outputs];
    let mut spikes_sw = vec![0u32; outputs];
    for _ in 0..40 {
        let spikes: Vec<bool> = rates
            .iter()
            .zip(phase.iter_mut())
            .map(|(&r, p)| {
                *p += r;
                if *p >= 1.0 {
                    *p -= 1.0;
                    true
                } else {
                    false
                }
            })
            .collect();
        let spike_codes: Vec<u16> = spikes.iter().map(|&s| u16::from(s)).collect();
        let device_current = pair.dot_signed(&spike_codes).unwrap();
        for o in 0..outputs {
            let software_current: i64 = (0..inputs)
                .filter(|&i| spikes[i])
                .map(|i| i64::from(codes[o * inputs + i]))
                .sum();
            membrane_dev[o] += device_current[o];
            membrane_sw[o] += software_current;
            if membrane_dev[o] >= threshold_units {
                membrane_dev[o] -= threshold_units;
                spikes_dev[o] += 1;
            }
            if membrane_sw[o] >= threshold_units {
                membrane_sw[o] -= threshold_units;
                spikes_sw[o] += 1;
            }
        }
    }
    assert_eq!(spikes_dev, spikes_sw, "device and software spike trains diverged");
    assert!(spikes_dev.iter().any(|&c| c > 0), "no neuron ever fired");
}

#[test]
fn snn_conversion_integrates_with_the_nn_stack() {
    use prime::nn::{
        train_sgd, Activation, DigitGenerator, FullyConnected, Layer, Network, SnnConfig,
        SpikingNetwork, TrainConfig, IMAGE_PIXELS, NUM_CLASSES,
    };
    let mut rng = SmallRng::seed_from_u64(83);
    let data = DigitGenerator::default().dataset(400, &mut rng);
    let mut ann = Network::new(vec![
        Layer::Fc(FullyConnected::new(IMAGE_PIXELS, 16, Activation::Relu)),
        Layer::Fc(FullyConnected::new(16, NUM_CLASSES, Activation::Identity)),
    ])
    .unwrap();
    ann.init_random(&mut rng);
    train_sgd(&mut ann, &data, TrainConfig::quick(), &mut rng).unwrap();
    let calib: Vec<Vec<f32>> = data.iter().take(10).map(|s| s.pixels.clone()).collect();
    let snn = SpikingNetwork::from_network(&ann, SnnConfig::fast(), &calib).unwrap();
    let subset = &data[..40];
    let correct = subset.iter().filter(|s| snn.classify(&s.pixels) == s.label).count();
    assert!(correct >= 28, "SNN classified only {correct}/40");
}
