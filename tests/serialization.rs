//! Serialization round trips: configurations, mappings, and even
//! programmed hardware state survive JSON round trips unchanged — the
//! property that makes experiment results and checkpoints archivable.

use prime::compiler::{map_network, CompileOptions, HwTarget};
use prime::core::FfMat;
use prime::mem::{Command, MatAddr, MatFunction, MemGeometry};
use prime::nn::{Activation, FullyConnected, Layer, MlBench, Network};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn geometry_and_target_round_trip() {
    let geo = MemGeometry::prime_default();
    assert_eq!(round_trip(&geo), geo);
    let hw = HwTarget::prime_default();
    assert_eq!(round_trip(&hw), hw);
}

#[test]
fn commands_round_trip() {
    let mat = MatAddr { subarray: 1, mat: 42 };
    let cmd = Command::SetFunction { mat, function: MatFunction::Compute };
    assert_eq!(round_trip(&cmd), cmd);
}

#[test]
fn network_mapping_round_trips() {
    let mapping = map_network(
        &MlBench::Cnn2.spec(),
        &HwTarget::prime_default(),
        CompileOptions::default(),
    )
    .expect("fits");
    let restored = round_trip(&mapping);
    // Floats can differ in the last ulp through JSON; compare them with
    // tolerance and everything else exactly.
    assert_eq!(restored.layers, mapping.layers);
    assert_eq!(restored.scale, mapping.scale);
    assert_eq!(restored.base_mats, mapping.base_mats);
    assert_eq!(restored.banks_per_copy, mapping.banks_per_copy);
    assert_eq!(restored.copies_across_memory, mapping.copies_across_memory);
    assert_eq!(restored.pipeline, mapping.pipeline);
    assert!((restored.utilization_before - mapping.utilization_before).abs() < 1e-12);
    assert!((restored.utilization_after - mapping.utilization_after).abs() < 1e-12);
}

#[test]
fn trained_network_round_trips_functionally() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(91);
    let mut net = Network::new(vec![
        Layer::Fc(FullyConnected::new(8, 6, Activation::Sigmoid)),
        Layer::Fc(FullyConnected::new(6, 3, Activation::Identity)),
    ])
    .expect("widths match");
    net.init_random(&mut rng);
    let restored: Network = round_trip(&net);
    let input = [0.3f32, 0.7, 0.1, 0.9, 0.5, 0.2, 0.8, 0.4];
    assert_eq!(net.forward(&input).unwrap(), restored.forward(&input).unwrap());
}

#[test]
fn programmed_ff_mat_round_trips_with_identical_outputs() {
    let mut mat = FfMat::new();
    mat.set_function(MatFunction::Program);
    let weights: Vec<i32> = (0..16 * 4).map(|i| (i * 13 % 300) - 150).collect();
    mat.program_composed(&weights, 16, 4).expect("fits");
    mat.set_function(MatFunction::Compute);
    let mut restored: FfMat = round_trip(&mat);
    let inputs: Vec<u16> = (0..16).map(|i| (i * 3 % 64) as u16).collect();
    assert_eq!(
        mat.compute(&inputs).expect("compute"),
        restored.compute(&inputs).expect("compute restored"),
        "serialized hardware state must compute identically"
    );
}
