//! Weight-layout strategy equivalence: a deployment under
//! `MappingStrategy::SharedKernel` (unique tiles programmed once, every
//! other placement aliasing them) must be indistinguishable at the
//! outputs from `MappingStrategy::ReplicateDense` (every placement owns
//! its bytes) — on the exact digital path, on the seeded noisy analog
//! path, across batch shapes and both batched engines — while keeping
//! strictly less bank state resident whenever the memory holds more than
//! one copy.

use prime::compiler::{MappingStrategy, Objective};
use prime::core::PrimeSystem;
use prime::device::NoiseModel;
use prime::sim::SimCostModel;
use prime::nn::{Activation, Conv2d, FullyConnected, Layer, Network, Pool2d, PoolKind};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Every layer kind the device runner executes: padded conv, max and
/// mean pooling, ReLU FC hidden layer, identity head.
fn cnn_net(seed: u64) -> Network {
    let mut net = Network::new(vec![
        Layer::Conv(Conv2d::new(1, 3, 3, 8, 8, 1, Activation::Relu)),
        Layer::Pool(Pool2d::new(PoolKind::Max, 3, 8, 8, 2)),
        Layer::Pool(Pool2d::new(PoolKind::Mean, 3, 4, 4, 2)),
        Layer::Fc(FullyConnected::new(12, 4, Activation::Identity)),
    ])
    .expect("widths match");
    net.init_random(&mut SmallRng::seed_from_u64(seed));
    net
}

fn cnn_batch(len: usize) -> Vec<Vec<f32>> {
    (0..len)
        .map(|i| (0..64).map(|j| ((i * 5 + j * 7) % 13) as f32 / 13.0).collect())
        .collect()
}

fn calibration(width: usize) -> Vec<f32> {
    (0..width).map(|j| ((j * 7) % 13) as f32 / 13.0).collect()
}

/// Deploys `net` twice on identical 4-bank systems (4 whole-network
/// copies, so tile sharing engages), once per strategy.
fn deploy_both(net: &Network, width: usize) -> (PrimeSystem, PrimeSystem) {
    let mut dense = PrimeSystem::new(4, 2, 4, 2048);
    dense
        .deploy_with(net, &calibration(width), MappingStrategy::ReplicateDense)
        .expect("fits the memory");
    let mut shared = PrimeSystem::new(4, 2, 4, 2048);
    shared
        .deploy_with(net, &calibration(width), MappingStrategy::SharedKernel)
        .expect("fits the memory");
    (dense, shared)
}

#[test]
fn conv_outputs_are_bit_identical_across_strategies() {
    let net = cnn_net(41);
    let (mut dense, mut shared) = deploy_both(&net, 64);
    let inputs = cnn_batch(7);
    for parallel in [false, true] {
        dense.set_parallel(parallel);
        shared.set_parallel(parallel);
        assert_eq!(
            dense.infer_batch(&inputs).unwrap(),
            shared.infer_batch(&inputs).unwrap(),
            "digital outputs diverged (parallel={parallel})"
        );
    }
}

#[test]
fn seeded_noisy_outputs_are_bit_identical_across_strategies() {
    let noise = NoiseModel { program_sigma: 0.0, read_sigma: 0.05 };
    let net = cnn_net(41);
    let (mut dense, mut shared) = deploy_both(&net, 64);
    let inputs = cnn_batch(5);
    for parallel in [false, true] {
        dense.set_parallel(parallel);
        shared.set_parallel(parallel);
        let a = dense.infer_batch_noisy(&inputs, &noise, 0xDEED).unwrap();
        let b = shared.infer_batch_noisy(&inputs, &noise, 0xDEED).unwrap();
        assert_eq!(a, b, "seeded noisy outputs diverged (parallel={parallel})");
    }
}

#[test]
fn shared_kernel_keeps_less_bank_state_resident() {
    let net = cnn_net(41);
    let (dense, shared) = deploy_both(&net, 64);
    let d = dense.deploy_stats().expect("stats after deploy").clone();
    let s = shared.deploy_stats().expect("stats after deploy").clone();
    // Same placements, same would-be-dense footprint.
    assert_eq!(s.dense_bytes, d.dense_bytes);
    assert_eq!(d.resident_bytes, d.dense_bytes);
    // Shared: only copy 0 owns bytes; the other 3 copies alias it.
    assert_eq!(s.copies, 4);
    assert_eq!(s.resident_bytes * s.copies, s.dense_bytes);
    assert!(s.aliased_placements > 0);
    assert_eq!(shared.resident_state_bytes(), s.resident_bytes);
    assert!(s.wall_ms >= 0.0 && d.wall_ms >= 0.0);
}

/// Deploying through the cost-model-driven mapping search
/// (`deploy_auto`, any objective) must be output-invisible: whatever
/// candidate the search picks, the digital and the seeded-noisy outputs
/// are bit-identical to the fixed replicate-dense default deploy — the
/// search optimizes cost, never arithmetic.
#[test]
fn searched_deployments_are_bit_identical_to_fixed() {
    let noise = NoiseModel { program_sigma: 0.0, read_sigma: 0.05 };
    let net = cnn_net(41);
    let inputs = cnn_batch(5);

    let mut fixed = PrimeSystem::new(4, 2, 4, 2048);
    fixed.deploy(&net, &calibration(64)).expect("fits the memory");
    let digital = fixed.infer_batch(&inputs).expect("runs");
    let noisy = fixed.infer_batch_noisy(&inputs, &noise, 0xDEED).expect("runs");

    for objective in [Objective::Latency, Objective::Memory, Objective::Balanced] {
        let mut searched = PrimeSystem::new(4, 2, 4, 2048);
        searched
            .deploy_auto(&net, &calibration(64), objective, &SimCostModel)
            .expect("a candidate survives the verifiers");
        let stats = searched.deploy_stats().expect("stats after deploy").clone();
        let search = stats.search.expect("auto deploys record their search");
        assert!(
            search.chosen().is_some(),
            "{}: no chosen candidate\n{}",
            objective.name(),
            search.describe()
        );
        assert_eq!(
            searched.infer_batch(&inputs).expect("runs"),
            digital,
            "{}: digital outputs diverged from the fixed default",
            objective.name()
        );
        assert_eq!(
            searched.infer_batch_noisy(&inputs, &noise, 0xDEED).expect("runs"),
            noisy,
            "{}: seeded noisy outputs diverged from the fixed default",
            objective.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary weights, batch lengths, and engines: the weight layout
    /// never changes the digital arithmetic.
    #[test]
    fn strategies_agree_on_arbitrary_fc_stacks(
        seed in any::<u64>(),
        len in 1usize..6,
        parallel in any::<bool>(),
    ) {
        let mut net = Network::new(vec![
            Layer::Fc(FullyConnected::new(20, 30, Activation::Relu)),
            Layer::Fc(FullyConnected::new(30, 12, Activation::Relu)),
            Layer::Fc(FullyConnected::new(12, 5, Activation::Identity)),
        ]).expect("widths match");
        net.init_random(&mut SmallRng::seed_from_u64(seed));
        let inputs: Vec<Vec<f32>> = (0..len)
            .map(|i| (0..20).map(|j| ((i * 7 + j) % 9) as f32 / 9.0).collect())
            .collect();
        let (mut dense, mut shared) = deploy_both(&net, 20);
        dense.set_parallel(parallel);
        shared.set_parallel(parallel);
        prop_assert_eq!(
            dense.infer_batch(&inputs).unwrap(),
            shared.infer_batch(&inputs).unwrap()
        );
    }

    /// The same holds on the noisy analog path under a shared seed: the
    /// read-noise stream is drawn per bank in plan order, independent of
    /// which placement owns the tile bytes.
    #[test]
    fn strategies_agree_under_seeded_noise(seed in any::<u64>(), noise_seed in any::<u64>()) {
        let net = cnn_net(seed);
        let noise = NoiseModel { program_sigma: 0.0, read_sigma: 0.04 };
        let inputs = cnn_batch(3);
        let (mut dense, mut shared) = deploy_both(&net, 64);
        let a = dense.infer_batch_noisy(&inputs, &noise, noise_seed).unwrap();
        let b = shared.infer_batch_noisy(&inputs, &noise, noise_seed).unwrap();
        prop_assert_eq!(a, b);
    }
}
