//! Integration tests running the full figure pipelines through the facade
//! crate and asserting the paper-shape criteria of DESIGN.md §6.

use prime::nn::MlBench;
use prime::sim::experiments::{fig10, fig11, fig12, fig8, fig9};

#[test]
fn figure_8_headline_numbers_hold() {
    let fig = fig8::run();
    assert_eq!(fig.rows.len(), 6);
    // Abstract: PRIME improves performance by ~2360x over the NPU
    // co-processor across the benchmarks. Accept the right order of
    // magnitude.
    let prime_over_co = fig.gmean.prime / fig.gmean.pnpu_co;
    assert!(
        (1000.0..6000.0).contains(&prime_over_co),
        "PRIME/pNPU-co gmean {prime_over_co} outside the paper's magnitude"
    );
}

#[test]
fn figure_9_and_11_breakdowns_are_normalized() {
    let f9 = fig9::run();
    let f11 = fig11::run();
    // The pNPU-co bars are the normalization reference: total 1.0.
    for bar in f9.bars.iter().filter(|b| b.machine == "pNPU-co") {
        assert!((bar.compute + bar.memory - 1.0).abs() < 1e-9, "{}", bar.benchmark);
    }
    for bar in f11.bars.iter().filter(|b| b.machine == "pNPU-co") {
        assert!(
            (bar.compute + bar.buffer + bar.memory - 1.0).abs() < 1e-9,
            "{}",
            bar.benchmark
        );
    }
    // Every other bar is below its reference (both figures show savings).
    for bar in &f9.bars {
        assert!(bar.compute + bar.memory <= 1.0 + 1e-9);
    }
    for bar in &f11.bars {
        assert!(bar.compute + bar.buffer + bar.memory <= 1.0 + 1e-9);
    }
}

#[test]
fn figure_10_energy_savings_match_abstract_magnitude() {
    let fig = fig10::run();
    let prime_over_co = fig.gmean.prime / fig.gmean.pnpu_co;
    // Abstract: ~895x energy saving vs the NPU co-processor.
    assert!(
        (300.0..2000.0).contains(&prime_over_co),
        "PRIME/pNPU-co energy gmean {prime_over_co} outside the paper's magnitude"
    );
}

#[test]
fn figure_12_covers_every_benchmark() {
    let fig = fig12::run();
    for bench in MlBench::ALL {
        assert!(
            fig.utilization.iter().any(|r| r.benchmark == bench.name()),
            "missing utilization row for {}",
            bench.name()
        );
    }
    assert!((fig.model.chip_overhead() - 0.0576).abs() < 1e-3);
}

#[test]
fn every_benchmark_fits_and_classifies_consistently() {
    // The compiler and the simulator agree on what fits where.
    use prime::compiler::{map_network, CompileOptions, HwTarget, NnScale};
    let hw = HwTarget::prime_default();
    for bench in MlBench::ALL {
        let mapping = map_network(&bench.spec(), &hw, CompileOptions::default())
            .unwrap_or_else(|e| panic!("{} must fit PRIME: {e}", bench.name()));
        match bench {
            MlBench::VggD => assert_eq!(mapping.scale, NnScale::Large),
            _ => assert_eq!(mapping.scale, NnScale::Medium, "{}", bench.name()),
        }
        // Synapse capacity accounting is consistent: the mats hold at
        // least the network's synapses.
        let capacity = mapping.base_mats as u64 * hw.synapses_per_mat();
        assert!(
            capacity >= bench.spec().synapses(),
            "{}: {} mats cannot hold {} synapses",
            bench.name(),
            mapping.base_mats,
            bench.spec().synapses()
        );
    }
}
