//! Integration tests of the §III-A2 morphing protocol: FF subarrays
//! switching between memory and computation must never lose data, and
//! the Table I command flow must be honoured across the whole bank.

use prime::core::BankController;
use prime::mem::{BufAddr, Command, FfAddr, MatAddr, MatFunction, MemAddr};
use proptest::prelude::*;

#[test]
fn repeated_morphing_preserves_data_across_all_mats() {
    let mut ctrl = BankController::new(2, 2, 2048, 8192);
    // Scatter distinct data over every mat of both FF subarrays.
    let mut patterns = Vec::new();
    for sub in 0..2 {
        for m in 0..2 {
            let mat = MatAddr { subarray: sub, mat: m };
            let bits: Vec<bool> = (0..256).map(|i| (i + sub * 3 + m * 7) % 5 == 0).collect();
            ctrl.mat_mut(mat).write_memory_row(100 + sub * 10 + m, &bits).unwrap();
            patterns.push((mat, 100 + sub * 10 + m, bits));
        }
    }
    // Three full morph cycles with computation in between.
    for cycle in 0..3 {
        for sub in 0..2 {
            ctrl.morph_to_compute(sub).unwrap();
            let mat = MatAddr { subarray: sub, mat: 0 };
            ctrl.mat_mut(mat).program_composed(&[10 * (cycle + 1), -5], 2, 1).unwrap();
            ctrl.start_compute(sub);
            ctrl.buffer_mut().store(BufAddr(0), &[30, 20]).unwrap();
            ctrl.execute(Command::Load {
                from: BufAddr(0),
                to: FfAddr { mat, offset: 0 },
                bytes: 16,
            })
            .unwrap();
            ctrl.compute_mat(mat).unwrap();
            ctrl.morph_to_memory(sub).unwrap();
        }
    }
    for (mat, row, bits) in patterns {
        assert_eq!(
            ctrl.mat(mat).read_memory_row(row, 256).unwrap(),
            bits,
            "data lost on {mat:?} row {row}"
        );
        assert_eq!(ctrl.mat(mat).function(), MatFunction::Memory);
    }
}

#[test]
fn fetch_load_compute_store_commit_round_trip() {
    // The full Table I data-flow chain: Mem -> Buffer -> FF -> Buffer -> Mem.
    let mut ctrl = BankController::new(1, 1, 2048, 8192);
    let mat = MatAddr { subarray: 0, mat: 0 };
    ctrl.morph_to_compute(0).unwrap();
    // Identity-ish weights: two outputs echo scaled inputs.
    ctrl.mat_mut(mat).program_composed(&[255, 0, 0, 255], 2, 2).unwrap();
    ctrl.start_compute(0);
    ctrl.write_mem(MemAddr(512), &[48, 24]);
    ctrl.execute(Command::Fetch { from: MemAddr(512), to: BufAddr(0), bytes: 16 }).unwrap();
    ctrl.execute(Command::Load { from: BufAddr(0), to: FfAddr { mat, offset: 0 }, bytes: 16 })
        .unwrap();
    let out = ctrl.compute_mat(mat).unwrap();
    assert_eq!(out.len(), 2);
    // The diagonal weights preserve the input ordering.
    assert!(out[0] > out[1], "48 should map above 24: {out:?}");
    ctrl.execute(Command::Store { from: FfAddr { mat, offset: 0 }, to: BufAddr(256), bytes: 16 })
        .unwrap();
    ctrl.execute(Command::Commit { from: BufAddr(256), to: MemAddr(0), bytes: 16 }).unwrap();
    assert_eq!(ctrl.read_mem(MemAddr(0), 2), out);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any memory image survives a morph round trip, for arbitrary rows.
    #[test]
    fn morph_round_trip_is_lossless(
        row in 0usize..512,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let bits: Vec<bool> = (0..256).map(|_| rng.gen()).collect();
        let mut ctrl = BankController::new(1, 1, 256, 1024);
        let mat = MatAddr { subarray: 0, mat: 0 };
        ctrl.mat_mut(mat).write_memory_row(row, &bits).unwrap();
        ctrl.morph_to_compute(0).unwrap();
        ctrl.start_compute(0);
        ctrl.morph_to_memory(0).unwrap();
        prop_assert_eq!(ctrl.mat(mat).read_memory_row(row, 256).unwrap(), bits);
    }
}
