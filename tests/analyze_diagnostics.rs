//! Golden fixtures for the prime-analyze deployment verifier: each bad
//! mapping must be rejected with its pinned `P0xx` code, every MlBench
//! workload must be accepted on the paper's default target, and (by
//! property) any deployment the verifier lets through must run to
//! completion without a runtime error.

use proptest::prelude::*;

use prime::analyze::{
    analyze, check_pipeline, check_shared_layout, has_errors, shared_layout, tile_pn, Code,
    Severity, SharedTileGroup, Target,
};
use prime::compiler::{
    map_network, CompileOptions, HwTarget, LayerMapping, MappingStrategy, NetworkMapping, NnScale,
    PipelineStage,
};
use prime::core::{PrimeError, PrimeSystem};
use prime::nn::{Activation, FullyConnected, Layer, LayerSpec, MlBench, Network, NetworkSpec};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// `PrimeSystem::deploy` maps without replication (replicas would be an
/// analytic utilization model, not a physical placement).
const DEPLOY_OPTIONS: CompileOptions = CompileOptions {
    replicate: false,
    ..CompileOptions::fixed(MappingStrategy::ReplicateDense)
};

fn error_codes(diags: &[prime::analyze::Diagnostic]) -> Vec<Code> {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.code)
        .collect()
}

/// An honest lowering of one FC layer, mirroring the compiler's tiling
/// rules, so fixtures can describe layers the compiler itself refuses.
fn fc_layer(inputs: usize, outputs: usize, hw: &HwTarget) -> LayerMapping {
    let rows_needed = inputs + 1;
    let row_tiles = rows_needed.div_ceil(hw.mat_rows);
    let col_tiles = outputs.div_ceil(hw.mat_cols);
    LayerMapping {
        layer: LayerSpec::FullyConnected { inputs, outputs },
        rows_needed,
        cols_needed: outputs,
        row_tiles,
        col_tiles,
        base_mats: row_tiles * col_tiles,
        in_mat_replication: 1,
        extra_replicas: 0,
        vectors_per_inference: 1,
        merge_adds: 0,
        strategy: MappingStrategy::ReplicateDense,
        tile_refs: 1,
    }
}

fn fixture_mapping(layers: Vec<LayerMapping>, pipeline: Vec<PipelineStage>) -> NetworkMapping {
    let base_mats = layers.iter().map(|l| l.base_mats).sum();
    NetworkMapping {
        name: "fixture".to_string(),
        scale: if pipeline.is_empty() { NnScale::Small } else { NnScale::Large },
        layers,
        base_mats,
        banks_per_copy: 1,
        allocated_mats: base_mats,
        utilization_before: 0.5,
        utilization_after: 0.5,
        copies_across_memory: 1,
        pipeline,
        strategy: MappingStrategy::ReplicateDense,
    }
}

#[test]
fn oversized_layer_is_rejected_with_p003() {
    // One FC layer larger than the entire FF-mat pool of the memory.
    let target = Target::prime_default();
    let hw = &target.hw;
    let inputs = hw.mat_rows * hw.mats_per_bank() * hw.banks;
    let outputs = hw.mat_cols * 4;
    let spec = NetworkSpec::new(
        "oversized",
        vec![LayerSpec::FullyConnected { inputs, outputs }],
    )
    .expect("spec is well formed");
    let mapping = fixture_mapping(vec![fc_layer(inputs, outputs, hw)], Vec::new());
    assert!(mapping.base_mats > hw.total_mats(), "fixture must overflow");
    let codes = error_codes(&analyze(&spec, &target, &mapping));
    assert!(codes.contains(&Code::P003), "expected P003, got {codes:?}");
}

#[test]
fn overlapping_banks_are_rejected_with_p008() {
    // Stage 0 holds one oversized layer spanning banks 0..2; stage 1
    // starts at bank 1 inside that span — two stages would compute-map
    // the same mats.
    let stages = vec![
        PipelineStage { bank: 0, layers: vec![0], mats: 2 },
        PipelineStage { bank: 1, layers: vec![1], mats: 1 },
    ];
    let codes: Vec<Code> = check_pipeline(&stages, 2, 4, Some(1)).iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![Code::P008], "got {codes:?}");
}

#[test]
fn repeated_bank_is_rejected_with_p005() {
    let stages = vec![
        PipelineStage { bank: 0, layers: vec![0], mats: 1 },
        PipelineStage { bank: 0, layers: vec![1], mats: 1 },
    ];
    let codes: Vec<Code> = check_pipeline(&stages, 2, 4, Some(1)).iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![Code::P005], "got {codes:?}");
}

#[test]
fn non_contiguous_stages_are_rejected_with_p006() {
    // Coverage skips layer 1: stage 1 maps layer 2 while 1 is uncovered.
    let stages = vec![
        PipelineStage { bank: 0, layers: vec![0], mats: 1 },
        PipelineStage { bank: 1, layers: vec![2], mats: 1 },
    ];
    let codes: Vec<Code> = check_pipeline(&stages, 3, 4, Some(1)).iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![Code::P006], "got {codes:?}");
}

#[test]
fn incomplete_coverage_is_rejected_with_p006() {
    let stages = vec![PipelineStage { bank: 0, layers: vec![0], mats: 1 }];
    let codes: Vec<Code> = check_pipeline(&stages, 2, 4, Some(1)).iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![Code::P006], "got {codes:?}");
}

#[test]
fn precision_overflow_is_rejected_with_p010() {
    let spec = MlBench::MlpS.spec();
    let mut target = Target::prime_default();
    let mapping = map_network(&spec, &target.hw, DEPLOY_OPTIONS).expect("MLP-S maps");
    target.cell_bits = 2; // the Pw=8 scheme needs two 4-bit MLC cells
    let codes = error_codes(&analyze(&spec, &target, &mapping));
    assert_eq!(codes, vec![Code::P010], "got {codes:?}");
}

/// A legal shared-tile group fixture; the P02x tests below break one
/// field at a time.
fn shared_group(target: &Target) -> SharedTileGroup {
    SharedTileGroup {
        layer: 0,
        rows: 100,
        cols: 64,
        tiles: 2,
        refs: 4,
        pn: tile_pn(100),
        cell_bits: target.cell_bits,
    }
}

#[test]
fn shared_tile_scheme_drift_is_rejected_with_p021() {
    let target = Target::prime_default();
    let good = shared_group(&target);
    assert_eq!(check_shared_layout(&[good], &target), vec![], "fixture must start legal");
    // An alias assuming a different PN than programming derives from the
    // driven rows would sense through a mismatched output window.
    let bad_pn = SharedTileGroup { pn: tile_pn(100) + 1, ..good };
    let codes: Vec<Code> =
        check_shared_layout(&[bad_pn], &target).iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![Code::P021], "got {codes:?}");
    // Same for MLC precision drift between aliases.
    let bad_cells = SharedTileGroup { cell_bits: target.cell_bits + 1, ..good };
    let codes: Vec<Code> =
        check_shared_layout(&[bad_cells], &target).iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![Code::P021], "got {codes:?}");
}

#[test]
fn shared_tile_refcount_overflow_is_rejected_with_p022() {
    let mut target = Target::prime_default();
    target.tile_ref_bits = 2; // per-mat reference counter holds refs <= 3
    let good = SharedTileGroup { refs: 3, ..shared_group(&target) };
    assert_eq!(check_shared_layout(&[good], &target), vec![], "3 refs fit 2 bits");
    let overflow = SharedTileGroup { refs: 4, ..good };
    let codes: Vec<Code> =
        check_shared_layout(&[overflow], &target).iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![Code::P022], "got {codes:?}");
    let zero = SharedTileGroup { refs: 0, ..good };
    let codes: Vec<Code> =
        check_shared_layout(&[zero], &target).iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![Code::P022], "got {codes:?}");
}

#[test]
fn shared_kernel_fallback_is_reported_as_p023_info() {
    // VGG-D maps with one whole-memory copy under deploy semantics, so a
    // SharedKernel request has no placement reuse to share: every layer
    // falls back to ReplicateDense, each reported as Info-severity P023 —
    // never an error.
    let target = Target::prime_default();
    let options = CompileOptions {
        replicate: false,
        ..CompileOptions::fixed(MappingStrategy::SharedKernel)
    };
    let spec = MlBench::VggD.spec();
    let mapping = map_network(&spec, &target.hw, options).expect("VGG-D maps");
    let diags = analyze(&spec, &target, &mapping);
    assert!(!has_errors(&diags), "{}", prime::analyze::render_human(&diags));
    let fallbacks =
        diags.iter().filter(|d| d.code == Code::P023).count();
    assert!(fallbacks > 0, "expected P023 fallback notes, got {diags:?}");
    assert!(
        diags.iter().filter(|d| d.code == Code::P023).all(|d| d.severity == Severity::Info),
        "P023 must be informational"
    );
    assert!(shared_layout(&mapping, &target).is_empty(), "nothing is shared after fallback");
}

#[test]
fn derived_shared_layouts_are_legal_for_every_workload() {
    // Any shared-tile layout the compiler itself derives must pass the
    // legality check — P021/P022 exist for hand-built or drifted state,
    // never for the compiler's own output.
    let target = Target::prime_default();
    for bench in MlBench::ALL {
        for replicate in [false, true] {
            let options = CompileOptions {
                replicate,
                ..CompileOptions::fixed(MappingStrategy::SharedKernel)
            };
            let spec = bench.spec();
            let Ok(mapping) = map_network(&spec, &target.hw, options) else {
                continue; // replicated VGG-D overflows the memory: not a layout question
            };
            let groups = shared_layout(&mapping, &target);
            let diags = check_shared_layout(&groups, &target);
            assert!(
                diags.is_empty(),
                "{} (replicate={replicate}): {diags:?}",
                bench.name()
            );
        }
    }
}

#[test]
fn every_mlbench_workload_is_accepted_on_the_default_target() {
    let target = Target::prime_default();
    for bench in MlBench::ALL {
        let spec = bench.spec();
        let mapping = map_network(&spec, &target.hw, DEPLOY_OPTIONS).expect("workload maps");
        let diags = analyze(&spec, &target, &mapping);
        assert!(
            !has_errors(&diags),
            "{}: {}",
            bench.name(),
            prime::analyze::render_human(&diags)
        );
    }
}

#[test]
fn deploy_refuses_with_typed_diagnostics_when_the_buffer_is_too_small() {
    // The FC working set (12 inputs + 3 outputs) cannot be staged in an
    // 8-word FF buffer: deploy must refuse statically (P009), before any
    // bank state changes — this used to surface as a runtime store error.
    let mut rng = SmallRng::seed_from_u64(5);
    let mut net = Network::new(vec![
        Layer::Fc(FullyConnected::new(12, 8, Activation::Relu)),
        Layer::Fc(FullyConnected::new(8, 3, Activation::Identity)),
    ])
    .expect("widths match");
    net.init_random(&mut rng);
    let mut system = PrimeSystem::new(2, 2, 4, 8);
    match system.deploy(&net, &[0.5; 12]) {
        Err(PrimeError::Rejected { diagnostics }) => {
            assert!(
                diagnostics.iter().any(|d| d.code == Code::P009),
                "expected P009 in {diagnostics:?}"
            );
        }
        other => panic!("expected a Rejected error, got {other:?}"),
    }
    assert!(system.infer_batch(&[vec![0.0; 12]]).is_err(), "nothing deployed");
}

#[test]
fn diagnostics_are_reported_in_canonical_deterministic_order() {
    use prime::analyze::{sort_diagnostics, Diagnostic, Span};
    // A hand-shuffled list sorts by code, then span (layer index before
    // entity ties), then message — and sorting is idempotent.
    let mk = |code, index, msg: &str| {
        Diagnostic::new(code, Span::Layer { index, entity: "fc".to_string() }, msg)
    };
    let mut diags = vec![
        mk(Code::P011, 5, "b"),
        mk(Code::P003, 9, "z"),
        mk(Code::P011, 2, "a"),
        Diagnostic::new(Code::P003, Span::Network, "network-wide"),
        mk(Code::P011, 5, "a"),
    ];
    sort_diagnostics(&mut diags);
    let key: Vec<(Code, String)> = diags
        .iter()
        .map(|d| {
            let loc = match &d.span {
                Span::Network => "net".to_string(),
                Span::Layer { index, .. } => format!("L{index}"),
                other => format!("{other:?}"),
            };
            (d.code, loc)
        })
        .collect();
    assert_eq!(
        key,
        vec![
            (Code::P003, "net".to_string()),
            (Code::P003, "L9".to_string()),
            (Code::P011, "L2".to_string()),
            (Code::P011, "L5".to_string()),
            (Code::P011, "L5".to_string()),
        ],
        "{diags:?}"
    );
    assert_eq!(diags[3].message, "a", "message breaks the final tie");
    let resorted = {
        let mut d = diags.clone();
        sort_diagnostics(&mut d);
        d
    };
    assert_eq!(diags, resorted, "sorting must be idempotent");

    // The verifier's own output arrives pre-sorted.
    let target = Target::prime_default();
    let spec = MlBench::VggD.spec();
    let mapping = map_network(
        &spec,
        &target.hw,
        CompileOptions {
            replicate: false,
            ..CompileOptions::fixed(MappingStrategy::SharedKernel)
        },
    )
    .expect("VGG-D maps");
    let out = analyze(&spec, &target, &mapping);
    let mut sorted = out.clone();
    sort_diagnostics(&mut sorted);
    assert_eq!(out, sorted, "analyze() must return canonical order");
}

#[test]
fn design_catalog_stays_in_step_with_the_emitted_codes() {
    // DESIGN.md §10's diagnostic catalog is the contract for the stable
    // P-codes; it must list exactly the codes the analyzer can emit.
    let design = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/DESIGN.md"))
        .expect("DESIGN.md is readable");
    let catalog: Vec<&str> = design
        .lines()
        .filter(|l| l.starts_with("| P0"))
        .filter_map(|l| l.split('|').nth(1).map(str::trim))
        .collect();
    for code in Code::ALL {
        assert!(
            catalog.contains(&code.as_str()),
            "DESIGN.md §10 catalog is missing a row for {}",
            code.as_str()
        );
    }
    for row in &catalog {
        assert!(
            Code::ALL.iter().any(|c| c.as_str() == *row),
            "DESIGN.md §10 catalog lists {row}, which prime-analyze never emits"
        );
    }
    assert_eq!(catalog.len(), Code::ALL.len(), "duplicate catalog rows");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any deployment the static verifier accepts must run inference to
    /// completion; any refusal must be a static one (typed diagnostics or
    /// a compile error), never a runtime fault after state changed.
    #[test]
    fn accepted_mappings_infer_without_runtime_errors(
        inputs in 2usize..28,
        hidden in 1usize..20,
        outputs in 1usize..8,
        banks in 1usize..4,
        mats in 1usize..5,
        buffer_exp in 4u32..12,
        seed in any::<u64>(),
    ) {
        let buffer = 1usize << buffer_exp;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = Network::new(vec![
            Layer::Fc(FullyConnected::new(inputs, hidden, Activation::Relu)),
            Layer::Fc(FullyConnected::new(hidden, outputs, Activation::Identity)),
        ]).expect("widths match");
        net.init_random(&mut rng);
        let calibration: Vec<f32> = (0..inputs).map(|i| (i % 5) as f32 / 5.0).collect();
        let mut system = PrimeSystem::new(banks, 1, mats, buffer);
        match system.deploy(&net, &calibration) {
            Ok(()) => {
                let batch: Vec<Vec<f32>> = (0..3)
                    .map(|b| (0..inputs).map(|i| ((b + i) % 7) as f32 / 7.0).collect())
                    .collect();
                let out = system.infer_batch(&batch);
                prop_assert!(out.is_ok(), "accepted deployment failed at run time: {out:?}");
                prop_assert_eq!(out.as_deref().map(<[Vec<f32>]>::len), Ok(3));
            }
            Err(PrimeError::Rejected { diagnostics }) => {
                prop_assert!(!diagnostics.is_empty(), "rejection carries no diagnostics");
            }
            Err(PrimeError::MappingMismatch { .. }) => {
                // The compiler itself refused (network cannot map at all).
            }
            Err(other) => {
                return Err(TestCaseError::fail(format!("non-static deploy error: {other}")));
            }
        }
    }
}
