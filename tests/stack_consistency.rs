//! Cross-crate consistency: the same physical quantities derived in
//! different crates must agree (geometry vs compiler target, FF mat vs
//! composing scheme, command streams vs mapping).

use prime::compiler::HwTarget;
use prime::core::{FfMat, NnParamFile, PrimeProgram};
use prime::mem::{MatFunction, MemGeometry};
use prime::nn::{MlBench, NetworkSpec};

#[test]
fn compiler_target_matches_memory_geometry() {
    let geo = MemGeometry::prime_default();
    let hw = HwTarget::from_geometry(&geo).expect("valid geometry");
    assert_eq!(hw.mat_rows, geo.mat_rows);
    assert_eq!(hw.mat_cols, geo.mat_cols / 2); // composed weights
    assert_eq!(hw.banks, geo.total_banks());
    assert_eq!(
        hw.total_mats() as u64 * hw.synapses_per_mat(),
        geo.max_synapses(),
        "compiler and geometry disagree on total synapse capacity"
    );
}

#[test]
fn ff_mat_capacity_matches_compiler_assumptions() {
    let hw = HwTarget::prime_default();
    let mat = FfMat::new();
    assert_eq!(mat.max_rows(), hw.mat_rows);
    assert_eq!(mat.max_cols(), hw.mat_cols);
    // A full-capacity weight matrix programs successfully.
    let mut mat = FfMat::new();
    mat.set_function(MatFunction::Program);
    let weights = vec![1i32; hw.mat_rows * hw.mat_cols];
    mat.program_composed(&weights, hw.mat_rows, hw.mat_cols).expect("fits exactly");
    // One more column does not.
    let mut mat = FfMat::new();
    mat.set_function(MatFunction::Program);
    let too_many = vec![1i32; hw.mat_rows * (hw.mat_cols + 1)];
    assert!(mat.program_composed(&too_many, hw.mat_rows, hw.mat_cols + 1).is_err());
}

#[test]
fn command_stream_length_tracks_the_mapping() {
    for bench in [MlBench::MlpS, MlBench::Cnn1] {
        let spec = bench.spec();
        let network = spec.to_network().expect("executable benchmark");
        let params = NnParamFile { spec, network };
        let mut program = PrimeProgram::new();
        let mapping = program.map_topology(&params).expect("fits").clone();
        program.program_weight(&params).expect("consistent");
        let compiled = program.config_datapath().expect("configured");
        // Four datapath-configure commands per mapped tile (function,
        // two bypasses, input source).
        let tiles: usize = mapping.layers.iter().map(|l| l.base_mats).sum();
        assert_eq!(compiled.datapath_commands.len(), 4 * tiles, "{}", bench.name());
        // Data flow: one fetch + one commit + load/store per tile.
        assert_eq!(compiled.dataflow_commands.len(), 2 + 2 * tiles, "{}", bench.name());
    }
}

#[test]
fn spec_and_network_agree_on_synapses() {
    for bench in MlBench::ALL {
        let spec = bench.spec();
        if bench.is_executable() {
            let net = spec.to_network().expect("executable");
            assert_eq!(
                net.synapses() as u64,
                spec.synapses(),
                "{}: spec and network disagree",
                bench.name()
            );
            assert_eq!(net.inputs(), spec.inputs());
            assert_eq!(net.outputs(), spec.outputs());
        }
    }
}

#[test]
fn facade_reexports_compose() {
    // The facade's module paths interoperate: a spec built through
    // `prime::nn` maps through `prime::compiler` and runs on
    // `prime::sim` machines.
    use prime::sim::{Machine, PrimeMachine};
    let spec: NetworkSpec = MlBench::MlpM.spec();
    let result = PrimeMachine::new().run(&spec, 8);
    assert_eq!(result.benchmark, "MLP-M");
    assert!(result.latency_ns > 0.0);
}
