//! Cross-crate consistency: the same physical quantities derived in
//! different crates must agree (geometry vs compiler target, FF mat vs
//! composing scheme, command streams vs mapping).

use prime::compiler::HwTarget;
use prime::core::{FfMat, NnParamFile, PrimeProgram};
use prime::mem::{MatFunction, MemGeometry};
use prime::nn::{MlBench, NetworkSpec};

#[test]
fn compiler_target_matches_memory_geometry() {
    let geo = MemGeometry::prime_default();
    let hw = HwTarget::from_geometry(&geo).expect("valid geometry");
    assert_eq!(hw.mat_rows, geo.mat_rows);
    assert_eq!(hw.mat_cols, geo.mat_cols / 2); // composed weights
    assert_eq!(hw.banks, geo.total_banks());
    assert_eq!(
        hw.total_mats() as u64 * hw.synapses_per_mat(),
        geo.max_synapses(),
        "compiler and geometry disagree on total synapse capacity"
    );
}

#[test]
fn ff_mat_capacity_matches_compiler_assumptions() {
    let hw = HwTarget::prime_default();
    let mat = FfMat::new();
    assert_eq!(mat.max_rows(), hw.mat_rows);
    assert_eq!(mat.max_cols(), hw.mat_cols);
    // A full-capacity weight matrix programs successfully.
    let mut mat = FfMat::new();
    mat.set_function(MatFunction::Program);
    let weights = vec![1i32; hw.mat_rows * hw.mat_cols];
    mat.program_composed(&weights, hw.mat_rows, hw.mat_cols).expect("fits exactly");
    // One more column does not.
    let mut mat = FfMat::new();
    mat.set_function(MatFunction::Program);
    let too_many = vec![1i32; hw.mat_rows * (hw.mat_cols + 1)];
    assert!(mat.program_composed(&too_many, hw.mat_rows, hw.mat_cols + 1).is_err());
}

#[test]
fn command_stream_length_tracks_the_mapping() {
    for bench in [MlBench::MlpS, MlBench::Cnn1] {
        let spec = bench.spec();
        let network = spec.to_network().expect("executable benchmark");
        let params = NnParamFile { spec, network };
        let mut program = PrimeProgram::new();
        let mapping = program.map_topology(&params).expect("fits").clone();
        program.program_weight(&params).expect("consistent");
        let compiled = program.config_datapath().expect("configured");
        // Four datapath-configure commands per mapped tile (function,
        // two bypasses, input source).
        let tiles: usize = mapping.layers.iter().map(|l| l.base_mats).sum();
        assert_eq!(compiled.datapath_commands.len(), 4 * tiles, "{}", bench.name());
        // Data flow: one fetch + one commit + load/store per tile.
        assert_eq!(compiled.dataflow_commands.len(), 2 + 2 * tiles, "{}", bench.name());
    }
}

#[test]
fn spec_and_network_agree_on_synapses() {
    for bench in MlBench::ALL {
        let spec = bench.spec();
        if bench.is_executable() {
            let net = spec.to_network().expect("executable");
            assert_eq!(
                net.synapses() as u64,
                spec.synapses(),
                "{}: spec and network disagree",
                bench.name()
            );
            assert_eq!(net.inputs(), spec.inputs());
            assert_eq!(net.outputs(), spec.outputs());
        }
    }
}

#[test]
fn simulator_and_runner_execute_the_same_pipeline_stages() {
    // A VGG-D-class deployment: a deep FC stack on two-mat banks, which
    // the compiler must split into an inter-bank pipeline. The stage
    // count the analytical simulator charges in its pipeline latency
    // term must equal the stage count the functional CommandRunner
    // actually executes — both consume the same `Mapping::pipeline`.
    use prime::compiler::CompileOptions;
    use prime::core::PrimeSystem;
    use prime::nn::{Activation, FullyConnected, Layer, Network};
    use prime::sim::PrimeMachine;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let mut net = Network::new(vec![
        Layer::Fc(FullyConnected::new(48, 100, Activation::Relu)),
        Layer::Fc(FullyConnected::new(100, 90, Activation::Relu)),
        Layer::Fc(FullyConnected::new(90, 80, Activation::Relu)),
        Layer::Fc(FullyConnected::new(80, 70, Activation::Relu)),
        Layer::Fc(FullyConnected::new(70, 60, Activation::Relu)),
        Layer::Fc(FullyConnected::new(60, 50, Activation::Relu)),
        Layer::Fc(FullyConnected::new(50, 40, Activation::Relu)),
        Layer::Fc(FullyConnected::new(40, 6, Activation::Identity)),
    ])
    .expect("widths match");
    net.init_random(&mut SmallRng::seed_from_u64(11));

    // The functional engine's geometry: 8 banks of 1x2 mats.
    let mut system = PrimeSystem::new(8, 1, 2, 4096);
    system.deploy(&net, &[0.5; 48]).expect("deploys as a pipeline");
    let executed = system.deployed_stages().expect("deployed");
    assert!(executed >= 2, "expected an inter-bank pipeline");

    // The simulator pinned to the same target and options as deploy.
    let target = HwTarget {
        mat_rows: 256,
        mat_cols: 128,
        mats_per_ff_subarray: 2,
        ff_subarrays_per_bank: 1,
        banks: 8,
    };
    let machine = PrimeMachine::with_target(target, CompileOptions { replicate: false, ..CompileOptions::default() });
    let spec = net.to_spec("deep-fc").expect("spec derivable");
    assert_eq!(
        machine.pipeline_stage_count(&spec),
        executed,
        "simulator and runner disagree on pipeline depth"
    );
}

#[test]
fn simulator_and_runner_agree_on_conv_pipeline_stages() {
    // The CNN analogue of the FC cross-check above: a conv + max-pool +
    // mean-pool + FC stack on one-mat banks splits into an inter-bank
    // pipeline (conv + pools on one bank, the FC head on the next); the
    // analytical simulator's per-stage bottleneck model must charge
    // exactly the stage count the device runner executes.
    use prime::compiler::CompileOptions;
    use prime::core::PrimeSystem;
    use prime::nn::{Activation, Conv2d, FullyConnected, Layer, Network, Pool2d, PoolKind};
    use prime::sim::PrimeMachine;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let mut net = Network::new(vec![
        Layer::Conv(Conv2d::new(1, 3, 3, 8, 8, 1, Activation::Relu)),
        Layer::Pool(Pool2d::new(PoolKind::Max, 3, 8, 8, 2)),
        Layer::Pool(Pool2d::new(PoolKind::Mean, 3, 4, 4, 2)),
        Layer::Fc(FullyConnected::new(12, 4, Activation::Identity)),
    ])
    .expect("widths match");
    net.init_random(&mut SmallRng::seed_from_u64(17));

    let calibration: Vec<f32> = (0..64).map(|j| ((j * 7) % 13) as f32 / 13.0).collect();
    let mut system = PrimeSystem::new(2, 1, 1, 2048);
    system.deploy(&net, &calibration).expect("deploys as a CNN pipeline");
    let executed = system.deployed_stages().expect("deployed");
    assert!(executed >= 2, "expected an inter-bank CNN pipeline");

    let target = HwTarget {
        mat_rows: 256,
        mat_cols: 128,
        mats_per_ff_subarray: 1,
        ff_subarrays_per_bank: 1,
        banks: 2,
    };
    let machine = PrimeMachine::with_target(target, CompileOptions { replicate: false, ..CompileOptions::default() });
    let spec = net.to_spec("cnn-1-class").expect("spec derivable");
    assert_eq!(
        machine.pipeline_stage_count(&spec),
        executed,
        "simulator and runner disagree on CNN pipeline depth"
    );
}

#[test]
fn facade_reexports_compose() {
    // The facade's module paths interoperate: a spec built through
    // `prime::nn` maps through `prime::compiler` and runs on
    // `prime::sim` machines.
    use prime::sim::{Machine, PrimeMachine};
    let spec: NetworkSpec = MlBench::MlpM.spec();
    let result = PrimeMachine::new().run(&spec, 8);
    assert_eq!(result.benchmark, "MLP-M");
    assert!(result.latency_ns > 0.0);
}
