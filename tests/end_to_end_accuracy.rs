//! End-to-end fidelity: a digit classifier trained offline keeps its
//! accuracy when executed on the functional FF-mat hardware pipeline —
//! crossbars, composing scheme, truncating SAs and all.

use prime::core::{BankController, CommandRunner, FfExecutor, NnParamFile, PrimeProgram};
use prime::nn::{
    evaluate, train_sgd, Activation, DigitGenerator, FullyConnected, Layer, LayerSpec, Network,
    NetworkSpec, TrainConfig, IMAGE_PIXELS, NUM_CLASSES,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn trained_classifier(rng: &mut SmallRng) -> (Network, Vec<prime::nn::Sample>) {
    let generator = DigitGenerator::default();
    let train_set = generator.dataset(600, rng);
    let test_set = generator.dataset(120, rng);
    let mut net = Network::new(vec![
        Layer::Fc(FullyConnected::new(IMAGE_PIXELS, 32, Activation::Sigmoid)),
        Layer::Fc(FullyConnected::new(32, NUM_CLASSES, Activation::Identity)),
    ])
    .expect("widths match");
    net.init_random(rng);
    train_sgd(&mut net, &train_set, TrainConfig::quick(), rng).expect("training succeeds");
    (net, test_set)
}

fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[test]
fn ff_hardware_matches_software_accuracy() {
    let mut rng = SmallRng::seed_from_u64(404);
    let (net, test_set) = trained_classifier(&mut rng);
    let sw_acc = evaluate(&net, &test_set).expect("software evaluation");
    assert!(sw_acc > 0.9, "software accuracy too low: {sw_acc}");

    let mut executor = FfExecutor::new();
    let subset = &test_set[..40];
    let mut correct = 0usize;
    for sample in subset {
        let (out, _) = executor.run(&net, &sample.pixels).expect("hardware execution");
        if argmax(&out) == sample.label {
            correct += 1;
        }
    }
    let hw_acc = correct as f64 / subset.len() as f64;
    assert!(
        hw_acc >= sw_acc - 0.1,
        "hardware accuracy {hw_acc} dropped more than 10 points below software {sw_acc}"
    );
}

#[test]
fn prime_program_classifies_through_the_full_api() {
    let mut rng = SmallRng::seed_from_u64(505);
    let (net, test_set) = trained_classifier(&mut rng);
    let spec = NetworkSpec::new(
        "digit-mlp",
        vec![
            LayerSpec::FullyConnected { inputs: IMAGE_PIXELS, outputs: 32 },
            LayerSpec::FullyConnected { inputs: 32, outputs: NUM_CLASSES },
        ],
    )
    .expect("valid topology");
    let params = NnParamFile { spec, network: net.clone() };
    let mut program = PrimeProgram::new();
    program.map_topology(&params).expect("mapping fits");
    program.program_weight(&params).expect("weights match topology");
    let compiled = program.config_datapath().expect("datapath configuration");
    assert!(!compiled.datapath_commands.is_empty());
    assert!(!compiled.dataflow_commands.is_empty());

    let mut agree = 0usize;
    let subset = &test_set[..20];
    for sample in subset {
        let hw_class = PrimeProgram::post_proc(&program.run(&sample.pixels).expect("run"));
        let sw_class = argmax(&net.forward(&sample.pixels).expect("software forward"));
        if hw_class == sw_class {
            agree += 1;
        }
    }
    assert!(
        agree >= subset.len() - 2,
        "hardware and software classifications diverge: {agree}/{}",
        subset.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random conv shapes and paddings: the device runner's im2col
    /// crossbar path tracks the fixed-point host reference within the
    /// §III-D truncation bound (the composed 6-bit output window plus
    /// requantization loses at most a few LSBs per layer).
    #[test]
    fn device_conv_matches_host_for_random_shapes(
        kernel in 1usize..4,
        padding in 0usize..3,
        extra_h in 0usize..5,
        extra_w in 0usize..5,
        in_ch in 1usize..3,
        out_ch in 1usize..4,
        seed in any::<u64>(),
    ) {
        // in_h >= kernel keeps the output nonempty for any padding.
        let (in_h, in_w) = (kernel + extra_h, kernel + extra_w);
        let mut net = Network::new(vec![Layer::Conv(prime::nn::Conv2d::new(
            in_ch, out_ch, kernel, in_h, in_w, padding, Activation::Identity,
        ))])
        .expect("widths match");
        net.init_random(&mut SmallRng::seed_from_u64(seed));
        let inputs = in_ch * in_h * in_w;
        let input: Vec<f32> = (0..inputs)
            .map(|i| ((i * 7 + seed as usize % 5) % 13) as f32 / 13.0)
            .collect();
        let mut controller = BankController::new(2, 8, 4096, 8192);
        let mut runner = CommandRunner::compile(&net, &mut controller, &input)
            .expect("small conv compiles");
        let hw = runner.infer(&mut controller, &input).unwrap();
        let sw = net.forward(&input).unwrap();
        prop_assert_eq!(hw.len(), sw.len());
        let max = sw.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(0.2);
        for (a, b) in hw.iter().zip(&sw) {
            prop_assert!((a - b).abs() / max < 0.3, "device {} vs host {}", a, b);
        }
    }
}

#[test]
fn cnn_executes_on_ff_mats() {
    // A small conv-pool-fc network (CNN-1 shaped, scaled down) runs
    // through the hardware pipeline and tracks the software output.
    let mut rng = SmallRng::seed_from_u64(606);
    let mut net = Network::new(vec![
        Layer::Conv(prime::nn::Conv2d::new(1, 3, 5, 12, 12, 0, Activation::Relu)),
        Layer::Pool(prime::nn::Pool2d::new(prime::nn::PoolKind::Max, 3, 8, 8, 2)),
        Layer::Fc(FullyConnected::new(48, 10, Activation::Identity)),
    ])
    .expect("widths match");
    net.init_random(&mut rng);
    let input: Vec<f32> = (0..144).map(|i| ((i * 13 % 29) as f32) / 29.0).collect();
    let sw = net.forward(&input).expect("software forward");
    let mut executor = FfExecutor::new();
    let (hw, stats) = executor.run(&net, &input).expect("hardware run");
    assert_eq!(hw.len(), 10);
    assert!(stats.pool_steps > 0, "max pooling must use the pooling hardware");
    // Outputs track software within the composing scheme's error budget.
    let sw_max = sw.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(0.1);
    for (a, b) in hw.iter().zip(&sw) {
        assert!((a - b).abs() / sw_max < 0.35, "hw {a} vs sw {b}");
    }
}
