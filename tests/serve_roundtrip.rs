//! Loopback integration test for the serving stack: a real TCP server
//! on `127.0.0.1:0`, concurrent client threads mixing digital and
//! seeded-noisy requests, and a bit-identity check of every served
//! output against a direct `PrimeSystem` call on an identically
//! deployed system — the served path must add wire framing and
//! batching without changing a single output bit.
//!
//! One `#[test]` covers the whole lifecycle (serve -> drive -> shed ->
//! error paths -> drain -> verify counters -> socket closed), so the
//! server's threads never interleave with another test's.

use std::collections::HashMap;
use std::net::TcpStream;
use std::time::Duration;

use prime::compiler::{MappingStrategy, Objective};
use prime::core::PrimeSystem;
use prime::device::NoiseModel;
use prime::nn::{Activation, FullyConnected, Layer, Network};
use prime::serve::{BatchConfig, Client, Registry, Response, Server};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const MODEL: &str = "fc-a";
const SHEDDER: &str = "shedder";
const WIDTH: usize = 16;
const CLIENTS: usize = 6;
const REQUESTS_PER_CLIENT: usize = 12;

fn test_net(seed: u64) -> Network {
    let mut net = Network::new(vec![
        Layer::Fc(FullyConnected::new(WIDTH, 10, Activation::Relu)),
        Layer::Fc(FullyConnected::new(10, 4, Activation::Identity)),
    ])
    .expect("widths match");
    net.init_random(&mut SmallRng::seed_from_u64(seed));
    net
}

fn noise() -> NoiseModel {
    NoiseModel { program_sigma: 0.0, read_sigma: 0.05 }
}

fn input_for(t: usize, k: usize) -> Vec<f32> {
    (0..WIDTH).map(|j| ((t * 31 + k * 7 + j * 3) % 13) as f32 / 13.0).collect()
}

/// Request (t, k) runs noisy on odd k, with a per-request seed.
fn seed_for(t: usize, k: usize) -> u64 {
    0xA5A5_0000 + (t as u64) * 1000 + k as u64
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn served_outputs_are_bit_identical_under_concurrent_clients() {
    // --- Reference: the same net deployed directly, each request run as
    // its own single-input call (the served contract's other side).
    let net = test_net(7);
    let calibration = vec![0.5f32; WIDTH];
    let mut reference = PrimeSystem::new(2, 2, 4, 2048);
    reference.deploy(&net, &calibration).expect("fits");
    let mut expected: HashMap<(usize, usize), Vec<f32>> = HashMap::new();
    for t in 0..CLIENTS {
        for k in 0..REQUESTS_PER_CLIENT {
            let input = input_for(t, k);
            let out = if k % 2 == 1 {
                reference
                    .infer_batch_noisy(&[input], &noise(), seed_for(t, k))
                    .expect("runs")
            } else {
                reference.infer_batch(&[input]).expect("runs")
            };
            expected.insert((t, k), out.into_iter().next().expect("one output"));
        }
    }

    // --- Server: the same net deployed through the registry — under a
    // latency-objective mapping *search*, whose outputs must still match
    // the fixed-default reference deploy bit-for-bit — plus a
    // zero-capacity model whose every request is deterministically shed.
    let mut registry = Registry::new();
    registry
        .register(
            MODEL,
            PrimeSystem::new(2, 2, 4, 2048),
            &net,
            &calibration,
            BatchConfig {
                max_batch: 4,
                max_delay: Duration::from_millis(2),
                queue_bound: 256,
            },
            noise(),
            Objective::Latency,
        )
        .expect("test net deploys");
    assert!(
        registry
            .registration_log()
            .last()
            .is_some_and(|entry| entry.contains("mapping search") && entry.contains("CHOSEN")),
        "searched registration must log the chosen candidate"
    );
    registry
        .register(
            SHEDDER,
            PrimeSystem::new(1, 2, 4, 2048),
            &net,
            &calibration,
            BatchConfig {
                max_batch: 4,
                max_delay: Duration::from_millis(2),
                queue_bound: 0,
            },
            noise(),
            Objective::Fixed(MappingStrategy::ReplicateDense),
        )
        .expect("shedder deploys");
    let server = Server::bind("127.0.0.1:0", registry).expect("binds loopback");
    let addr = server.local_addr().expect("has an address");
    let stop = server.shutdown_handle().expect("has an address");
    let server_thread = std::thread::spawn(move || server.run());

    // --- Concurrent clients: digital and seeded-noisy requests racing
    // through the batch collector, every response checked bit-exactly.
    let expected = &expected;
    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            scope.spawn(move || {
                let mut client =
                    Client::connect_timeout(&addr, Duration::from_secs(5)).expect("connects");
                for k in 0..REQUESTS_PER_CLIENT {
                    let input = input_for(t, k);
                    let response = if k % 2 == 1 {
                        client.infer_noisy(MODEL, input, seed_for(t, k))
                    } else {
                        client.infer(MODEL, input)
                    }
                    .expect("round trip succeeds");
                    match response {
                        Response::Output { values, .. } => assert_eq!(
                            bits(&values),
                            bits(&expected[&(t, k)]),
                            "client {t} request {k}: served output diverged from the \
                             direct call"
                        ),
                        other => panic!("client {t} request {k}: unexpected {other:?}"),
                    }
                }

                // The zero-capacity model sheds with the typed response,
                // echoing the request id, and the connection stays usable.
                match client.infer(SHEDDER, input_for(t, 0)).expect("round trip succeeds") {
                    Response::Overloaded { model, queue_depth, queue_bound, .. } => {
                        assert_eq!(model, SHEDDER);
                        assert_eq!((queue_depth, queue_bound), (0, 0));
                    }
                    other => panic!("client {t}: expected Overloaded, got {other:?}"),
                }

                // Unknown models and wrong widths answer typed errors
                // without poisoning the connection.
                match client.infer("no-such-model", input_for(t, 0)).expect("round trip") {
                    Response::Error { message, .. } => {
                        assert!(message.contains("unknown model"), "got: {message}")
                    }
                    other => panic!("client {t}: expected Error, got {other:?}"),
                }
                match client.infer(MODEL, vec![0.5; WIDTH + 1]).expect("round trip") {
                    Response::Error { message, .. } => {
                        assert!(message.contains("expects"), "got: {message}")
                    }
                    other => panic!("client {t}: expected Error, got {other:?}"),
                }

                // Same noisy request again: the seeded stream restarts per
                // call, so the answer reproduces bit-exactly.
                match client
                    .infer_noisy(MODEL, input_for(t, 1), seed_for(t, 1))
                    .expect("round trip succeeds")
                {
                    Response::Output { values, .. } => {
                        assert_eq!(bits(&values), bits(&expected[&(t, 1)]))
                    }
                    other => panic!("client {t}: unexpected {other:?}"),
                }
            });
        }
    });

    // --- Graceful shutdown: run() drains, joins every scoped thread,
    // and hands back consistent counters.
    stop.shutdown();
    let stats = server_thread
        .join()
        .expect("server thread must not panic")
        .expect("server must exit cleanly");
    assert_eq!(stats.connections, CLIENTS as u64, "one connection per client");
    let by_name: HashMap<&str, _> =
        stats.models.iter().map(|m| (m.model.as_str(), m)).collect();
    let fc = by_name[MODEL];
    // 12 checked requests + 1 noisy repeat per client; the two error
    // probes never reach the model queue.
    assert_eq!(fc.served, (CLIENTS * (REQUESTS_PER_CLIENT + 1)) as u64);
    assert_eq!(fc.shed, 0);
    assert_eq!(fc.failed, 0);
    assert!(
        fc.batches <= fc.served,
        "digital coalescing must never need more device calls than requests"
    );
    let shedder = by_name[SHEDDER];
    assert_eq!(shedder.served, 0);
    assert_eq!(shedder.shed, CLIENTS as u64);

    // The listener died with run(): fresh connections must be refused.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "socket still accepting after shutdown"
    );
}
