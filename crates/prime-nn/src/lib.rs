//! Neural-network substrate for the PRIME reproduction.
//!
//! PRIME accelerates MLP and CNN inference inside ReRAM main memory; this
//! crate supplies everything the architecture needs to *have* networks to
//! run: dense tensors, the dynamic fixed-point quantization the paper's
//! precision study uses (Fig. 6), executable layers with offline SGD
//! training (paper §IV-A trains off-line), a synthetic MNIST-substitute
//! digit dataset, and the six MlBench workload topologies of Table III.
//!
//! # Examples
//!
//! Training a small digit classifier and checking its accuracy under the
//! paper's 3-bit input / 3-bit weight dynamic fixed-point assumption:
//!
//! ```no_run
//! use prime_nn::{
//!     evaluate_quantized, train_sgd, Activation, DigitGenerator, FullyConnected, Layer,
//!     Network, TrainConfig, IMAGE_PIXELS, NUM_CLASSES,
//! };
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let mut rng = SmallRng::seed_from_u64(0);
//! let data = DigitGenerator::default().dataset(1000, &mut rng);
//! let mut net = Network::new(vec![
//!     Layer::Fc(FullyConnected::new(IMAGE_PIXELS, 64, Activation::Sigmoid)),
//!     Layer::Fc(FullyConnected::new(64, NUM_CLASSES, Activation::Identity)),
//! ])?;
//! net.init_random(&mut rng);
//! train_sgd(&mut net, &data, TrainConfig::quick(), &mut rng)?;
//! let acc = evaluate_quantized(&net, &data, 3, 3)?;
//! assert!(acc > 0.9);
//! # Ok::<(), prime_nn::NnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod error;
mod fixed;
mod layer;
mod metrics;
mod network;
mod snn;
mod tensor;
mod train;
mod workloads;

pub use dataset::{DigitGenerator, Sample, IMAGE_DIM, IMAGE_PIXELS, NUM_CLASSES};
pub use error::NnError;
pub use fixed::{quantize_in_place, DynFixedFormat, QuantizedTensor};
pub use layer::{
    Activation, Conv2d, ConvCache, ConvGrads, FcCache, FcGrads, FullyConnected, Pool2d,
    PoolCache, PoolKind,
};
pub use metrics::ConfusionMatrix;
pub use network::{Layer, LayerCache, Network};
pub use snn::{SnnConfig, SpikingNetwork};
pub use tensor::Tensor;
pub use train::{
    cross_entropy, evaluate, evaluate_quantized, softmax, train_sgd, EpochStats, TrainConfig,
};
pub use workloads::{cnn1_with_lrn, LayerSpec, MlBench, NetworkSpec};
