//! Synthetic handwritten-digit dataset.
//!
//! The paper evaluates on MNIST \[67\]; shipping the dataset is neither
//! possible nor necessary here, so this module generates a *synthetic
//! substitute*: 28x28 grayscale images of the ten digits rendered from
//! seven-segment stroke templates, perturbed by random translation,
//! per-image intensity scaling, and pixel noise. The task keeps MNIST's
//! structure — 10 classes, 8-bit-range pixels, high intra-class
//! variability — which is what the Fig. 6 precision study exercises
//! (see DESIGN.md §4, Substitutions).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Image edge length (28x28, like MNIST).
pub const IMAGE_DIM: usize = 28;
/// Pixels per image.
pub const IMAGE_PIXELS: usize = IMAGE_DIM * IMAGE_DIM;
/// Number of classes.
pub const NUM_CLASSES: usize = 10;

/// Seven-segment membership per digit: segments `[A, B, C, D, E, F, G]`
/// (top, top-right, bottom-right, bottom, bottom-left, top-left, middle).
const SEGMENTS: [[bool; 7]; 10] = [
    [true, true, true, true, true, true, false],    // 0
    [false, true, true, false, false, false, false], // 1
    [true, true, false, true, true, false, true],   // 2
    [true, true, true, true, false, false, true],   // 3
    [false, true, true, false, false, true, true],  // 4
    [true, false, true, true, false, true, true],   // 5
    [true, false, true, true, true, true, true],    // 6
    [true, true, true, false, false, false, false], // 7
    [true, true, true, true, true, true, true],     // 8
    [true, true, true, true, false, true, true],    // 9
];

/// One labelled sample: a flattened 28x28 image in `[0, 1]` and its digit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Flattened row-major pixels in `[0, 1]`.
    pub pixels: Vec<f32>,
    /// The digit (0-9).
    pub label: usize,
}

/// Deterministic synthetic-digit generator.
///
/// # Examples
///
/// ```
/// use prime_nn::{DigitGenerator, IMAGE_PIXELS};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let gen = DigitGenerator::default();
/// let mut rng = SmallRng::seed_from_u64(1);
/// let sample = gen.sample(7, &mut rng);
/// assert_eq!(sample.label, 7);
/// assert_eq!(sample.pixels.len(), IMAGE_PIXELS);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DigitGenerator {
    /// Maximum absolute translation in pixels.
    pub max_shift: i32,
    /// Additive uniform pixel noise amplitude.
    pub noise: f32,
    /// Minimum stroke intensity (each image scales its strokes uniformly
    /// in `[min_intensity, 1]`).
    pub min_intensity: f32,
}

impl DigitGenerator {
    /// The default perturbation profile used by the experiments.
    pub fn new() -> Self {
        DigitGenerator { max_shift: 2, noise: 0.08, min_intensity: 0.7 }
    }

    /// Renders one sample of `digit` with random perturbations.
    ///
    /// # Panics
    ///
    /// Panics if `digit >= 10`.
    pub fn sample<R: Rng + ?Sized>(&self, digit: usize, rng: &mut R) -> Sample {
        assert!(digit < NUM_CLASSES, "digit must be 0-9");
        let dx = rng.gen_range(-self.max_shift..=self.max_shift);
        let dy = rng.gen_range(-self.max_shift..=self.max_shift);
        let intensity = rng.gen_range(self.min_intensity..=1.0f32);
        let mut pixels = vec![0.0f32; IMAGE_PIXELS];
        let segs = SEGMENTS[digit];
        // Glyph box: rows 6..22, cols 9..19; strokes are 2 px thick.
        let (top, mid, bot) = (6i32, 13i32, 20i32);
        let (left, right) = (9i32, 17i32);
        let mut stroke = |y0: i32, y1: i32, x0: i32, x1: i32| {
            for y in y0..=y1 {
                for x in x0..=x1 {
                    let (py, px) = (y + dy, x + dx);
                    if (0..IMAGE_DIM as i32).contains(&py) && (0..IMAGE_DIM as i32).contains(&px) {
                        pixels[py as usize * IMAGE_DIM + px as usize] = intensity;
                    }
                }
            }
        };
        if segs[0] {
            stroke(top, top + 1, left, right + 1); // A: top bar
        }
        if segs[1] {
            stroke(top, mid, right, right + 1); // B: top-right
        }
        if segs[2] {
            stroke(mid, bot + 1, right, right + 1); // C: bottom-right
        }
        if segs[3] {
            stroke(bot, bot + 1, left, right + 1); // D: bottom bar
        }
        if segs[4] {
            stroke(mid, bot + 1, left, left + 1); // E: bottom-left
        }
        if segs[5] {
            stroke(top, mid, left, left + 1); // F: top-left
        }
        if segs[6] {
            stroke(mid, mid + 1, left, right + 1); // G: middle bar
        }
        for p in &mut pixels {
            *p = (*p + rng.gen_range(-self.noise..=self.noise)).clamp(0.0, 1.0);
        }
        Sample { pixels, label: digit }
    }

    /// Generates a balanced dataset of `n` samples cycling through digits.
    pub fn dataset<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Sample> {
        (0..n).map(|i| self.sample(i % NUM_CLASSES, rng)).collect()
    }
}

impl Default for DigitGenerator {
    fn default() -> Self {
        DigitGenerator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_valid_images() {
        let gen = DigitGenerator::default();
        let mut rng = SmallRng::seed_from_u64(3);
        for d in 0..10 {
            let s = gen.sample(d, &mut rng);
            assert_eq!(s.pixels.len(), IMAGE_PIXELS);
            assert_eq!(s.label, d);
            assert!(s.pixels.iter().all(|&p| (0.0..=1.0).contains(&p)));
            // The glyph must actually contain ink.
            assert!(s.pixels.iter().filter(|&&p| p > 0.5).count() > 10);
        }
    }

    #[test]
    fn digits_are_distinguishable_without_noise() {
        let gen = DigitGenerator { max_shift: 0, noise: 0.0, min_intensity: 1.0 };
        let mut rng = SmallRng::seed_from_u64(0);
        let images: Vec<Vec<f32>> = (0..10).map(|d| gen.sample(d, &mut rng).pixels).collect();
        for a in 0..10 {
            for b in (a + 1)..10 {
                let diff: f32 =
                    images[a].iter().zip(&images[b]).map(|(x, y)| (x - y).abs()).sum();
                assert!(diff > 1.0, "digits {a} and {b} render identically");
            }
        }
    }

    #[test]
    fn dataset_is_balanced() {
        let gen = DigitGenerator::default();
        let mut rng = SmallRng::seed_from_u64(9);
        let data = gen.dataset(100, &mut rng);
        for d in 0..10 {
            assert_eq!(data.iter().filter(|s| s.label == d).count(), 10);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = DigitGenerator::default();
        let a = gen.sample(5, &mut SmallRng::seed_from_u64(7));
        let b = gen.sample(5, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
