//! The MlBench workloads (paper Table III).
//!
//! Six NN designs: CNN-1 and CNN-2 (MNIST-scale convolutional networks),
//! MLP-S/M/L (small/medium/large multilayer perceptrons), and VGG-D — the
//! extremely large ImageNet CNN with 16 weight layers, ~1.4x10^8 synapses
//! and ~1.6x10^10 operations (paper §V-A).
//!
//! Workloads exist at two levels: *shape-only* [`NetworkSpec`]s (used by
//! the mapping compiler and the performance simulator, so VGG-D never has
//! to allocate half a gigabyte of weights) and executable
//! [`Network`](crate::Network)s instantiated from the spec for the
//! MNIST-scale benchmarks.

use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::layer::{Activation, Conv2d, FullyConnected, Pool2d, PoolKind};
use crate::network::{Layer, Network};

/// Shape-only description of one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Fully-connected `inputs -> outputs`.
    FullyConnected {
        /// Input width.
        inputs: usize,
        /// Output width.
        outputs: usize,
    },
    /// 2-D convolution over `[in_ch, in_h, in_w]`.
    Conv {
        /// Input channels.
        in_ch: usize,
        /// Output channels (feature maps).
        out_ch: usize,
        /// Square kernel edge.
        kernel: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Zero padding on each side.
        padding: usize,
    },
    /// Non-overlapping pooling with stride = window.
    Pool {
        /// Pooling flavour.
        kind: PoolKind,
        /// Channels.
        channels: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Window edge.
        window: usize,
    },
    /// Local response normalization across `window` adjacent channels.
    /// PRIME has no LRN hardware (paper §III-E: state-of-the-art CNNs
    /// dropped LRN); when present, the layer falls back to the CPU.
    Lrn {
        /// Channels.
        channels: usize,
        /// Feature-map height.
        in_h: usize,
        /// Feature-map width.
        in_w: usize,
        /// Normalization window across channels.
        window: usize,
    },
}

impl LayerSpec {
    /// Input element count.
    pub fn inputs(&self) -> usize {
        match *self {
            LayerSpec::FullyConnected { inputs, .. } => inputs,
            LayerSpec::Conv { in_ch, in_h, in_w, .. } => in_ch * in_h * in_w,
            LayerSpec::Pool { channels, in_h, in_w, .. } => channels * in_h * in_w,
            LayerSpec::Lrn { channels, in_h, in_w, .. } => channels * in_h * in_w,
        }
    }

    /// Output element count.
    pub fn outputs(&self) -> usize {
        match *self {
            LayerSpec::FullyConnected { outputs, .. } => outputs,
            LayerSpec::Conv { out_ch, kernel, in_h, in_w, padding, .. } => {
                out_ch * (in_h + 2 * padding - kernel + 1) * (in_w + 2 * padding - kernel + 1)
            }
            LayerSpec::Pool { channels, in_h, in_w, window, .. } => {
                channels * (in_h / window) * (in_w / window)
            }
            LayerSpec::Lrn { channels, in_h, in_w, .. } => channels * in_h * in_w,
        }
    }

    /// For conv layers, the output feature-map dimensions.
    pub fn conv_out_dims(&self) -> Option<(usize, usize)> {
        match *self {
            LayerSpec::Conv { kernel, in_h, in_w, padding, .. } => {
                Some((in_h + 2 * padding - kernel + 1, in_w + 2 * padding - kernel + 1))
            }
            _ => None,
        }
    }

    /// Synaptic weight count (pooling has none; biases excluded, as in the
    /// paper's synapse accounting).
    pub fn synapses(&self) -> u64 {
        match *self {
            LayerSpec::FullyConnected { inputs, outputs } => (inputs * outputs) as u64,
            LayerSpec::Conv { in_ch, out_ch, kernel, .. } => {
                (out_ch * in_ch * kernel * kernel) as u64
            }
            LayerSpec::Pool { .. } | LayerSpec::Lrn { .. } => 0,
        }
    }

    /// Multiply-accumulate operations for one inference.
    pub fn mac_ops(&self) -> u64 {
        match *self {
            LayerSpec::FullyConnected { inputs, outputs } => (inputs * outputs) as u64,
            LayerSpec::Conv { in_ch, kernel, .. } => {
                let per_output = in_ch * kernel * kernel;
                self.outputs() as u64 * per_output as u64
            }
            LayerSpec::Pool { window, .. } => self.outputs() as u64 * (window * window) as u64,
            // Each LRN output reads `window` neighbouring channels plus a
            // square, divide, and power — roughly 2 ops per neighbour.
            LayerSpec::Lrn { window, .. } => self.outputs() as u64 * 2 * window as u64,
        }
    }

    /// Whether the layer carries weights an FF mat must store.
    pub fn is_weight_layer(&self) -> bool {
        self.synapses() > 0
    }

    /// Whether PRIME must fall back to the CPU for this layer (LRN only,
    /// paper §III-E).
    pub fn needs_cpu_fallback(&self) -> bool {
        matches!(self, LayerSpec::Lrn { .. })
    }

    /// Short description matching the paper's notation.
    pub fn describe(&self) -> String {
        match *self {
            LayerSpec::FullyConnected { inputs, outputs } => format!("{inputs}-{outputs}"),
            LayerSpec::Conv { out_ch, kernel, .. } => format!("conv{kernel}x{out_ch}"),
            LayerSpec::Pool { window, .. } => format!("pool{window}"),
            LayerSpec::Lrn { window, .. } => format!("lrn{window}"),
        }
    }
}

/// Shape-only description of a whole network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkSpec {
    name: String,
    layers: Vec<LayerSpec>,
}

impl NetworkSpec {
    /// Creates a spec, validating interface widths.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyNetwork`] or [`NnError::ShapeMismatch`].
    pub fn new(name: impl Into<String>, layers: Vec<LayerSpec>) -> Result<Self, NnError> {
        if layers.is_empty() {
            return Err(NnError::EmptyNetwork);
        }
        for pair in layers.windows(2) {
            if pair[0].outputs() != pair[1].inputs() {
                return Err(NnError::ShapeMismatch {
                    expected: vec![pair[0].outputs()],
                    got: vec![pair[1].inputs()],
                });
            }
        }
        Ok(NetworkSpec { name: name.into(), layers })
    }

    /// The workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer shapes.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Network input width.
    pub fn inputs(&self) -> usize {
        self.layers[0].inputs()
    }

    /// Network output width.
    pub fn outputs(&self) -> usize {
        // `new` rejects empty stacks, so the 0 default never fires.
        self.layers.last().map_or(0, LayerSpec::outputs)
    }

    /// Total synapses across all layers.
    pub fn synapses(&self) -> u64 {
        self.layers.iter().map(LayerSpec::synapses).sum()
    }

    /// Total MAC operations per inference.
    pub fn mac_ops(&self) -> u64 {
        self.layers.iter().map(LayerSpec::mac_ops).sum()
    }

    /// Builds an executable zero-weight network from the spec. Hidden
    /// fully-connected layers use sigmoid, convolutions ReLU, and the last
    /// layer identity — the activation placement PRIME supports in
    /// hardware.
    ///
    /// # Errors
    ///
    /// Propagates [`NnError`] from network construction.
    pub fn to_network(&self) -> Result<Network, NnError> {
        let last = self.layers.len().saturating_sub(1);
        let layers = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, spec)| match *spec {
                LayerSpec::FullyConnected { inputs, outputs } => {
                    let act =
                        if i == last { Activation::Identity } else { Activation::Sigmoid };
                    Ok(Layer::Fc(FullyConnected::new(inputs, outputs, act)))
                }
                LayerSpec::Conv { in_ch, out_ch, kernel, in_h, in_w, padding } => {
                    Ok(Layer::Conv(Conv2d::new(
                        in_ch,
                        out_ch,
                        kernel,
                        in_h,
                        in_w,
                        padding,
                        Activation::Relu,
                    )))
                }
                LayerSpec::Pool { kind, channels, in_h, in_w, window } => {
                    Ok(Layer::Pool(Pool2d::new(kind, channels, in_h, in_w, window)))
                }
                // LRN is modelled at the performance level only (CPU
                // fallback); no executable layer exists.
                LayerSpec::Lrn { .. } => Err(NnError::Untrainable { layer: spec.describe() }),
            })
            .collect::<Result<Vec<_>, NnError>>()?;
        Network::new(layers)
    }

    /// Builds a full-weight network the device command runner can
    /// execute: ReLU on every hidden weight layer (the runner's
    /// integer-exact activation — and the activation modern CNN stacks
    /// such as VGG actually use), identity on the last, weights
    /// initialized from `seed`. This is how the full-size VGG-D spec
    /// becomes a deployable network — ~1.4x10^8 synapses are allocated,
    /// so reserve it for benchmarks, not unit tests.
    ///
    /// # Errors
    ///
    /// Propagates [`NnError`] from network construction (e.g. an LRN
    /// layer, which has no executable form).
    pub fn to_runner_network(&self, seed: u64) -> Result<Network, NnError> {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let last = self.layers.len().saturating_sub(1);
        let layers = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, spec)| match *spec {
                LayerSpec::FullyConnected { inputs, outputs } => {
                    let act = if i == last { Activation::Identity } else { Activation::Relu };
                    Ok(Layer::Fc(FullyConnected::new(inputs, outputs, act)))
                }
                LayerSpec::Conv { in_ch, out_ch, kernel, in_h, in_w, padding } => {
                    Ok(Layer::Conv(Conv2d::new(
                        in_ch,
                        out_ch,
                        kernel,
                        in_h,
                        in_w,
                        padding,
                        Activation::Relu,
                    )))
                }
                LayerSpec::Pool { kind, channels, in_h, in_w, window } => {
                    Ok(Layer::Pool(Pool2d::new(kind, channels, in_h, in_w, window)))
                }
                LayerSpec::Lrn { .. } => Err(NnError::Untrainable { layer: spec.describe() }),
            })
            .collect::<Result<Vec<_>, NnError>>()?;
        let mut net = Network::new(layers)?;
        net.init_random(&mut SmallRng::seed_from_u64(seed));
        Ok(net)
    }
}

impl Network {
    /// Extracts the shape-only [`NetworkSpec`] of an executable network —
    /// the form the mapping compiler consumes, so deployment can derive
    /// stage placement from the very network it is about to run.
    ///
    /// # Errors
    ///
    /// Propagates [`NnError`] from spec validation.
    pub fn to_spec(&self, name: impl Into<String>) -> Result<NetworkSpec, NnError> {
        let layers = self
            .layers()
            .iter()
            .map(|layer| match layer {
                Layer::Fc(l) => {
                    LayerSpec::FullyConnected { inputs: l.inputs(), outputs: l.outputs() }
                }
                Layer::Conv(l) => LayerSpec::Conv {
                    in_ch: l.in_channels(),
                    out_ch: l.out_channels(),
                    kernel: l.kernel(),
                    in_h: l.in_h(),
                    in_w: l.in_w(),
                    padding: l.padding(),
                },
                Layer::Pool(l) => LayerSpec::Pool {
                    kind: l.kind(),
                    channels: l.channels(),
                    in_h: l.in_h(),
                    in_w: l.in_w(),
                    window: l.window(),
                },
            })
            .collect();
        NetworkSpec::new(name, layers)
    }
}

/// The six MlBench workloads of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MlBench {
    /// `conv5x5-pool-720-70-10` on 28x28 MNIST images.
    Cnn1,
    /// `conv7x10-pool-1210-120-10` on 28x28 MNIST images.
    Cnn2,
    /// `784-500-250-10`.
    MlpS,
    /// `784-1000-500-250-10`.
    MlpM,
    /// `784-1500-1000-500-10`.
    MlpL,
    /// The 16-weight-layer VGG-D for ImageNet.
    VggD,
}

impl MlBench {
    /// Every benchmark, in the paper's presentation order.
    pub const ALL: [MlBench; 6] =
        [MlBench::Cnn1, MlBench::Cnn2, MlBench::MlpS, MlBench::MlpM, MlBench::MlpL, MlBench::VggD];

    /// The paper's name for the benchmark.
    pub fn name(&self) -> &'static str {
        match self {
            MlBench::Cnn1 => "CNN-1",
            MlBench::Cnn2 => "CNN-2",
            MlBench::MlpS => "MLP-S",
            MlBench::MlpM => "MLP-M",
            MlBench::MlpL => "MLP-L",
            MlBench::VggD => "VGG-D",
        }
    }

    /// The Table III topology string.
    pub fn topology(&self) -> &'static str {
        match self {
            MlBench::Cnn1 => "conv5x5-pool-720-70-10",
            MlBench::Cnn2 => "conv7x10-pool-1210-120-10",
            MlBench::MlpS => "784-500-250-10",
            MlBench::MlpM => "784-1000-500-250-10",
            MlBench::MlpL => "784-1500-1000-500-10",
            MlBench::VggD => {
                "conv3x64-conv3x64-pool-conv3x128-conv3x128-pool-conv3x256-conv3x256-conv3x256-\
                 pool-conv3x512-conv3x512-conv3x512-pool-conv3x512-conv3x512-conv3x512-pool-\
                 25088-4096-4096-1000"
            }
        }
    }

    /// Builds the layer-shape spec.
    pub fn spec(&self) -> NetworkSpec {
        match self {
            MlBench::Cnn1 => table_spec(
                self.name(),
                vec![
                    LayerSpec::Conv { in_ch: 1, out_ch: 5, kernel: 5, in_h: 28, in_w: 28, padding: 0 },
                    LayerSpec::Pool { kind: PoolKind::Max, channels: 5, in_h: 24, in_w: 24, window: 2 },
                    LayerSpec::FullyConnected { inputs: 720, outputs: 70 },
                    LayerSpec::FullyConnected { inputs: 70, outputs: 10 },
                ],
            ),
            MlBench::Cnn2 => table_spec(
                self.name(),
                vec![
                    LayerSpec::Conv { in_ch: 1, out_ch: 10, kernel: 7, in_h: 28, in_w: 28, padding: 0 },
                    LayerSpec::Pool { kind: PoolKind::Max, channels: 10, in_h: 22, in_w: 22, window: 2 },
                    LayerSpec::FullyConnected { inputs: 1210, outputs: 120 },
                    LayerSpec::FullyConnected { inputs: 120, outputs: 10 },
                ],
            ),
            MlBench::MlpS => mlp_spec(self.name(), &[784, 500, 250, 10]),
            MlBench::MlpM => mlp_spec(self.name(), &[784, 1000, 500, 250, 10]),
            MlBench::MlpL => mlp_spec(self.name(), &[784, 1500, 1000, 500, 10]),
            MlBench::VggD => vgg_d_spec(),
        }
    }

    /// Whether the workload is small enough to execute numerically in
    /// tests and examples. VGG-D is excluded — not because it cannot run
    /// (see [`NetworkSpec::to_runner_network`], which the throughput
    /// bench deploys at full size), but because allocating ~1.4x10^8
    /// weights is far too heavy for the unit-test tier.
    pub fn is_executable(&self) -> bool {
        !matches!(self, MlBench::VggD)
    }
}

/// CNN-1 with an AlexNet-style LRN layer after the convolution — the
/// workload used to measure PRIME's CPU-fallback cost for layers it has
/// no hardware for (paper §III-E).
pub fn cnn1_with_lrn() -> NetworkSpec {
    table_spec(
        "CNN-1+LRN",
        vec![
            LayerSpec::Conv { in_ch: 1, out_ch: 5, kernel: 5, in_h: 28, in_w: 28, padding: 0 },
            LayerSpec::Lrn { channels: 5, in_h: 24, in_w: 24, window: 5 },
            LayerSpec::Pool { kind: PoolKind::Max, channels: 5, in_h: 24, in_w: 24, window: 2 },
            LayerSpec::FullyConnected { inputs: 720, outputs: 70 },
            LayerSpec::FullyConnected { inputs: 70, outputs: 10 },
        ],
    )
}

/// Builds a spec from one of the fixed Table III stacks. The constant
/// topologies always pass width validation (pinned by the unit tests); if
/// one were ever edited inconsistently, the raw stack is returned
/// unvalidated rather than panicking at every `spec()` call site.
fn table_spec(name: &str, layers: Vec<LayerSpec>) -> NetworkSpec {
    NetworkSpec::new(name, layers.clone())
        .unwrap_or(NetworkSpec { name: name.to_string(), layers })
}

fn mlp_spec(name: &str, widths: &[usize]) -> NetworkSpec {
    let layers = widths
        .windows(2)
        .map(|w| LayerSpec::FullyConnected { inputs: w[0], outputs: w[1] })
        .collect();
    table_spec(name, layers)
}

fn vgg_d_spec() -> NetworkSpec {
    let mut layers = Vec::new();
    let mut ch = 3usize;
    let mut dim = 224usize;
    // (output channels, convs in the block) per VGG-D block.
    for &(out_ch, convs) in &[(64usize, 2usize), (128, 2), (256, 3), (512, 3), (512, 3)] {
        for _ in 0..convs {
            layers.push(LayerSpec::Conv {
                in_ch: ch,
                out_ch,
                kernel: 3,
                in_h: dim,
                in_w: dim,
                padding: 1,
            });
            ch = out_ch;
        }
        layers.push(LayerSpec::Pool {
            kind: PoolKind::Max,
            channels: ch,
            in_h: dim,
            in_w: dim,
            window: 2,
        });
        dim /= 2;
    }
    layers.push(LayerSpec::FullyConnected { inputs: 25_088, outputs: 4096 });
    layers.push(LayerSpec::FullyConnected { inputs: 4096, outputs: 4096 });
    layers.push(LayerSpec::FullyConnected { inputs: 4096, outputs: 1000 });
    table_spec("VGG-D", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnn1_dimensions_reconstruct_table_iii() {
        let spec = MlBench::Cnn1.spec();
        // conv5x5 with 5 maps on 28x28 -> 24x24x5; pool2 -> 12x12x5 = 720.
        assert_eq!(spec.layers()[1].outputs(), 720);
        assert_eq!(spec.inputs(), 784);
        assert_eq!(spec.outputs(), 10);
    }

    #[test]
    fn cnn2_dimensions_reconstruct_table_iii() {
        let spec = MlBench::Cnn2.spec();
        // conv7x10 on 28x28 -> 22x22x10; pool2 -> 11x11x10 = 1210.
        assert_eq!(spec.layers()[1].outputs(), 1210);
    }

    #[test]
    fn mlp_specs_match_topology_strings() {
        let s = MlBench::MlpS.spec();
        assert_eq!(s.synapses(), 784 * 500 + 500 * 250 + 250 * 10);
        let l = MlBench::MlpL.spec();
        assert_eq!(l.synapses(), 784 * 1500 + 1500 * 1000 + 1000 * 500 + 500 * 10);
    }

    #[test]
    fn vgg_d_matches_paper_scale() {
        let spec = MlBench::VggD.spec();
        // 16 weight layers (13 conv + 3 fc).
        let weight_layers = spec.layers().iter().filter(|l| l.is_weight_layer()).count();
        assert_eq!(weight_layers, 16);
        // ~1.4x10^8 synapses (paper §IV-B1 / §V-A).
        let synapses = spec.synapses() as f64;
        assert!((synapses / 1.38e8 - 1.0).abs() < 0.02, "synapses {synapses}");
        // ~1.6x10^10 operations (paper: ~1.6e10; MACs ~1.55e10).
        let ops = spec.mac_ops() as f64;
        assert!(ops > 1.4e10 && ops < 1.7e10, "ops {ops}");
    }

    #[test]
    fn executable_specs_build_networks() {
        for bench in MlBench::ALL {
            if bench.is_executable() {
                let net = bench.spec().to_network().unwrap();
                assert_eq!(net.inputs(), bench.spec().inputs());
                assert_eq!(net.outputs(), 10);
            }
        }
    }

    #[test]
    fn names_and_topologies_are_stable() {
        assert_eq!(MlBench::Cnn1.name(), "CNN-1");
        assert_eq!(MlBench::MlpM.topology(), "784-1000-500-250-10");
        assert_eq!(MlBench::ALL.len(), 6);
    }

    #[test]
    fn lrn_variant_is_spec_only() {
        let spec = cnn1_with_lrn();
        assert_eq!(spec.layers()[1].describe(), "lrn5");
        assert!(spec.layers()[1].needs_cpu_fallback());
        assert_eq!(spec.layers()[1].inputs(), spec.layers()[1].outputs());
        // LRN layers cannot be built into an executable network.
        assert!(matches!(spec.to_network(), Err(NnError::Untrainable { .. })));
        // But the shape chain stays consistent with plain CNN-1.
        assert_eq!(spec.outputs(), 10);
        assert_eq!(spec.synapses(), MlBench::Cnn1.spec().synapses());
    }

    #[test]
    fn spec_validates_interfaces() {
        let bad = NetworkSpec::new(
            "bad",
            vec![
                LayerSpec::FullyConnected { inputs: 4, outputs: 5 },
                LayerSpec::FullyConnected { inputs: 6, outputs: 2 },
            ],
        );
        assert!(bad.is_err());
    }
}
