//! Dynamic fixed-point quantization (Courbariaux et al. \[68\]).
//!
//! The paper evaluates input/weight precision with the *dynamic fixed
//! point* format: every tensor shares one scaling exponent while each
//! element keeps a `bits`-wide two's-complement mantissa. "Dynamic" means
//! the exponent is chosen per tensor (per layer) from the data range, so
//! a 3-bit format can still cover very different weight magnitudes across
//! layers — the property that lets PRIME run at 3-bit inputs and weights
//! with negligible accuracy loss (paper Fig. 6).

use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::tensor::Tensor;

/// A dynamic fixed-point format: `bits`-wide signed mantissas sharing the
/// scale `2^-frac_bits` (negative `frac_bits` scales up).
///
/// # Examples
///
/// ```
/// use prime_nn::DynFixedFormat;
///
/// // Choose the exponent so +/-0.8 fills a 4-bit mantissa.
/// let fmt = DynFixedFormat::for_range(4, 0.8)?;
/// let code = fmt.quantize(0.5);
/// assert!((fmt.dequantize(code) - 0.5).abs() <= fmt.step() / 2.0);
/// # Ok::<(), prime_nn::NnError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DynFixedFormat {
    bits: u8,
    frac_bits: i8,
}

impl DynFixedFormat {
    /// Creates a format with `bits`-wide mantissas (including sign) and a
    /// fixed binary point position.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadFormat`] if `bits` is 0 or above 16.
    pub fn new(bits: u8, frac_bits: i8) -> Result<Self, NnError> {
        if bits == 0 || bits > 16 {
            return Err(NnError::BadFormat { reason: "mantissa width must be 1-16 bits" });
        }
        Ok(DynFixedFormat { bits, frac_bits })
    }

    /// Chooses the binary point *dynamically* so that `abs_max` is
    /// representable: the smallest scale whose range covers it.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadFormat`] for an invalid width or a
    /// non-finite `abs_max`.
    pub fn for_range(bits: u8, abs_max: f32) -> Result<Self, NnError> {
        if !abs_max.is_finite() {
            return Err(NnError::BadFormat { reason: "range must be finite" });
        }
        let mut fmt = DynFixedFormat::new(bits, 0)?;
        if abs_max <= 0.0 {
            // Everything quantizes to zero regardless; keep unit scale.
            return Ok(fmt);
        }
        // max representable positive value is (2^(bits-1) - 1) * 2^-frac.
        let max_code = fmt.max_code() as f32;
        let needed = (abs_max / max_code).log2().ceil() as i32;
        let frac = (-needed).clamp(-63, 63) as i8;
        fmt.frac_bits = frac;
        Ok(fmt)
    }

    /// Chooses the format for a whole tensor (per-layer dynamic exponent).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadFormat`] for an invalid width.
    pub fn for_tensor(bits: u8, tensor: &Tensor) -> Result<Self, NnError> {
        Self::for_range(bits, tensor.abs_max())
    }

    /// Chooses the format from a high quantile of the data's magnitude
    /// instead of the absolute maximum, letting rare outliers saturate so
    /// the bulk of the values keep resolution — the calibration that makes
    /// very low-precision dynamic fixed point workable (the paper reaches
    /// 99 % accuracy at 3-bit weights, Fig. 6).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadFormat`] for an invalid width or an empty
    /// slice.
    pub fn for_values_clipped(bits: u8, values: &[f32], quantile: f64) -> Result<Self, NnError> {
        if values.is_empty() {
            return Err(NnError::BadFormat { reason: "cannot calibrate on empty data" });
        }
        let mut mags: Vec<f32> = values.iter().map(|v| v.abs()).collect();
        mags.sort_by(f32::total_cmp);
        let idx = ((mags.len() as f64 - 1.0) * quantile.clamp(0.0, 1.0)).round() as usize;
        Self::for_range(bits, mags[idx])
    }

    /// Mantissa width in bits (including sign).
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Binary point position: values are `code * 2^-frac_bits`.
    pub fn frac_bits(&self) -> i8 {
        self.frac_bits
    }

    /// Largest positive mantissa code.
    pub fn max_code(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// Most negative mantissa code.
    pub fn min_code(&self) -> i32 {
        -(1i32 << (self.bits - 1))
    }

    /// The quantization step `2^-frac_bits`.
    pub fn step(&self) -> f32 {
        (2.0f32).powi(-i32::from(self.frac_bits))
    }

    /// Quantizes a value to the nearest representable code, saturating.
    pub fn quantize(&self, value: f32) -> i32 {
        let scaled = value / self.step();
        (scaled.round() as i64).clamp(i64::from(self.min_code()), i64::from(self.max_code()))
            as i32
    }

    /// Reconstructs the real value of a mantissa code.
    pub fn dequantize(&self, code: i32) -> f32 {
        code as f32 * self.step()
    }

    /// Quantizes then dequantizes — the value the hardware actually
    /// computes with.
    pub fn round_trip(&self, value: f32) -> f32 {
        self.dequantize(self.quantize(value))
    }

    /// Worst-case absolute rounding error for in-range values.
    pub fn max_error(&self) -> f32 {
        self.step() / 2.0
    }
}

/// A tensor quantized to a dynamic fixed-point format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    format: DynFixedFormat,
    shape: Vec<usize>,
    codes: Vec<i32>,
}

impl QuantizedTensor {
    /// Quantizes a tensor with a per-tensor dynamic exponent.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadFormat`] for an invalid width.
    pub fn quantize(tensor: &Tensor, bits: u8) -> Result<Self, NnError> {
        let format = DynFixedFormat::for_tensor(bits, tensor)?;
        let codes = tensor.data().iter().map(|&v| format.quantize(v)).collect();
        Ok(QuantizedTensor { format, shape: tensor.shape().to_vec(), codes })
    }

    /// The format shared by every element.
    pub fn format(&self) -> DynFixedFormat {
        self.format
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The mantissa codes, row-major.
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }

    /// Dequantizes back to a real-valued tensor.
    pub fn dequantize(&self) -> Tensor {
        // Allocate by shape and fill: the element count matches the code
        // count by construction, no fallible reshape needed.
        let mut tensor = Tensor::zeros(self.shape.clone());
        for (dst, &code) in tensor.data_mut().iter_mut().zip(&self.codes) {
            *dst = self.format.dequantize(code);
        }
        tensor
    }
}

/// Quantizes a tensor in place: every element is replaced by its
/// dynamic-fixed-point round trip at `bits` of precision. This is how the
/// Fig. 6 sweep degrades a trained network to each precision point.
pub fn quantize_in_place(tensor: &mut Tensor, bits: u8) -> Result<DynFixedFormat, NnError> {
    let format = DynFixedFormat::for_tensor(bits, tensor)?;
    for v in tensor.data_mut() {
        *v = format.round_trip(*v);
    }
    Ok(format)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_validates_width() {
        assert!(DynFixedFormat::new(0, 0).is_err());
        assert!(DynFixedFormat::new(17, 0).is_err());
        assert!(DynFixedFormat::new(3, -5).is_ok());
    }

    #[test]
    fn for_range_covers_the_range() {
        for bits in 2..=8u8 {
            for range in [0.01f32, 0.5, 1.0, 3.7, 100.0] {
                let fmt = DynFixedFormat::for_range(bits, range).unwrap();
                let q = fmt.quantize(range);
                let back = fmt.dequantize(q);
                assert!(
                    (back - range).abs() <= fmt.step(),
                    "bits {bits} range {range}: got {back}"
                );
            }
        }
    }

    #[test]
    fn quantize_saturates() {
        let fmt = DynFixedFormat::new(4, 0).unwrap();
        assert_eq!(fmt.quantize(100.0), 7);
        assert_eq!(fmt.quantize(-100.0), -8);
    }

    #[test]
    fn round_trip_error_is_bounded() {
        let fmt = DynFixedFormat::for_range(6, 1.0).unwrap();
        for i in -100..=100 {
            let v = i as f32 / 100.0;
            assert!((fmt.round_trip(v) - v).abs() <= fmt.max_error() + 1e-7);
        }
    }

    #[test]
    fn zero_range_tensor_quantizes_to_zero() {
        let t = Tensor::zeros(vec![4]);
        let q = QuantizedTensor::quantize(&t, 3).unwrap();
        assert!(q.codes().iter().all(|&c| c == 0));
        assert_eq!(q.dequantize().data(), t.data());
    }

    #[test]
    fn quantized_tensor_round_trips_shape() {
        let t = Tensor::from_vec(vec![2, 2], vec![0.1, -0.9, 0.5, 0.0]).unwrap();
        let q = QuantizedTensor::quantize(&t, 8).unwrap();
        assert_eq!(q.shape(), &[2, 2]);
        let back = q.dequantize();
        for (a, b) in back.data().iter().zip(t.data()) {
            assert!((a - b).abs() <= q.format().max_error() + 1e-7);
        }
    }

    #[test]
    fn one_bit_format_is_degenerate_but_valid() {
        let fmt = DynFixedFormat::for_range(1, 1.0).unwrap();
        // 1-bit two's complement: codes {-1, 0}.
        assert_eq!(fmt.max_code(), 0);
        assert_eq!(fmt.min_code(), -1);
    }

    #[test]
    fn quantize_in_place_matches_round_trip() {
        let mut t = Tensor::from_vec(vec![3], vec![0.3, -0.7, 0.05]).unwrap();
        let orig = t.clone();
        let fmt = quantize_in_place(&mut t, 5).unwrap();
        for (q, o) in t.data().iter().zip(orig.data()) {
            assert_eq!(*q, fmt.round_trip(*o));
        }
    }
}
