//! A minimal dense tensor.
//!
//! The NN substrate needs only contiguous `f32` storage with a shape and a
//! handful of linear-algebra helpers — enough to express the MLP and CNN
//! workloads of Table III without an external numerics dependency.

use serde::{Deserialize, Serialize};

use crate::error::NnError;

/// A dense row-major `f32` tensor.
///
/// # Examples
///
/// ```
/// use prime_nn::Tensor;
///
/// let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.get(&[1, 2]), 6.0);
/// # Ok::<(), prime_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: Vec<usize>) -> Self {
        assert!(!shape.is_empty(), "tensor shape must be non-empty");
        assert!(shape.iter().all(|&d| d > 0), "tensor dimensions must be non-zero");
        let len = shape.iter().product();
        Tensor { shape, data: vec![0.0; len] }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `data.len()` does not equal
    /// the shape's element count.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, NnError> {
        let len: usize = shape.iter().product();
        if data.len() != len {
            return Err(NnError::ShapeMismatch { expected: shape, got: vec![data.len()] });
        }
        Ok(Tensor { shape, data })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (i, (&idx, &dim)) in index.iter().zip(self.shape.iter()).enumerate() {
            debug_assert!(idx < dim, "index {idx} out of bounds for dim {i} ({dim})");
            off = off * dim + idx;
        }
        off
    }

    /// Reads one element.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the index rank or bounds are wrong.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Writes one element.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the index rank or bounds are wrong.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    /// Reshapes in place (element count must be preserved).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if element counts differ.
    pub fn reshape(&mut self, shape: Vec<usize>) -> Result<(), NnError> {
        let len: usize = shape.iter().product();
        if len != self.data.len() {
            return Err(NnError::ShapeMismatch { expected: shape, got: self.shape.clone() });
        }
        self.shape = shape;
        Ok(())
    }

    /// Largest absolute value (0 for an all-zero tensor).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Index of the maximum element (first occurrence), for classification
    /// argmax.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Matrix-vector product: `self` is `[rows, cols]`, `x` has `cols`
    /// elements; returns `rows` sums.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `self` is not a matrix or the
    /// vector length differs from `cols`.
    pub fn matvec(&self, x: &[f32]) -> Result<Vec<f32>, NnError> {
        if self.shape.len() != 2 {
            return Err(NnError::ShapeMismatch {
                expected: vec![0, x.len()],
                got: self.shape.clone(),
            });
        }
        let (rows, cols) = (self.shape[0], self.shape[1]);
        if x.len() != cols {
            return Err(NnError::ShapeMismatch { expected: vec![cols], got: vec![x.len()] });
        }
        let mut out = vec![0.0f32; rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * cols..(r + 1) * cols];
            *o = row.iter().zip(x).map(|(&w, &v)| w * v).sum();
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_len() {
        let t = Tensor::zeros(vec![3, 4]);
        assert_eq!(t.shape(), &[3, 4]);
        assert_eq!(t.len(), 12);
        assert!(!t.is_empty());
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(vec![2, 3, 4]);
        t.set(&[1, 2, 3], 7.5);
        assert_eq!(t.get(&[1, 2, 3]), 7.5);
        assert_eq!(t.get(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        t.reshape(vec![6]).unwrap();
        assert_eq!(t.shape(), &[6]);
        assert_eq!(t.get(&[5]), 5.0);
        assert!(t.reshape(vec![4]).is_err());
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = m.matvec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(y, vec![-2.0, -2.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn abs_max_and_argmax() {
        let t = Tensor::from_vec(vec![4], vec![-5.0, 2.0, 4.9, -0.1]).unwrap();
        assert_eq!(t.abs_max(), 5.0);
        assert_eq!(t.argmax(), 2);
    }
}
