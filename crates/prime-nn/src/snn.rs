//! Spiking neural networks — PRIME's second stated future work
//! ("Making PRIME to support SNN is our future work", §II-B; ReRAM can
//! implement SNNs, ref \[13\]).
//!
//! The module provides the standard rate-coded ANN-to-SNN conversion:
//! a trained ReLU network's weights are reused unchanged; inputs are
//! presented as deterministic spike trains whose rate is proportional to
//! intensity; each neuron integrates weighted spikes into a leaky
//! membrane and fires when it crosses threshold; class scores are output
//! spike counts. Because spikes are *binary*, every synaptic event is a
//! plain weight read — exactly the operation a ReRAM crossbar performs
//! with single-level (1-bit) wordline drivers, which is why SNNs map
//! naturally onto PRIME's FF subarrays.

use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::layer::Activation;
use crate::network::{Layer, Network};

/// Configuration of a rate-coded SNN inference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnnConfig {
    /// Simulation timesteps per inference (more = closer to the ANN).
    pub timesteps: usize,
    /// Firing threshold as a fraction of the layer's maximum observed
    /// pre-activation (1.0 reproduces the ANN's scaling).
    pub threshold_scale: f32,
    /// Membrane leak per timestep (0 = perfect integrator).
    pub leak: f32,
}

impl SnnConfig {
    /// A profile that recovers ANN accuracy on the digit task.
    pub fn accurate() -> Self {
        SnnConfig { timesteps: 64, threshold_scale: 1.0, leak: 0.0 }
    }

    /// A low-latency profile (fewer timesteps, slightly lossier).
    pub fn fast() -> Self {
        SnnConfig { timesteps: 16, threshold_scale: 1.0, leak: 0.0 }
    }
}

impl Default for SnnConfig {
    fn default() -> Self {
        SnnConfig::accurate()
    }
}

/// One spiking fully-connected layer: weights from the source ANN, one
/// leaky integrate-and-fire neuron per output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SpikingLayer {
    /// `[outputs, inputs]` row-major weights.
    weights: Vec<f32>,
    bias: Vec<f32>,
    inputs: usize,
    outputs: usize,
    threshold: f32,
}

impl SpikingLayer {
    /// One timestep: integrates binary input spikes, fires, resets by
    /// subtraction (the conversion-friendly reset).
    fn step(&self, spikes_in: &[bool], membrane: &mut [f32], leak: f32) -> Vec<bool> {
        let mut out = vec![false; self.outputs];
        for o in 0..self.outputs {
            let mut current = self.bias[o];
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            for (i, &spike) in spikes_in.iter().enumerate() {
                if spike {
                    current += row[i];
                }
            }
            membrane[o] = membrane[o] * (1.0 - leak) + current;
            if membrane[o] >= self.threshold {
                membrane[o] -= self.threshold;
                out[o] = true;
            }
        }
        out
    }
}

/// A rate-coded spiking network converted from a trained ANN.
///
/// # Examples
///
/// ```no_run
/// use prime_nn::{Activation, FullyConnected, Layer, Network, SnnConfig, SpikingNetwork};
///
/// let ann = Network::new(vec![
///     Layer::Fc(FullyConnected::new(4, 8, Activation::Relu)),
///     Layer::Fc(FullyConnected::new(8, 2, Activation::Identity)),
/// ])?;
/// let snn = SpikingNetwork::from_network(&ann, SnnConfig::fast(), &[vec![0.5; 4]])?;
/// let counts = snn.infer(&[0.1, 0.9, 0.4, 0.2]);
/// assert_eq!(counts.len(), 2);
/// # Ok::<(), prime_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpikingNetwork {
    layers: Vec<SpikingLayer>,
    config: SnnConfig,
}

impl SpikingNetwork {
    /// Converts a trained ReLU/identity fully-connected ANN into a
    /// spiking network, calibrating each layer's threshold from the
    /// maximum pre-activation observed on `calibration_inputs`
    /// (the standard data-based threshold balancing).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Untrainable`] for convolution/pooling layers or
    /// sigmoid activations (rate coding approximates ReLU only).
    pub fn from_network(
        ann: &Network,
        config: SnnConfig,
        calibration_inputs: &[Vec<f32>],
    ) -> Result<Self, NnError> {
        let mut layers = Vec::new();
        for layer in ann.layers() {
            let Layer::Fc(fc) = layer else {
                return Err(NnError::Untrainable { layer: layer.describe() });
            };
            if fc.activation() == Activation::Sigmoid {
                return Err(NnError::Untrainable { layer: layer.describe() });
            }
            layers.push(SpikingLayer {
                weights: fc.weights().data().to_vec(),
                bias: fc.bias().to_vec(),
                inputs: fc.inputs(),
                outputs: fc.outputs(),
                threshold: 1.0,
            });
        }
        let mut snn = SpikingNetwork { layers, config };
        snn.calibrate(ann, calibration_inputs)?;
        Ok(snn)
    }

    /// Data-based threshold balancing (Diehl-style): with spike rates
    /// representing activations normalized by each layer's maximum
    /// `lambda_l`, weights stay unchanged if the threshold becomes
    /// `lambda_l / lambda_{l-1}` and biases are rescaled by
    /// `1 / lambda_{l-1}` (inputs are already in `[0, 1]`, so
    /// `lambda_0 = 1`).
    fn calibrate(&mut self, ann: &Network, inputs: &[Vec<f32>]) -> Result<(), NnError> {
        let mut max_pre = vec![1e-6f32; self.layers.len()];
        for input in inputs {
            let mut x = input.clone();
            for (idx, layer) in ann.layers().iter().enumerate() {
                let Layer::Fc(fc) = layer else {
                    // Construction already rejects non-FC stacks.
                    return Err(NnError::Untrainable { layer: layer.describe() });
                };
                // Pre-activations before the nonlinearity.
                let mut pre = fc.weights().matvec(&x)?;
                for (p, b) in pre.iter_mut().zip(fc.bias()) {
                    *p += b;
                }
                for &p in &pre {
                    max_pre[idx] = max_pre[idx].max(p);
                }
                x = layer.forward(&x)?;
            }
        }
        let mut prev_lambda = 1.0f32;
        for (layer, &lambda) in self.layers.iter_mut().zip(&max_pre) {
            layer.threshold = lambda / prev_lambda * self.config.threshold_scale;
            for b in &mut layer.bias {
                *b /= prev_lambda;
            }
            prev_lambda = lambda;
        }
        Ok(())
    }

    /// The configured timesteps.
    pub fn timesteps(&self) -> usize {
        self.config.timesteps
    }

    /// Rate-coded inference: returns per-class output spike counts.
    /// Inputs in `[0, 1]` spike deterministically at a rate proportional
    /// to their intensity (phase accumulation, jitter-free).
    pub fn infer(&self, input: &[f32]) -> Vec<u32> {
        let mut phase = vec![0.0f32; input.len()];
        let mut membranes: Vec<Vec<f32>> =
            self.layers.iter().map(|l| vec![0.0; l.outputs]).collect();
        let outputs = self.layers.last().map_or(0, |l| l.outputs);
        let mut counts = vec![0u32; outputs];
        for _ in 0..self.config.timesteps {
            // Deterministic rate coding of the input.
            let mut spikes: Vec<bool> = input
                .iter()
                .zip(phase.iter_mut())
                .map(|(&v, p)| {
                    *p += v.clamp(0.0, 1.0);
                    if *p >= 1.0 {
                        *p -= 1.0;
                        true
                    } else {
                        false
                    }
                })
                .collect();
            for (layer, membrane) in self.layers.iter().zip(membranes.iter_mut()) {
                spikes = layer.step(&spikes, membrane, self.config.leak);
            }
            for (count, &s) in counts.iter_mut().zip(&spikes) {
                if s {
                    *count += 1;
                }
            }
        }
        counts
    }

    /// Classification by maximum spike count.
    pub fn classify(&self, input: &[f32]) -> usize {
        let counts = self.infer(input);
        let mut best = 0;
        for (i, &c) in counts.iter().enumerate() {
            if c > counts[best] {
                best = i;
            }
        }
        best
    }

    /// Synaptic events (weight reads) for one inference given observed
    /// spike activity — the quantity a ReRAM crossbar implementation
    /// would bill per bitline evaluation.
    pub fn synaptic_events(&self, input: &[f32]) -> u64 {
        let mut phase = vec![0.0f32; input.len()];
        let mut membranes: Vec<Vec<f32>> =
            self.layers.iter().map(|l| vec![0.0; l.outputs]).collect();
        let mut events = 0u64;
        for _ in 0..self.config.timesteps {
            let mut spikes: Vec<bool> = input
                .iter()
                .zip(phase.iter_mut())
                .map(|(&v, p)| {
                    *p += v.clamp(0.0, 1.0);
                    if *p >= 1.0 {
                        *p -= 1.0;
                        true
                    } else {
                        false
                    }
                })
                .collect();
            for (layer, membrane) in self.layers.iter().zip(membranes.iter_mut()) {
                let active = spikes.iter().filter(|&&s| s).count() as u64;
                events += active * layer.outputs as u64;
                spikes = layer.step(&spikes, membrane, self.config.leak);
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DigitGenerator, IMAGE_PIXELS, NUM_CLASSES};
    use crate::layer::FullyConnected;
    use crate::train::{evaluate, train_sgd, TrainConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn trained_relu_ann(rng: &mut SmallRng) -> (Network, Vec<crate::dataset::Sample>) {
        let generator = DigitGenerator::default();
        let train_set = generator.dataset(600, rng);
        let test_set = generator.dataset(150, rng);
        let mut ann = Network::new(vec![
            Layer::Fc(FullyConnected::new(IMAGE_PIXELS, 24, Activation::Relu)),
            Layer::Fc(FullyConnected::new(24, NUM_CLASSES, Activation::Identity)),
        ])
        .unwrap();
        ann.init_random(rng);
        train_sgd(&mut ann, &train_set, TrainConfig::quick(), rng).unwrap();
        (ann, test_set)
    }

    #[test]
    fn snn_conversion_preserves_accuracy() {
        let mut rng = SmallRng::seed_from_u64(71);
        let (ann, test_set) = trained_relu_ann(&mut rng);
        let ann_acc = evaluate(&ann, &test_set).unwrap();
        assert!(ann_acc > 0.9, "ANN accuracy too low: {ann_acc}");
        let calib: Vec<Vec<f32>> =
            test_set.iter().take(20).map(|s| s.pixels.clone()).collect();
        let snn = SpikingNetwork::from_network(&ann, SnnConfig::accurate(), &calib).unwrap();
        let mut correct = 0;
        for sample in &test_set {
            if snn.classify(&sample.pixels) == sample.label {
                correct += 1;
            }
        }
        let snn_acc = correct as f64 / test_set.len() as f64;
        assert!(
            snn_acc >= ann_acc - 0.1,
            "SNN accuracy {snn_acc} dropped too far below ANN {ann_acc}"
        );
    }

    #[test]
    fn more_timesteps_never_hurt_much() {
        let mut rng = SmallRng::seed_from_u64(72);
        let (ann, test_set) = trained_relu_ann(&mut rng);
        let calib: Vec<Vec<f32>> =
            test_set.iter().take(10).map(|s| s.pixels.clone()).collect();
        let accuracy = |config: SnnConfig| {
            let snn = SpikingNetwork::from_network(&ann, config, &calib).unwrap();
            let subset = &test_set[..60];
            subset.iter().filter(|s| snn.classify(&s.pixels) == s.label).count() as f64
                / subset.len() as f64
        };
        let fast = accuracy(SnnConfig::fast());
        let slow = accuracy(SnnConfig::accurate());
        assert!(slow >= fast - 0.05, "fast {fast} vs accurate {slow}");
    }

    #[test]
    fn conversion_rejects_unsupported_networks() {
        let sigmoid_net = Network::new(vec![Layer::Fc(FullyConnected::new(
            4,
            2,
            Activation::Sigmoid,
        ))])
        .unwrap();
        assert!(matches!(
            SpikingNetwork::from_network(&sigmoid_net, SnnConfig::fast(), &[vec![0.0; 4]]),
            Err(NnError::Untrainable { .. })
        ));
    }

    #[test]
    fn synaptic_events_scale_with_activity() {
        let mut rng = SmallRng::seed_from_u64(73);
        let (ann, test_set) = trained_relu_ann(&mut rng);
        let calib: Vec<Vec<f32>> =
            test_set.iter().take(5).map(|s| s.pixels.clone()).collect();
        let snn = SpikingNetwork::from_network(&ann, SnnConfig::fast(), &calib).unwrap();
        let bright = snn.synaptic_events(&vec![1.0; IMAGE_PIXELS]);
        let dark = snn.synaptic_events(&vec![0.05; IMAGE_PIXELS]);
        assert!(bright > dark, "brighter inputs must spike more: {bright} vs {dark}");
        let dense_equivalent =
            (IMAGE_PIXELS * 24 + 24 * NUM_CLASSES) as u64 * snn.timesteps() as u64;
        assert!(dark < dense_equivalent, "sparse activity must beat dense MACs");
    }

    #[test]
    fn zero_input_produces_no_spikes() {
        let mut rng = SmallRng::seed_from_u64(74);
        let (ann, test_set) = trained_relu_ann(&mut rng);
        let calib: Vec<Vec<f32>> =
            test_set.iter().take(3).map(|s| s.pixels.clone()).collect();
        let mut no_bias = ann.clone();
        for layer in no_bias.layers_mut() {
            if let Layer::Fc(fc) = layer {
                for b in fc.bias_mut() {
                    *b = 0.0;
                }
            }
        }
        let snn = SpikingNetwork::from_network(&no_bias, SnnConfig::fast(), &calib).unwrap();
        let counts = snn.infer(&vec![0.0; IMAGE_PIXELS]);
        assert!(counts.iter().all(|&c| c == 0));
    }
}
