//! Error type for the neural-network substrate.

use std::fmt;

/// Errors raised by tensor, layer, and network operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Tensor shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// What the operation expected.
        expected: Vec<usize>,
        /// What it received.
        got: Vec<usize>,
    },
    /// A layer received an input whose element count does not match.
    BadInput {
        /// Layer description.
        layer: String,
        /// Expected element count.
        expected: usize,
        /// Received element count.
        got: usize,
    },
    /// A quantization format parameter is invalid.
    BadFormat {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The network has no layers or is otherwise malformed.
    EmptyNetwork,
    /// Training was asked to run on a network containing a layer without
    /// gradient support.
    Untrainable {
        /// The offending layer's description.
        layer: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected:?}, got {got:?}")
            }
            NnError::BadInput { layer, expected, got } => {
                write!(f, "layer {layer} expected {expected} inputs, got {got}")
            }
            NnError::BadFormat { reason } => write!(f, "bad quantization format: {reason}"),
            NnError::EmptyNetwork => write!(f, "network has no layers"),
            NnError::Untrainable { layer } => {
                write!(f, "layer {layer} does not support training")
            }
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NnError::BadInput { layer: "fc 784-500".into(), expected: 784, got: 100 };
        assert_eq!(e.to_string(), "layer fc 784-500 expected 784 inputs, got 100");
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<NnError>();
    }
}
