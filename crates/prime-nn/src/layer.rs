//! Executable NN layers: fully-connected, 2-D convolution, and pooling —
//! the layer types PRIME supports in hardware (paper §III-E).
//!
//! Every layer provides an inference path (`forward`) and a training path
//! (`forward_cache` / `backward` / `apply_grads`) so the workloads used in
//! the accuracy experiments can be trained offline, exactly as the paper
//! assumes ("the training of NN is done off-line", §IV-A).

use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::tensor::Tensor;

/// Activation functions PRIME implements in its peripheral circuits:
/// sigmoid (column-multiplexer unit) and ReLU (SA-side unit); `Identity`
/// corresponds to bypassing both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Logistic sigmoid.
    Sigmoid,
    /// Rectified linear unit.
    Relu,
    /// No activation (both units bypassed).
    Identity,
}

impl Activation {
    /// Applies the activation.
    pub fn apply(&self, x: f32) -> f32 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
        }
    }

    /// Derivative with respect to the pre-activation, given both the
    /// pre-activation `x` and the activation output `y`.
    pub fn derivative(&self, x: f32, y: f32) -> f32 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }
}

/// Pooling flavours supported by the PRIME hardware (4:1 max-pooling unit;
/// mean pooling via 1/n ReRAM weights).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Arithmetic mean over the window.
    Mean,
}

/// A fully-connected layer: `y = act(W x + b)` with `W: [outputs, inputs]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullyConnected {
    weights: Tensor,
    bias: Vec<f32>,
    activation: Activation,
}

/// Cached intermediates for one fully-connected forward pass.
#[derive(Debug, Clone)]
pub struct FcCache {
    input: Vec<f32>,
    preact: Vec<f32>,
    output: Vec<f32>,
}

impl FcCache {
    /// The layer output held by this cache.
    pub fn output(&self) -> &[f32] {
        &self.output
    }
}

/// Parameter gradients of a fully-connected layer.
#[derive(Debug, Clone)]
pub struct FcGrads {
    /// `dL/dW`, same shape as the weights.
    pub weights: Vec<f32>,
    /// `dL/db`.
    pub bias: Vec<f32>,
}

impl FullyConnected {
    /// Creates a zero-initialized layer.
    pub fn new(inputs: usize, outputs: usize, activation: Activation) -> Self {
        FullyConnected {
            weights: Tensor::zeros(vec![outputs, inputs]),
            bias: vec![0.0; outputs],
            activation,
        }
    }

    /// Creates a layer from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `weights` is not a
    /// `[outputs, inputs]` matrix matching `bias`.
    pub fn from_params(
        weights: Tensor,
        bias: Vec<f32>,
        activation: Activation,
    ) -> Result<Self, NnError> {
        if weights.shape().len() != 2 || weights.shape()[0] != bias.len() {
            return Err(NnError::ShapeMismatch {
                expected: vec![bias.len(), 0],
                got: weights.shape().to_vec(),
            });
        }
        Ok(FullyConnected { weights, bias, activation })
    }

    /// Input width.
    pub fn inputs(&self) -> usize {
        self.weights.shape()[1]
    }

    /// Output width.
    pub fn outputs(&self) -> usize {
        self.weights.shape()[0]
    }

    /// The activation applied after the affine transform.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The weight matrix (`[outputs, inputs]`).
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Mutable weight matrix, for initialization and quantization sweeps.
    pub fn weights_mut(&mut self) -> &mut Tensor {
        &mut self.weights
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable bias vector.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Inference forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] on a wrong-length input.
    pub fn forward(&self, input: &[f32]) -> Result<Vec<f32>, NnError> {
        Ok(self.forward_cache(input)?.output)
    }

    /// Forward pass that keeps intermediates for backpropagation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] on a wrong-length input.
    pub fn forward_cache(&self, input: &[f32]) -> Result<FcCache, NnError> {
        if input.len() != self.inputs() {
            return Err(NnError::BadInput {
                layer: format!("fc {}-{}", self.inputs(), self.outputs()),
                expected: self.inputs(),
                got: input.len(),
            });
        }
        let mut preact = self.weights.matvec(input)?;
        for (p, b) in preact.iter_mut().zip(&self.bias) {
            *p += b;
        }
        let output = preact.iter().map(|&x| self.activation.apply(x)).collect();
        Ok(FcCache { input: input.to_vec(), preact, output })
    }

    /// Backpropagates `grad_out = dL/dy` through the layer, returning
    /// `dL/dx` and the parameter gradients.
    pub fn backward(&self, cache: &FcCache, grad_out: &[f32]) -> (Vec<f32>, FcGrads) {
        let (outputs, inputs) = (self.outputs(), self.inputs());
        let mut grad_pre = vec![0.0f32; outputs];
        for o in 0..outputs {
            grad_pre[o] =
                grad_out[o] * self.activation.derivative(cache.preact[o], cache.output[o]);
        }
        let mut grad_w = vec![0.0f32; outputs * inputs];
        let mut grad_in = vec![0.0f32; inputs];
        let w = self.weights.data();
        for o in 0..outputs {
            let g = grad_pre[o];
            if g == 0.0 {
                continue;
            }
            for i in 0..inputs {
                grad_w[o * inputs + i] = g * cache.input[i];
                grad_in[i] += g * w[o * inputs + i];
            }
        }
        (grad_in, FcGrads { weights: grad_w, bias: grad_pre })
    }

    /// Applies an SGD step with learning rate `lr`.
    pub fn apply_grads(&mut self, grads: &FcGrads, lr: f32) {
        for (w, g) in self.weights.data_mut().iter_mut().zip(&grads.weights) {
            *w -= lr * g;
        }
        for (b, g) in self.bias.iter_mut().zip(&grads.bias) {
            *b -= lr * g;
        }
    }
}

/// A valid (no-padding unless specified) 2-D convolution layer over
/// `[channels, height, width]` inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    in_h: usize,
    in_w: usize,
    padding: usize,
    /// `[out_ch, in_ch, kernel, kernel]`.
    weights: Tensor,
    bias: Vec<f32>,
    activation: Activation,
}

/// Cached intermediates for one convolution forward pass.
#[derive(Debug, Clone)]
pub struct ConvCache {
    input: Vec<f32>,
    preact: Vec<f32>,
    output: Vec<f32>,
}

impl ConvCache {
    /// The layer output held by this cache.
    pub fn output(&self) -> &[f32] {
        &self.output
    }
}

/// Parameter gradients of a convolution layer.
#[derive(Debug, Clone)]
pub struct ConvGrads {
    /// `dL/dW`, same layout as the kernel tensor.
    pub weights: Vec<f32>,
    /// `dL/db`, one per output channel.
    pub bias: Vec<f32>,
}

impl Conv2d {
    /// Creates a zero-initialized convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        in_h: usize,
        in_w: usize,
        padding: usize,
        activation: Activation,
    ) -> Self {
        assert!(in_h + 2 * padding >= kernel && in_w + 2 * padding >= kernel,
            "kernel larger than padded input");
        Conv2d {
            in_ch,
            out_ch,
            kernel,
            in_h,
            in_w,
            padding,
            weights: Tensor::zeros(vec![out_ch, in_ch, kernel, kernel]),
            bias: vec![0.0; out_ch],
            activation,
        }
    }

    /// Output feature-map height.
    pub fn out_h(&self) -> usize {
        self.in_h + 2 * self.padding - self.kernel + 1
    }

    /// Output feature-map width.
    pub fn out_w(&self) -> usize {
        self.in_w + 2 * self.padding - self.kernel + 1
    }

    /// Input element count (`in_ch * in_h * in_w`).
    pub fn inputs(&self) -> usize {
        self.in_ch * self.in_h * self.in_w
    }

    /// Output element count (`out_ch * out_h * out_w`).
    pub fn outputs(&self) -> usize {
        self.out_ch * self.out_h() * self.out_w()
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Zero padding on each side.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Input feature-map height.
    pub fn in_h(&self) -> usize {
        self.in_h
    }

    /// Input feature-map width.
    pub fn in_w(&self) -> usize {
        self.in_w
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_ch
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_ch
    }

    /// The kernel tensor (`[out_ch, in_ch, k, k]`).
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Mutable kernel tensor.
    pub fn weights_mut(&mut self) -> &mut Tensor {
        &mut self.weights
    }

    /// The bias vector (one per output channel).
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable bias vector.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// The activation applied to each output element.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    fn in_at(&self, input: &[f32], c: usize, y: isize, x: isize) -> f32 {
        if y < 0 || x < 0 || y as usize >= self.in_h || x as usize >= self.in_w {
            0.0 // zero padding
        } else {
            input[(c * self.in_h + y as usize) * self.in_w + x as usize]
        }
    }

    /// Inference forward pass over a flattened `[in_ch, in_h, in_w]` input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] on a wrong-length input.
    pub fn forward(&self, input: &[f32]) -> Result<Vec<f32>, NnError> {
        Ok(self.forward_cache(input)?.output)
    }

    /// Forward pass keeping intermediates for backpropagation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] on a wrong-length input.
    pub fn forward_cache(&self, input: &[f32]) -> Result<ConvCache, NnError> {
        if input.len() != self.inputs() {
            return Err(NnError::BadInput {
                layer: format!("conv{}x{}", self.kernel, self.out_ch),
                expected: self.inputs(),
                got: input.len(),
            });
        }
        let (oh, ow) = (self.out_h(), self.out_w());
        let k = self.kernel;
        let w = self.weights.data();
        let mut preact = vec![0.0f32; self.out_ch * oh * ow];
        for oc in 0..self.out_ch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = self.bias[oc];
                    for ic in 0..self.in_ch {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy as isize + ky as isize - self.padding as isize;
                                let ix = ox as isize + kx as isize - self.padding as isize;
                                let wv = w[((oc * self.in_ch + ic) * k + ky) * k + kx];
                                acc += wv * self.in_at(input, ic, iy, ix);
                            }
                        }
                    }
                    preact[(oc * oh + oy) * ow + ox] = acc;
                }
            }
        }
        let output = preact.iter().map(|&x| self.activation.apply(x)).collect();
        Ok(ConvCache { input: input.to_vec(), preact, output })
    }

    /// Backpropagates `grad_out = dL/dy`, returning `dL/dx` and parameter
    /// gradients.
    #[allow(clippy::needless_range_loop)] // oc indexes grad_b and the weight tensor together
    pub fn backward(&self, cache: &ConvCache, grad_out: &[f32]) -> (Vec<f32>, ConvGrads) {
        let (oh, ow) = (self.out_h(), self.out_w());
        let k = self.kernel;
        let w = self.weights.data();
        let mut grad_w = vec![0.0f32; w.len()];
        let mut grad_b = vec![0.0f32; self.out_ch];
        let mut grad_in = vec![0.0f32; self.inputs()];
        for oc in 0..self.out_ch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let oidx = (oc * oh + oy) * ow + ox;
                    let g = grad_out[oidx]
                        * self.activation.derivative(cache.preact[oidx], cache.output[oidx]);
                    if g == 0.0 {
                        continue;
                    }
                    grad_b[oc] += g;
                    for ic in 0..self.in_ch {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy as isize + ky as isize - self.padding as isize;
                                let ix = ox as isize + kx as isize - self.padding as isize;
                                if iy < 0
                                    || ix < 0
                                    || iy as usize >= self.in_h
                                    || ix as usize >= self.in_w
                                {
                                    continue;
                                }
                                let widx = ((oc * self.in_ch + ic) * k + ky) * k + kx;
                                let iidx =
                                    (ic * self.in_h + iy as usize) * self.in_w + ix as usize;
                                grad_w[widx] += g * cache.input[iidx];
                                grad_in[iidx] += g * w[widx];
                            }
                        }
                    }
                }
            }
        }
        (grad_in, ConvGrads { weights: grad_w, bias: grad_b })
    }

    /// Applies an SGD step with learning rate `lr`.
    pub fn apply_grads(&mut self, grads: &ConvGrads, lr: f32) {
        for (w, g) in self.weights.data_mut().iter_mut().zip(&grads.weights) {
            *w -= lr * g;
        }
        for (b, g) in self.bias.iter_mut().zip(&grads.bias) {
            *b -= lr * g;
        }
    }
}

/// A non-overlapping 2-D pooling layer over `[channels, h, w]` inputs with
/// a square `window` and stride equal to the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pool2d {
    kind: PoolKind,
    channels: usize,
    in_h: usize,
    in_w: usize,
    window: usize,
}

/// Cached intermediates for one pooling forward pass.
#[derive(Debug, Clone)]
pub struct PoolCache {
    /// For max pooling: the input index that won each output element.
    argmax: Vec<usize>,
    output: Vec<f32>,
}

impl PoolCache {
    /// The layer output held by this cache.
    pub fn output(&self) -> &[f32] {
        &self.output
    }
}

impl Pool2d {
    /// Creates a pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if the window does not evenly tile the input (the paper's
    /// networks all pool evenly).
    pub fn new(kind: PoolKind, channels: usize, in_h: usize, in_w: usize, window: usize) -> Self {
        assert!(window > 0 && in_h.is_multiple_of(window) && in_w.is_multiple_of(window),
            "pooling window must evenly tile the input");
        Pool2d { kind, channels, in_h, in_w, window }
    }

    /// The pooling flavour.
    pub fn kind(&self) -> PoolKind {
        self.kind
    }

    /// Window edge length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Input height.
    pub fn in_h(&self) -> usize {
        self.in_h
    }

    /// Input width.
    pub fn in_w(&self) -> usize {
        self.in_w
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        self.in_h / self.window
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        self.in_w / self.window
    }

    /// Input element count.
    pub fn inputs(&self) -> usize {
        self.channels * self.in_h * self.in_w
    }

    /// Output element count.
    pub fn outputs(&self) -> usize {
        self.channels * self.out_h() * self.out_w()
    }

    /// Inference forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] on a wrong-length input.
    pub fn forward(&self, input: &[f32]) -> Result<Vec<f32>, NnError> {
        Ok(self.forward_cache(input)?.output)
    }

    /// Forward pass keeping the winner indices for backpropagation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] on a wrong-length input.
    pub fn forward_cache(&self, input: &[f32]) -> Result<PoolCache, NnError> {
        if input.len() != self.inputs() {
            return Err(NnError::BadInput {
                layer: format!("pool{}x{}", self.window, self.window),
                expected: self.inputs(),
                got: input.len(),
            });
        }
        let (oh, ow, win) = (self.out_h(), self.out_w(), self.window);
        let mut output = vec![0.0f32; self.outputs()];
        let mut argmax = vec![0usize; self.outputs()];
        for c in 0..self.channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let oidx = (c * oh + oy) * ow + ox;
                    match self.kind {
                        PoolKind::Max => {
                            let mut best = f32::NEG_INFINITY;
                            let mut best_idx = 0;
                            for wy in 0..win {
                                for wx in 0..win {
                                    let iidx = (c * self.in_h + oy * win + wy) * self.in_w
                                        + ox * win
                                        + wx;
                                    if input[iidx] > best {
                                        best = input[iidx];
                                        best_idx = iidx;
                                    }
                                }
                            }
                            output[oidx] = best;
                            argmax[oidx] = best_idx;
                        }
                        PoolKind::Mean => {
                            let mut acc = 0.0f32;
                            for wy in 0..win {
                                for wx in 0..win {
                                    acc += input[(c * self.in_h + oy * win + wy) * self.in_w
                                        + ox * win
                                        + wx];
                                }
                            }
                            output[oidx] = acc / (win * win) as f32;
                        }
                    }
                }
            }
        }
        Ok(PoolCache { argmax, output })
    }

    /// Backpropagates `grad_out`, returning `dL/dx` (pooling has no
    /// parameters).
    pub fn backward(&self, cache: &PoolCache, grad_out: &[f32]) -> Vec<f32> {
        let mut grad_in = vec![0.0f32; self.inputs()];
        match self.kind {
            PoolKind::Max => {
                for (oidx, &g) in grad_out.iter().enumerate() {
                    grad_in[cache.argmax[oidx]] += g;
                }
            }
            PoolKind::Mean => {
                let (oh, ow, win) = (self.out_h(), self.out_w(), self.window);
                let scale = 1.0 / (win * win) as f32;
                for c in 0..self.channels {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let g = grad_out[(c * oh + oy) * ow + ox] * scale;
                            for wy in 0..win {
                                for wx in 0..win {
                                    grad_in[(c * self.in_h + oy * win + wy) * self.in_w
                                        + ox * win
                                        + wx] += g;
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_values_and_derivatives() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Identity.apply(-2.0), -2.0);
        let y = Activation::Sigmoid.apply(0.0);
        assert!((y - 0.5).abs() < 1e-6);
        assert!((Activation::Sigmoid.derivative(0.0, y) - 0.25).abs() < 1e-6);
        assert_eq!(Activation::Relu.derivative(-1.0, 0.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0, 1.0), 1.0);
    }

    #[test]
    fn fc_forward_matches_manual() {
        let w = Tensor::from_vec(vec![2, 3], vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5]).unwrap();
        let fc = FullyConnected::from_params(w, vec![0.5, -0.5], Activation::Identity).unwrap();
        let y = fc.forward(&[2.0, 4.0, 6.0]).unwrap();
        assert_eq!(y, vec![2.0 - 6.0 + 0.5, 6.0 - 0.5]);
    }

    #[test]
    fn fc_rejects_bad_input() {
        let fc = FullyConnected::new(3, 2, Activation::Identity);
        assert!(fc.forward(&[1.0]).is_err());
    }

    /// Numerical gradient check for the fully-connected layer.
    #[test]
    fn fc_gradients_match_finite_differences() {
        let mut fc = FullyConnected::new(4, 3, Activation::Sigmoid);
        // Deterministic pseudo-random parameters.
        for (i, w) in fc.weights_mut().data_mut().iter_mut().enumerate() {
            *w = ((i * 37 % 13) as f32 - 6.0) / 10.0;
        }
        for (i, b) in fc.bias_mut().iter_mut().enumerate() {
            *b = (i as f32 - 1.0) / 5.0;
        }
        let x = [0.3f32, -0.8, 0.1, 0.9];
        // Loss: sum of outputs; dL/dy = 1.
        let cache = fc.forward_cache(&x).unwrap();
        let ones = vec![1.0f32; 3];
        let (grad_in, grads) = fc.backward(&cache, &ones);
        let eps = 1e-3f32;
        // Check input gradient.
        for i in 0..4 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let lp: f32 = fc.forward(&xp).unwrap().iter().sum();
            let lm: f32 = fc.forward(&xm).unwrap().iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - grad_in[i]).abs() < 1e-3, "input grad {i}: {num} vs {}", grad_in[i]);
        }
        // Check a few weight gradients.
        for wi in [0usize, 5, 11] {
            let orig = fc.weights().data()[wi];
            fc.weights_mut().data_mut()[wi] = orig + eps;
            let lp: f32 = fc.forward(&x).unwrap().iter().sum();
            fc.weights_mut().data_mut()[wi] = orig - eps;
            let lm: f32 = fc.forward(&x).unwrap().iter().sum();
            fc.weights_mut().data_mut()[wi] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grads.weights[wi]).abs() < 1e-3,
                "weight grad {wi}: {num} vs {}",
                grads.weights[wi]
            );
        }
    }

    #[test]
    fn conv_output_shape_matches_formula() {
        let conv = Conv2d::new(1, 5, 5, 28, 28, 0, Activation::Relu);
        assert_eq!(conv.out_h(), 24);
        assert_eq!(conv.out_w(), 24);
        assert_eq!(conv.outputs(), 5 * 24 * 24);
        let padded = Conv2d::new(3, 64, 3, 224, 224, 1, Activation::Relu);
        assert_eq!(padded.out_h(), 224);
    }

    #[test]
    fn conv_identity_kernel_passes_input_through() {
        // 1x1 kernel with weight 1: output equals input.
        let mut conv = Conv2d::new(1, 1, 1, 4, 4, 0, Activation::Identity);
        conv.weights_mut().data_mut()[0] = 1.0;
        let input: Vec<f32> = (0..16).map(|i| i as f32).collect();
        assert_eq!(conv.forward(&input).unwrap(), input);
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut conv = Conv2d::new(2, 2, 3, 5, 5, 0, Activation::Relu);
        for (i, w) in conv.weights_mut().data_mut().iter_mut().enumerate() {
            *w = ((i * 31 % 17) as f32 - 8.0) / 20.0;
        }
        for (i, b) in conv.bias_mut().iter_mut().enumerate() {
            *b = (i as f32) / 10.0 + 0.05;
        }
        let input: Vec<f32> = (0..50).map(|i| ((i * 7 % 11) as f32 - 5.0) / 6.0).collect();
        let cache = conv.forward_cache(&input).unwrap();
        let ones = vec![1.0f32; conv.outputs()];
        let (grad_in, grads) = conv.backward(&cache, &ones);
        let eps = 1e-3f32;
        for ii in [0usize, 13, 49] {
            let mut ip = input.clone();
            ip[ii] += eps;
            let mut im = input.clone();
            im[ii] -= eps;
            let lp: f32 = conv.forward(&ip).unwrap().iter().sum();
            let lm: f32 = conv.forward(&im).unwrap().iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - grad_in[ii]).abs() < 2e-3, "input grad {ii}: {num} vs {}", grad_in[ii]);
        }
        for wi in [0usize, 9, 35] {
            let orig = conv.weights().data()[wi];
            conv.weights_mut().data_mut()[wi] = orig + eps;
            let lp: f32 = conv.forward(&input).unwrap().iter().sum();
            conv.weights_mut().data_mut()[wi] = orig - eps;
            let lm: f32 = conv.forward(&input).unwrap().iter().sum();
            conv.weights_mut().data_mut()[wi] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grads.weights[wi]).abs() < 2e-3,
                "weight grad {wi}: {num} vs {}",
                grads.weights[wi]
            );
        }
    }

    #[test]
    fn max_pool_forward_and_backward() {
        let pool = Pool2d::new(PoolKind::Max, 1, 4, 4, 2);
        let input: Vec<f32> =
            vec![1.0, 2.0, 5.0, 6.0, 3.0, 4.0, 7.0, 8.0, 9.0, 10.0, 13.0, 14.0, 11.0, 12.0, 15.0, 16.0];
        let cache = pool.forward_cache(&input).unwrap();
        assert_eq!(cache.output, vec![4.0, 8.0, 12.0, 16.0]);
        let grad_in = pool.backward(&cache, &[1.0, 2.0, 3.0, 4.0]);
        // Gradient flows only to the winners.
        assert_eq!(grad_in.iter().filter(|&&g| g != 0.0).count(), 4);
        assert_eq!(grad_in[5], 1.0); // position of 4.0
        assert_eq!(grad_in[15], 4.0); // position of 16.0
    }

    #[test]
    fn mean_pool_averages_windows() {
        let pool = Pool2d::new(PoolKind::Mean, 1, 2, 2, 2);
        let out = pool.forward(&[1.0, 2.0, 3.0, 6.0]).unwrap();
        assert_eq!(out, vec![3.0]);
        let cache = pool.forward_cache(&[1.0, 2.0, 3.0, 6.0]).unwrap();
        let grad_in = pool.backward(&cache, &[4.0]);
        assert_eq!(grad_in, vec![1.0; 4]);
    }

    #[test]
    fn pool_rejects_bad_input() {
        let pool = Pool2d::new(PoolKind::Max, 1, 4, 4, 2);
        assert!(pool.forward(&[0.0; 15]).is_err());
    }
}
