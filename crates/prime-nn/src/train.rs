//! Offline SGD training with softmax cross-entropy.
//!
//! PRIME executes inference in memory; training happens offline and the
//! resulting weights are programmed into FF mats (paper §IV-A: "the
//! training of NN is done off-line"). This module provides that offline
//! trainer for the accuracy experiments.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Sample;
use crate::error::NnError;
use crate::network::Network;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
}

impl TrainConfig {
    /// A profile that converges on the synthetic-digit task in seconds.
    pub fn quick() -> Self {
        TrainConfig { epochs: 4, learning_rate: 0.1, lr_decay: 0.7 }
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig::quick()
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Cross-entropy loss of softmax probabilities against a class label.
pub fn cross_entropy(probs: &[f32], label: usize) -> f32 {
    -probs[label].max(1e-12).ln()
}

/// Per-epoch training progress.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub mean_loss: f32,
    /// Training accuracy over the epoch.
    pub accuracy: f64,
}

/// Trains `net` with plain SGD and softmax cross-entropy, shuffling the
/// sample order each epoch with `rng`.
///
/// # Errors
///
/// Propagates layer input-validation errors ([`NnError::BadInput`]).
pub fn train_sgd<R: Rng + ?Sized>(
    net: &mut Network,
    samples: &[Sample],
    config: TrainConfig,
    rng: &mut R,
) -> Result<Vec<EpochStats>, NnError> {
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut lr = config.learning_rate;
    let mut history = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        order.shuffle(rng);
        let mut loss_sum = 0.0f32;
        let mut correct = 0usize;
        for &idx in &order {
            let sample = &samples[idx];
            let (logits, caches) = net.forward_cache(&sample.pixels)?;
            let probs = softmax(&logits);
            loss_sum += cross_entropy(&probs, sample.label);
            if argmax(&probs) == sample.label {
                correct += 1;
            }
            // dL/dlogits for softmax cross-entropy: probs - one_hot.
            let mut grad = probs;
            grad[sample.label] -= 1.0;
            net.backward_update(&caches, &grad, lr);
        }
        history.push(EpochStats {
            epoch,
            mean_loss: loss_sum / samples.len().max(1) as f32,
            accuracy: correct as f64 / samples.len().max(1) as f64,
        });
        lr *= config.lr_decay;
    }
    Ok(history)
}

/// Classification accuracy of full-precision inference on `samples`.
///
/// # Errors
///
/// Propagates layer input-validation errors.
pub fn evaluate(net: &Network, samples: &[Sample]) -> Result<f64, NnError> {
    let mut correct = 0usize;
    for sample in samples {
        let logits = net.forward(&sample.pixels)?;
        if argmax(&logits) == sample.label {
            correct += 1;
        }
    }
    Ok(correct as f64 / samples.len().max(1) as f64)
}

/// Classification accuracy of dynamic-fixed-point inference at the given
/// input/weight precisions — one point of the Fig. 6 sweep.
///
/// # Errors
///
/// Propagates quantization and input-validation errors.
pub fn evaluate_quantized(
    net: &Network,
    samples: &[Sample],
    input_bits: u8,
    weight_bits: u8,
) -> Result<f64, NnError> {
    // Weights are programmed once; only activations quantize per sample.
    let quantized = net.weight_quantized_clone(weight_bits)?;
    let mut correct = 0usize;
    for sample in samples {
        let logits = quantized.forward_activation_quantized(&sample.pixels, input_bits)?;
        if argmax(&logits) == sample.label {
            correct += 1;
        }
    }
    Ok(correct as f64 / samples.len().max(1) as f64)
}

fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DigitGenerator, IMAGE_PIXELS, NUM_CLASSES};
    use crate::layer::{Activation, FullyConnected};
    use crate::network::{Layer, Network};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn softmax_is_a_distribution() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&[1.0, 2.0]);
        let b = softmax(&[1001.0, 1002.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_penalizes_wrong_confidence() {
        assert!(cross_entropy(&[0.9, 0.1], 0) < cross_entropy(&[0.1, 0.9], 0));
    }

    #[test]
    fn training_learns_the_digit_task() {
        let gen = DigitGenerator::default();
        let mut rng = SmallRng::seed_from_u64(11);
        let train_set = gen.dataset(600, &mut rng);
        let test_set = gen.dataset(200, &mut rng);
        let mut net = Network::new(vec![
            Layer::Fc(FullyConnected::new(IMAGE_PIXELS, 32, Activation::Sigmoid)),
            Layer::Fc(FullyConnected::new(32, NUM_CLASSES, Activation::Identity)),
        ])
        .unwrap();
        net.init_random(&mut rng);
        let history = train_sgd(&mut net, &train_set, TrainConfig::quick(), &mut rng).unwrap();
        assert!(history.last().unwrap().accuracy > 0.9, "training failed: {history:?}");
        let acc = evaluate(&net, &test_set).unwrap();
        assert!(acc > 0.9, "test accuracy too low: {acc}");
        // Quantized inference at generous precision should match closely.
        let qacc = evaluate_quantized(&net, &test_set, 8, 8).unwrap();
        assert!((acc - qacc).abs() < 0.05, "8-bit quantization broke accuracy: {acc} vs {qacc}");
    }
}
