//! Networks: ordered layer stacks with inference, training, and the
//! quantized-inference path used for the paper's precision study (Fig. 6).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::fixed::DynFixedFormat;
use crate::layer::{Conv2d, ConvCache, FcCache, FullyConnected, Pool2d, PoolCache};

/// One layer of a [`Network`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Fully-connected layer.
    Fc(FullyConnected),
    /// 2-D convolution layer.
    Conv(Conv2d),
    /// 2-D pooling layer.
    Pool(Pool2d),
}

impl Layer {
    /// Input element count.
    pub fn inputs(&self) -> usize {
        match self {
            Layer::Fc(l) => l.inputs(),
            Layer::Conv(l) => l.inputs(),
            Layer::Pool(l) => l.inputs(),
        }
    }

    /// Output element count.
    pub fn outputs(&self) -> usize {
        match self {
            Layer::Fc(l) => l.outputs(),
            Layer::Conv(l) => l.outputs(),
            Layer::Pool(l) => l.outputs(),
        }
    }

    /// Number of trainable synaptic weights (pooling has none).
    pub fn synapses(&self) -> usize {
        match self {
            Layer::Fc(l) => l.inputs() * l.outputs(),
            Layer::Conv(l) => l.weights().len(),
            Layer::Pool(_) => 0,
        }
    }

    /// Short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            Layer::Fc(l) => format!("fc {}-{}", l.inputs(), l.outputs()),
            Layer::Conv(l) => format!("conv{}x{}", l.kernel(), l.out_channels()),
            Layer::Pool(l) => format!("pool{0}x{0}", l.window()),
        }
    }

    /// Inference forward pass.
    ///
    /// # Errors
    ///
    /// Propagates the layer's input-validation error.
    pub fn forward(&self, input: &[f32]) -> Result<Vec<f32>, NnError> {
        match self {
            Layer::Fc(l) => l.forward(input),
            Layer::Conv(l) => l.forward(input),
            Layer::Pool(l) => l.forward(input),
        }
    }
}

/// Per-layer cache for one training forward pass.
#[derive(Debug, Clone)]
pub enum LayerCache {
    /// Fully-connected cache.
    Fc(FcCache),
    /// Convolution cache.
    Conv(ConvCache),
    /// Pooling cache.
    Pool(PoolCache),
}

/// A feed-forward network: an ordered stack of layers with matching
/// interface widths.
///
/// # Examples
///
/// ```
/// use prime_nn::{Activation, FullyConnected, Layer, Network};
///
/// let net = Network::new(vec![
///     Layer::Fc(FullyConnected::new(4, 8, Activation::Sigmoid)),
///     Layer::Fc(FullyConnected::new(8, 2, Activation::Identity)),
/// ])?;
/// let out = net.forward(&[0.1, 0.2, 0.3, 0.4])?;
/// assert_eq!(out.len(), 2);
/// # Ok::<(), prime_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Layer>,
}

impl Network {
    /// Creates a network, validating that consecutive layer widths match.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyNetwork`] for an empty stack or
    /// [`NnError::ShapeMismatch`] for incompatible neighbours.
    pub fn new(layers: Vec<Layer>) -> Result<Self, NnError> {
        if layers.is_empty() {
            return Err(NnError::EmptyNetwork);
        }
        for pair in layers.windows(2) {
            if pair[0].outputs() != pair[1].inputs() {
                return Err(NnError::ShapeMismatch {
                    expected: vec![pair[0].outputs()],
                    got: vec![pair[1].inputs()],
                });
            }
        }
        Ok(Network { layers })
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layer stack (for quantization sweeps).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Network input width.
    pub fn inputs(&self) -> usize {
        self.layers[0].inputs()
    }

    /// Network output width.
    pub fn outputs(&self) -> usize {
        // `new` rejects empty stacks, so the 0 default never fires.
        self.layers.last().map_or(0, Layer::outputs)
    }

    /// Total synaptic weights across all layers.
    pub fn synapses(&self) -> usize {
        self.layers.iter().map(Layer::synapses).sum()
    }

    /// Randomizes all weights with scaled uniform init (He-style bound),
    /// reproducibly from the caller's RNG.
    pub fn init_random<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for layer in &mut self.layers {
            match layer {
                Layer::Fc(l) => {
                    let bound = (2.0 / l.inputs() as f32).sqrt();
                    for w in l.weights_mut().data_mut() {
                        *w = rng.gen_range(-bound..bound);
                    }
                    for b in l.bias_mut() {
                        *b = 0.0;
                    }
                }
                Layer::Conv(l) => {
                    let fan_in = (l.inputs() / l.in_channels().max(1)).max(1);
                    let bound = (2.0 / fan_in as f32).sqrt();
                    for w in l.weights_mut().data_mut() {
                        *w = rng.gen_range(-bound..bound);
                    }
                    for b in l.bias_mut() {
                        *b = 0.0;
                    }
                }
                Layer::Pool(_) => {}
            }
        }
    }

    /// Inference forward pass.
    ///
    /// # Errors
    ///
    /// Propagates layer input-validation errors.
    pub fn forward(&self, input: &[f32]) -> Result<Vec<f32>, NnError> {
        let mut x = input.to_vec();
        for layer in &self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Forward pass collecting per-layer caches for backpropagation.
    ///
    /// # Errors
    ///
    /// Propagates layer input-validation errors.
    pub fn forward_cache(&self, input: &[f32]) -> Result<(Vec<f32>, Vec<LayerCache>), NnError> {
        let mut x = input.to_vec();
        let mut caches = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            match layer {
                Layer::Fc(l) => {
                    let c = l.forward_cache(&x)?;
                    x = c.output().to_vec();
                    caches.push(LayerCache::Fc(c));
                }
                Layer::Conv(l) => {
                    let c = l.forward_cache(&x)?;
                    x = c.output().to_vec();
                    caches.push(LayerCache::Conv(c));
                }
                Layer::Pool(l) => {
                    let c = l.forward_cache(&x)?;
                    x = c.output().to_vec();
                    caches.push(LayerCache::Pool(c));
                }
            }
        }
        Ok((x, caches))
    }

    /// Backpropagates `grad_out` through every layer and applies SGD
    /// updates with learning rate `lr`. Returns the gradient with respect
    /// to the network input.
    pub fn backward_update(
        &mut self,
        caches: &[LayerCache],
        grad_out: &[f32],
        lr: f32,
    ) -> Vec<f32> {
        let mut grad = grad_out.to_vec();
        for (layer, cache) in self.layers.iter_mut().zip(caches.iter()).rev() {
            grad = match (layer, cache) {
                (Layer::Fc(l), LayerCache::Fc(c)) => {
                    let (g_in, grads) = l.backward(c, &grad);
                    l.apply_grads(&grads, lr);
                    g_in
                }
                (Layer::Conv(l), LayerCache::Conv(c)) => {
                    let (g_in, grads) = l.backward(c, &grad);
                    l.apply_grads(&grads, lr);
                    g_in
                }
                (Layer::Pool(l), LayerCache::Pool(c)) => l.backward(c, &grad),
                // Caches come from `forward_cache` on the same stack, so
                // kinds always pair up; a foreign cache skips the layer
                // rather than aborting training.
                _ => grad,
            };
        }
        grad
    }

    /// Returns a copy of the network whose weights and biases are
    /// round-tripped through `weight_bits`-bit dynamic fixed point with
    /// outlier clipping — the offline weight-programming step.
    ///
    /// # Errors
    ///
    /// Propagates quantization-format errors.
    pub fn weight_quantized_clone(&self, weight_bits: u8) -> Result<Network, NnError> {
        // Fewer mantissa bits tolerate (and need) harder outlier clipping;
        // at 6+ bits the full range is kept.
        let quantile = match weight_bits {
            0..=2 => 0.95,
            3 => 0.97,
            4 => 0.985,
            5 => 0.995,
            _ => 1.0,
        };
        let mut net = self.clone();
        for layer in &mut net.layers {
            match layer {
                Layer::Fc(l) => {
                    let all: Vec<f32> =
                        l.weights().data().iter().chain(l.bias()).copied().collect();
                    let fmt = DynFixedFormat::for_values_clipped(weight_bits, &all, quantile)?;
                    for w in l.weights_mut().data_mut() {
                        *w = fmt.round_trip(*w);
                    }
                    for b in l.bias_mut() {
                        *b = fmt.round_trip(*b);
                    }
                }
                Layer::Conv(l) => {
                    let all: Vec<f32> =
                        l.weights().data().iter().chain(l.bias()).copied().collect();
                    let fmt = DynFixedFormat::for_values_clipped(weight_bits, &all, quantile)?;
                    for w in l.weights_mut().data_mut() {
                        *w = fmt.round_trip(*w);
                    }
                    for b in l.bias_mut() {
                        *b = fmt.round_trip(*b);
                    }
                }
                Layer::Pool(_) => {}
            }
        }
        Ok(net)
    }

    /// Inference with every layer input quantized to `input_bits`.
    /// Non-negative activations (images, sigmoid, ReLU outputs) use the
    /// full unsigned code range — PRIME's input voltages are unsigned, so
    /// 3 bits means 8 voltage levels (paper §III-D); signed activations
    /// fall back to two's-complement dynamic fixed point.
    ///
    /// # Errors
    ///
    /// Propagates quantization-format and input-validation errors.
    pub fn forward_activation_quantized(
        &self,
        input: &[f32],
        input_bits: u8,
    ) -> Result<Vec<f32>, NnError> {
        let mut x = input.to_vec();
        for layer in &self.layers {
            quantize_activations(&mut x, input_bits)?;
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Quantized inference with dynamic fixed point: weights quantized to
    /// `weight_bits` (per-layer exponent, outlier-clipped) and every layer
    /// input to `input_bits` — the hardware view of the network under the
    /// paper's precision assumptions (Fig. 6 sweep). For sweeping many
    /// samples, quantize the weights once with
    /// [`weight_quantized_clone`](Self::weight_quantized_clone) and call
    /// [`forward_activation_quantized`](Self::forward_activation_quantized).
    ///
    /// # Errors
    ///
    /// Propagates quantization-format and input-validation errors.
    pub fn forward_quantized(
        &self,
        input: &[f32],
        input_bits: u8,
        weight_bits: u8,
    ) -> Result<Vec<f32>, NnError> {
        self.weight_quantized_clone(weight_bits)?.forward_activation_quantized(input, input_bits)
    }
}

/// Quantizes an activation vector in place: unsigned full-range codes for
/// non-negative data, signed dynamic fixed point otherwise.
fn quantize_activations(values: &mut [f32], bits: u8) -> Result<(), NnError> {
    let min = values.iter().fold(f32::INFINITY, |m, &v| m.min(v));
    let max_abs = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 {
        return Ok(());
    }
    if min >= 0.0 {
        let levels = ((1u32 << bits) - 1) as f32;
        let scale = max_abs / levels;
        for v in values.iter_mut() {
            *v = (*v / scale).round().clamp(0.0, levels) * scale;
        }
    } else {
        let fmt = DynFixedFormat::for_range(bits, max_abs)?;
        for v in values.iter_mut() {
            *v = fmt.round_trip(*v);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, PoolKind};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_net() -> Network {
        let mut net = Network::new(vec![
            Layer::Fc(FullyConnected::new(4, 6, Activation::Sigmoid)),
            Layer::Fc(FullyConnected::new(6, 3, Activation::Identity)),
        ])
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        net.init_random(&mut rng);
        net
    }

    #[test]
    fn new_validates_interfaces() {
        let bad = Network::new(vec![
            Layer::Fc(FullyConnected::new(4, 6, Activation::Sigmoid)),
            Layer::Fc(FullyConnected::new(5, 3, Activation::Identity)),
        ]);
        assert!(bad.is_err());
        assert!(matches!(Network::new(vec![]), Err(NnError::EmptyNetwork)));
    }

    #[test]
    fn forward_produces_output_width() {
        let net = tiny_net();
        let out = net.forward(&[0.1, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(net.inputs(), 4);
        assert_eq!(net.outputs(), 3);
        assert_eq!(net.synapses(), 4 * 6 + 6 * 3);
    }

    #[test]
    fn conv_pool_fc_stack_composes() {
        let net = Network::new(vec![
            Layer::Conv(Conv2d::new(1, 5, 5, 28, 28, 0, Activation::Relu)),
            Layer::Pool(Pool2d::new(PoolKind::Max, 5, 24, 24, 2)),
            Layer::Fc(FullyConnected::new(720, 70, Activation::Sigmoid)),
            Layer::Fc(FullyConnected::new(70, 10, Activation::Identity)),
        ])
        .unwrap();
        let out = net.forward(&vec![0.5; 784]).unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn backward_update_reduces_loss() {
        let mut net = tiny_net();
        let x = [0.2f32, -0.4, 0.8, 0.6];
        let target = [1.0f32, 0.0, -1.0];
        let loss = |out: &[f32]| -> f32 {
            out.iter().zip(&target).map(|(o, t)| (o - t) * (o - t)).sum::<f32>() / 2.0
        };
        let (out0, caches) = net.forward_cache(&x).unwrap();
        let l0 = loss(&out0);
        let grad: Vec<f32> = out0.iter().zip(&target).map(|(o, t)| o - t).collect();
        net.backward_update(&caches, &grad, 0.5);
        let out1 = net.forward(&x).unwrap();
        assert!(loss(&out1) < l0, "loss did not decrease: {l0} -> {}", loss(&out1));
    }

    #[test]
    fn quantized_forward_approaches_float_with_more_bits() {
        let net = tiny_net();
        let x = [0.3f32, 0.1, -0.5, 0.9];
        let exact = net.forward(&x).unwrap();
        let q8 = net.forward_quantized(&x, 8, 8).unwrap();
        let q2 = net.forward_quantized(&x, 2, 2).unwrap();
        let err = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
        };
        assert!(err(&exact, &q8) < err(&exact, &q2).max(1e-6) + 1e-6);
        assert!(err(&exact, &q8) < 0.05, "8-bit error too large: {}", err(&exact, &q8));
    }

    #[test]
    fn describe_names_layers() {
        let net = tiny_net();
        assert_eq!(net.layers()[0].describe(), "fc 4-6");
    }
}
