//! Classification metrics: confusion matrix and per-class statistics for
//! the accuracy experiments.

use serde::{Deserialize, Serialize};

use crate::error::NnError;

/// A confusion matrix over `classes` labels: `counts[actual][predicted]`.
///
/// # Examples
///
/// ```
/// use prime_nn::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(3);
/// cm.record(0, 0)?;
/// cm.record(0, 1)?;
/// cm.record(1, 1)?;
/// assert_eq!(cm.accuracy(), 2.0 / 3.0);
/// assert_eq!(cm.recall(0), 0.5);
/// # Ok::<(), prime_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix over `classes` labels.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        ConfusionMatrix { classes, counts: vec![0; classes * classes] }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(actual, predicted)` pair.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if either label is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) -> Result<(), NnError> {
        if actual >= self.classes || predicted >= self.classes {
            return Err(NnError::BadInput {
                layer: "confusion matrix".to_string(),
                expected: self.classes,
                got: actual.max(predicted),
            });
        }
        self.counts[actual * self.classes + predicted] += 1;
        Ok(())
    }

    /// The count at `(actual, predicted)`.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual * self.classes + predicted]
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Recall of one class: correct / actual occurrences (0 when unseen).
    pub fn recall(&self, class: usize) -> f64 {
        let actual: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if actual == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / actual as f64
        }
    }

    /// Precision of one class: correct / predicted occurrences (0 when
    /// never predicted).
    pub fn precision(&self, class: usize) -> f64 {
        let predicted: u64 = (0..self.classes).map(|a| self.count(a, class)).sum();
        if predicted == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / predicted as f64
        }
    }

    /// The most-confused pair `(actual, predicted, count)` off the
    /// diagonal, if any misclassification was recorded.
    pub fn worst_confusion(&self) -> Option<(usize, usize, u64)> {
        let mut worst = None;
        for a in 0..self.classes {
            for p in 0..self.classes {
                if a != p && self.count(a, p) > 0 {
                    let candidate = (a, p, self.count(a, p));
                    if worst.is_none_or(|(_, _, c)| candidate.2 > c) {
                        worst = Some(candidate);
                    }
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new(3);
        // Class 0: 3 correct, 1 -> class 2.
        for _ in 0..3 {
            cm.record(0, 0).unwrap();
        }
        cm.record(0, 2).unwrap();
        // Class 1: 2 correct.
        cm.record(1, 1).unwrap();
        cm.record(1, 1).unwrap();
        // Class 2: 1 correct, 2 -> class 0.
        cm.record(2, 2).unwrap();
        cm.record(2, 0).unwrap();
        cm.record(2, 0).unwrap();
        cm
    }

    #[test]
    fn accuracy_counts_the_diagonal() {
        let cm = sample_matrix();
        assert_eq!(cm.total(), 9);
        assert!((cm.accuracy() - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn recall_and_precision_per_class() {
        let cm = sample_matrix();
        assert!((cm.recall(0) - 0.75).abs() < 1e-12);
        assert_eq!(cm.recall(1), 1.0);
        assert!((cm.recall(2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((cm.precision(0) - 3.0 / 5.0).abs() < 1e-12);
        assert_eq!(cm.precision(1), 1.0);
        assert!((cm.precision(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn worst_confusion_finds_the_biggest_off_diagonal() {
        let cm = sample_matrix();
        assert_eq!(cm.worst_confusion(), Some((2, 0, 2)));
        let clean = ConfusionMatrix::new(2);
        assert_eq!(clean.worst_confusion(), None);
    }

    #[test]
    fn record_validates_labels() {
        let mut cm = ConfusionMatrix::new(2);
        assert!(cm.record(2, 0).is_err());
        assert!(cm.record(0, 2).is_err());
        assert_eq!(cm.total(), 0);
    }

    #[test]
    fn empty_matrix_has_zero_metrics() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.recall(1), 0.0);
        assert_eq!(cm.precision(1), 0.0);
    }
}
