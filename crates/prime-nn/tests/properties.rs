//! Property-based tests for the NN substrate.

use proptest::prelude::*;

use prime_nn::{
    softmax, Activation, DynFixedFormat, FullyConnected, Layer, Network, Pool2d, PoolKind,
    Tensor,
};

proptest! {
    /// Dynamic fixed-point round trips stay within half a step for any
    /// in-range value at any width.
    #[test]
    fn fixed_point_round_trip_error_bounded(
        bits in 2u8..=12,
        range in 0.01f32..100.0,
        frac in -1.0f32..1.0,
    ) {
        let fmt = DynFixedFormat::for_range(bits, range).unwrap();
        let value = range * frac;
        let err = (fmt.round_trip(value) - value).abs();
        prop_assert!(err <= fmt.max_error() * 1.0001, "err {err} step {}", fmt.step());
    }

    /// Quantization codes always stay within the two's-complement range.
    #[test]
    fn fixed_point_codes_in_range(bits in 1u8..=12, value in -1e6f32..1e6) {
        let fmt = DynFixedFormat::for_range(bits, 1.0).unwrap();
        let code = fmt.quantize(value);
        prop_assert!(code >= fmt.min_code() && code <= fmt.max_code());
    }

    /// Softmax always produces a probability distribution.
    #[test]
    fn softmax_is_normalized(logits in proptest::collection::vec(-50.0f32..50.0, 1..20)) {
        let p = softmax(&logits);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    /// Max pooling then upsampled gradient: the backward pass routes each
    /// output gradient to exactly one input position, conserving mass.
    #[test]
    fn max_pool_backward_conserves_gradient(
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let pool = Pool2d::new(PoolKind::Max, 2, 4, 4, 2);
        let input: Vec<f32> = (0..32).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let cache = pool.forward_cache(&input).unwrap();
        let grad_out: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let grad_in = pool.backward(&cache, &grad_out);
        let sum_out: f32 = grad_out.iter().sum();
        let sum_in: f32 = grad_in.iter().sum();
        prop_assert!((sum_out - sum_in).abs() < 1e-4);
    }

    /// A fully-connected layer is linear (before activation): scaling the
    /// input scales the pre-activation output.
    #[test]
    fn fc_identity_layer_is_linear(scale in 0.1f32..4.0, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut fc = FullyConnected::new(6, 4, Activation::Identity);
        for w in fc.weights_mut().data_mut() {
            *w = rng.gen_range(-1.0f32..1.0);
        }
        let x: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let xs: Vec<f32> = x.iter().map(|&v| v * scale).collect();
        let y = fc.forward(&x).unwrap();
        let ys = fc.forward(&xs).unwrap();
        for (a, b) in y.iter().zip(&ys) {
            prop_assert!((a * scale - b).abs() < 1e-3 * (1.0 + a.abs() * scale));
        }
    }

    /// Network construction succeeds iff all interfaces match.
    #[test]
    fn network_width_validation(hidden in 1usize..64, mismatch in 1usize..64) {
        let ok = Network::new(vec![
            Layer::Fc(FullyConnected::new(8, hidden, Activation::Sigmoid)),
            Layer::Fc(FullyConnected::new(hidden, 3, Activation::Identity)),
        ]);
        prop_assert!(ok.is_ok());
        if mismatch != hidden {
            let bad = Network::new(vec![
                Layer::Fc(FullyConnected::new(8, hidden, Activation::Sigmoid)),
                Layer::Fc(FullyConnected::new(mismatch, 3, Activation::Identity)),
            ]);
            prop_assert!(bad.is_err());
        }
    }

    /// Tensor reshape preserves data for any compatible factorization.
    #[test]
    fn tensor_reshape_preserves_elements(rows in 1usize..16, cols in 1usize..16) {
        let data: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
        let mut t = Tensor::from_vec(vec![rows, cols], data.clone()).unwrap();
        t.reshape(vec![cols, rows]).unwrap();
        prop_assert_eq!(t.data(), &data[..]);
        t.reshape(vec![rows * cols]).unwrap();
        prop_assert_eq!(t.data(), &data[..]);
    }
}
