//! Time/size-windowed batch collection with bounded-queue admission
//! control (DESIGN.md §14).
//!
//! The collector is a pure state machine over an *injected* clock: every
//! operation takes the current time as a [`Duration`] since an arbitrary
//! epoch, so the window logic is unit-testable without wall-clock sleeps
//! and the server merely feeds it `Instant::elapsed` readings.
//!
//! Policy:
//!
//! * **Admission** — [`offer`](BatchCollector::offer) refuses a job the
//!   moment the pending count has reached `queue_bound` (shedding kicks
//!   in *exactly at* the bound, never one past it) and reports the depth
//!   so the caller can answer with a typed `Overloaded` response.
//! * **Size trigger** — once `max_batch` jobs are pending,
//!   [`poll`](BatchCollector::poll) flushes the oldest `max_batch` of
//!   them immediately.
//! * **Deadline trigger** — otherwise a flush happens when the *oldest*
//!   pending job has waited `max_delay`, bounding the latency cost any
//!   request pays for batching.
//! * **Fairness** — jobs flush strictly in arrival order (FIFO), across
//!   flushes as well as within one.

use std::collections::VecDeque;
use std::time::Duration;

/// Batching and admission-control knobs for one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Flush as soon as this many jobs are pending (size trigger). A
    /// value of 0 behaves as 1: every job flushes alone.
    pub max_batch: usize,
    /// Flush when the oldest pending job has waited this long (deadline
    /// trigger).
    pub max_delay: Duration,
    /// Admission bound: a job offered while this many are already
    /// pending is shed. A bound of 0 sheds everything (useful to test
    /// the overload path deterministically).
    pub queue_bound: usize,
}

impl BatchConfig {
    /// A small, low-latency default: batches of up to 8, a 1 ms window,
    /// and a 256-deep admission queue.
    pub fn default_online() -> Self {
        BatchConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(1),
            queue_bound: 256,
        }
    }
}

/// Verdict of [`BatchCollector::offer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The job was queued and will be part of a future flush.
    Admitted,
    /// The job was refused: the queue already held `queue_depth` jobs
    /// against a bound of `queue_bound`.
    Shed {
        /// Jobs pending at the time of the refusal.
        queue_depth: usize,
        /// The configured admission bound.
        queue_bound: usize,
    },
}

/// The time/size-windowed batch collector.
#[derive(Debug)]
pub struct BatchCollector<T> {
    config: BatchConfig,
    /// Pending jobs with their enqueue times, oldest first.
    queue: VecDeque<(T, Duration)>,
}

impl<T> BatchCollector<T> {
    /// Creates an empty collector with the given window/bound config.
    pub fn new(config: BatchConfig) -> Self {
        BatchCollector { config, queue: VecDeque::new() }
    }

    /// The configured knobs.
    pub fn config(&self) -> BatchConfig {
        self.config
    }

    /// Jobs currently pending.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Offers a job at time `now`: queues it, or sheds it if the queue
    /// has reached the admission bound.
    pub fn offer(&mut self, job: T, now: Duration) -> Admission {
        if self.queue.len() >= self.config.queue_bound {
            return Admission::Shed {
                queue_depth: self.queue.len(),
                queue_bound: self.config.queue_bound,
            };
        }
        self.queue.push_back((job, now));
        Admission::Admitted
    }

    /// When the oldest pending job's deadline expires (`None` when the
    /// queue is empty). The dispatcher sleeps until this (or an offer
    /// notification) before polling again.
    pub fn next_deadline(&self) -> Option<Duration> {
        self.queue.front().map(|(_, t)| *t + self.config.max_delay)
    }

    /// Flushes a batch if a trigger has fired at time `now`: the size
    /// trigger (`max_batch` pending) or the deadline trigger (oldest job
    /// waited `max_delay`). Returns the oldest `max_batch` jobs in
    /// arrival order, or `None` when no trigger has fired.
    pub fn poll(&mut self, now: Duration) -> Option<Vec<T>> {
        let size_hit = self.queue.len() >= self.config.max_batch.max(1);
        let deadline_hit = self.next_deadline().is_some_and(|d| d <= now);
        if !size_hit && !deadline_hit {
            return None;
        }
        Some(self.take_batch())
    }

    /// Unconditionally flushes the oldest `max_batch` jobs (shutdown
    /// drain); an empty vec when nothing is pending.
    pub fn take_batch(&mut self) -> Vec<T> {
        let n = self.queue.len().min(self.config.max_batch.max(1));
        self.queue.drain(..n).map(|(job, _)| job).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn collector(max_batch: usize, max_delay_ms: u64, bound: usize) -> BatchCollector<usize> {
        BatchCollector::new(BatchConfig {
            max_batch,
            max_delay: ms(max_delay_ms),
            queue_bound: bound,
        })
    }

    #[test]
    fn size_triggered_flush_fires_exactly_at_max_batch() {
        let mut c = collector(4, 1000, 64);
        for j in 0..3 {
            assert_eq!(c.offer(j, ms(j as u64)), Admission::Admitted);
            assert_eq!(c.poll(ms(j as u64)), None, "no flush below max_batch");
        }
        assert_eq!(c.offer(3, ms(3)), Admission::Admitted);
        assert_eq!(c.poll(ms(3)), Some(vec![0, 1, 2, 3]));
        assert!(c.is_empty());
    }

    #[test]
    fn deadline_triggered_flush_uses_the_oldest_jobs_clock() {
        let mut c = collector(100, 5, 64);
        c.offer(0, ms(10));
        c.offer(1, ms(12));
        assert_eq!(c.next_deadline(), Some(ms(15)), "deadline tracks the oldest job");
        assert_eq!(c.poll(ms(14)), None, "window still open");
        assert_eq!(c.poll(ms(15)), Some(vec![0, 1]), "deadline inclusive");
        assert_eq!(c.next_deadline(), None);
    }

    #[test]
    fn flush_ordering_is_fifo_across_multiple_flushes() {
        let mut c = collector(4, 1000, 64);
        for j in 0..10 {
            c.offer(j, ms(0));
        }
        assert_eq!(c.poll(ms(0)), Some(vec![0, 1, 2, 3]));
        assert_eq!(c.poll(ms(0)), Some(vec![4, 5, 6, 7]));
        // Two left: below the size trigger, so only the deadline flushes.
        assert_eq!(c.poll(ms(999)), None);
        assert_eq!(c.poll(ms(1000)), Some(vec![8, 9]));
    }

    #[test]
    fn deadline_of_survivors_carries_over_after_a_partial_flush() {
        let mut c = collector(2, 10, 64);
        c.offer(0, ms(0));
        c.offer(1, ms(1));
        c.offer(2, ms(7));
        assert_eq!(c.poll(ms(1)), Some(vec![0, 1]), "size trigger");
        // Job 2 entered at t=7; its deadline is 17, not 11.
        assert_eq!(c.next_deadline(), Some(ms(17)));
        assert_eq!(c.poll(ms(16)), None);
        assert_eq!(c.poll(ms(17)), Some(vec![2]));
    }

    #[test]
    fn shedding_kicks_in_exactly_at_the_queue_bound() {
        let mut c = collector(100, 1000, 3);
        assert_eq!(c.offer(0, ms(0)), Admission::Admitted);
        assert_eq!(c.offer(1, ms(0)), Admission::Admitted);
        assert_eq!(c.offer(2, ms(0)), Admission::Admitted);
        assert_eq!(
            c.offer(3, ms(0)),
            Admission::Shed { queue_depth: 3, queue_bound: 3 },
            "the job *at* the bound is the first one shed"
        );
        // A flush frees capacity and admission resumes.
        assert_eq!(c.take_batch().len(), 3);
        assert_eq!(c.offer(4, ms(1)), Admission::Admitted);
    }

    #[test]
    fn zero_bound_sheds_everything() {
        let mut c = collector(4, 1, 0);
        assert_eq!(c.offer(0, ms(0)), Admission::Shed { queue_depth: 0, queue_bound: 0 });
        assert!(c.is_empty());
    }

    #[test]
    fn zero_max_batch_behaves_as_one() {
        let mut c = collector(0, 1000, 64);
        c.offer(7, ms(0));
        c.offer(8, ms(0));
        assert_eq!(c.poll(ms(0)), Some(vec![7]));
        assert_eq!(c.poll(ms(0)), Some(vec![8]));
    }
}
