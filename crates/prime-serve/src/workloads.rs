//! The standard serving registry: the same MLP-M-class and CNN-1-class
//! fully-connected workloads `bench_throughput` measures, deployed with
//! the same bank geometry, so serving-path latency numbers are directly
//! comparable with the in-process rows in `BENCH_throughput.json`.

use prime_compiler::Objective;
use prime_core::PrimeSystem;
use prime_device::NoiseModel;
use prime_nn::{Activation, FullyConnected, Layer, Network, NnError};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::batcher::BatchConfig;
use crate::error::ServeError;
use crate::server::Registry;

/// Model name for the paper's 784-1000-500-250-10 MLP-M.
pub const MLP_M: &str = "MLP-M-class";
/// Model name for CNN-1's fully-connected classifier head (720-70-10).
pub const CNN_1: &str = "CNN-1-class";
/// The weight seed shared with `bench_throughput` (same nets, same bits).
pub const WEIGHT_SEED: u64 = 0x5EED;

/// A fully-connected ReLU stack (hidden ReLU, identity head) with
/// seeded weights — the serving twin of `bench_throughput`'s `fc_net`.
///
/// # Errors
///
/// [`NnError`] if `widths` has fewer than two entries.
pub fn fc_net(widths: &[usize], seed: u64) -> Result<Network, NnError> {
    let layers = widths
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            let act = if i + 2 == widths.len() {
                Activation::Identity
            } else {
                Activation::Relu
            };
            Layer::Fc(FullyConnected::new(w[0], w[1], act))
        })
        .collect();
    let mut net = Network::new(layers)?;
    net.init_random(&mut SmallRng::seed_from_u64(seed));
    Ok(net)
}

/// Input width of [`MLP_M`].
pub const MLP_M_WIDTH: usize = 784;
/// Input width of [`CNN_1`].
pub const CNN_1_WIDTH: usize = 720;

const MLP_M_WIDTHS: &[usize] = &[784, 1000, 500, 250, 10];
const CNN_1_WIDTHS: &[usize] = &[720, 70, 10];

/// Builds the standard two-model registry ([`MLP_M`] on two banks,
/// [`CNN_1`] on one) with one shared batching policy.
///
/// # Errors
///
/// [`ServeError`] if either deploy fails — with fixed widths and the
/// bench geometry this indicates a regression, not bad input.
pub fn standard_registry(batch: BatchConfig, noise: NoiseModel) -> Result<Registry, ServeError> {
    let mut registry = Registry::new();
    for (name, widths, banks) in
        [(MLP_M, MLP_M_WIDTHS, 2usize), (CNN_1, CNN_1_WIDTHS, 1usize)]
    {
        let net = fc_net(widths, WEIGHT_SEED).map_err(|e| ServeError::Io {
            context: "build workload",
            detail: e.to_string(),
        })?;
        let calibration = vec![0.5f32; widths[0]];
        // The bench's flat geometry: 2 subarrays x 32 mats per bank.
        let system = PrimeSystem::new(banks, 2, 32, 8192);
        // Latency-objective search: ties keep the fixed-default dense
        // placement, so served outputs stay bit-identical to the
        // pre-search registry while the log records the full search.
        registry.register(
            name,
            system,
            &net,
            &calibration,
            batch,
            noise,
            Objective::Latency,
        )?;
    }
    Ok(registry)
}

/// A deterministic input for `model` (index `i` varies the pattern),
/// matching the shape `standard_registry`'s models expect.
pub fn sample_input(width: usize, i: usize) -> Vec<f32> {
    (0..width).map(|j| ((i * 7 + j * 3) % 17) as f32 / 17.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_serves_both_bench_models() {
        let registry =
            standard_registry(BatchConfig::default_online(), NoiseModel::default())
                .expect("bench workloads deploy");
        assert_eq!(registry.model_names(), vec![MLP_M.to_string(), CNN_1.to_string()]);
    }

    #[test]
    fn registration_log_reports_the_mapping_search() {
        let registry =
            standard_registry(BatchConfig::default_online(), NoiseModel::default())
                .expect("bench workloads deploy");
        let log = registry.registration_log();
        assert_eq!(log.len(), 2, "one entry per registered model");
        for (entry, name) in log.iter().zip([MLP_M, CNN_1]) {
            assert!(entry.contains(name), "log entry names its model: {entry}");
            assert!(
                entry.contains("mapping search (objective=latency"),
                "searched registration reports the search: {entry}"
            );
            assert!(entry.contains("CHOSEN"), "log shows the winner: {entry}");
        }
    }

    #[test]
    fn fc_net_widths_match_the_bench_topologies() {
        let mlp = fc_net(MLP_M_WIDTHS, WEIGHT_SEED).expect("builds");
        assert_eq!(mlp.inputs(), MLP_M_WIDTH);
        assert_eq!(mlp.outputs(), 10);
        let cnn = fc_net(CNN_1_WIDTHS, WEIGHT_SEED).expect("builds");
        assert_eq!(cnn.inputs(), CNN_1_WIDTH);
        assert_eq!(cnn.outputs(), 10);
    }
}
