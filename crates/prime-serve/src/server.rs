//! The serving loop: a `std::net` TCP front end for deployed
//! [`PrimeSystem`]s.
//!
//! Threading model (all scoped, so [`Server::run`] returns only after
//! every thread has been joined — no leaks):
//!
//! * one **accept loop** (the calling thread) taking connections;
//! * one **reader** thread per connection, decoding frames and pushing
//!   jobs into the owning model's [`BatchCollector`];
//! * one **dispatcher** thread per model, flushing the collector on the
//!   size/deadline triggers and writing responses back through each
//!   job's captured write half.
//!
//! Batching preserves bit-identity with direct [`PrimeSystem`] calls:
//! digital jobs in a flush are coalesced into one `infer_batch` call
//! (replicated copies hold byte-identical weights, so batch composition
//! cannot change an output), while seeded-noisy jobs are *never*
//! coalesced — each runs as its own single-input `infer_batch_noisy`
//! call, because the per-bank RNG stream draw order depends on batch
//! position.
//!
//! Shutdown is cooperative: [`ShutdownHandle::shutdown`] raises an
//! atomic flag and self-connects once to unblock `accept`. Readers poll
//! the flag via short socket read timeouts; dispatchers drain whatever
//! is still queued before exiting, so every admitted request is
//! answered.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use prime_analyze::unservable_model;
use prime_compiler::Objective;
use prime_core::{PrimeError, PrimeSystem, SystemHandle};
use prime_device::NoiseModel;
use prime_nn::Network;
use prime_sim::SimCostModel;

use crate::batcher::{Admission, BatchCollector, BatchConfig};
use crate::error::ServeError;
use crate::wire::{
    decode_request, encode_response, frame, Mode, Request, Response, WireError,
    MAX_FRAME_BYTES,
};

/// How long a blocked reader waits before re-checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(25);
/// How long an idle dispatcher waits before re-checking the flag.
const IDLE_WAIT: Duration = Duration::from_millis(20);

/// Queue/stream mutexes only: these guard plain data (a job queue, a
/// write half) that stays consistent even if a holder panicked, so
/// absorbing poison is safe. The *system* lock is different — a crash
/// mid-inference can leave device state half-written — and is guarded by
/// [`SystemHandle`], which surfaces [`PrimeError::Poisoned`] instead.
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A model registered for serving: a deployed system plus its batching
/// policy and (for noisy-mode requests) the analog noise model.
struct ModelRuntime {
    name: String,
    width: usize,
    noise: NoiseModel,
    handle: SystemHandle,
    queue: Mutex<BatchCollector<ServeJob>>,
    wake: Condvar,
    served: AtomicU64,
    shed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    /// Latched when the system lock reports [`PrimeError::Poisoned`]: a
    /// thread crashed mid-inference, so the deployed state cannot be
    /// trusted. Admission answers a typed error from then on instead of
    /// queueing work against the broken model.
    unservable: AtomicBool,
}

/// The set of models a [`Server`] exposes. Deployment happens at
/// registration time, so a server never advertises a model the static
/// verifier rejected.
#[derive(Default)]
pub struct Registry {
    models: Vec<ModelRuntime>,
    log: Vec<String>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Deploys `net` onto `system` under a cost-model-driven mapping
    /// search and registers the result under `name`.
    ///
    /// `objective` selects the mapping: [`Objective::Fixed`] pins a
    /// strategy exactly as the pre-search deploy path did, while
    /// `Latency`/`Memory`/`Balanced` enumerate candidate mappings, prune
    /// those the static verifiers reject, score the rest with the
    /// simulator-backed cost model, and deploy the argmin. The full
    /// search report — chosen candidate and rejected alternatives —
    /// lands in [`Registry::registration_log`].
    ///
    /// # Errors
    ///
    /// [`ServeError::DuplicateModel`] if `name` is taken;
    /// [`ServeError::NotServable`] (leading with the P031 diagnostic)
    /// if the deploy verifier rejects the network;
    /// [`ServeError::Deploy`] for any other deploy failure, including a
    /// search whose every candidate was pruned.
    #[allow(clippy::too_many_arguments)]
    pub fn register(
        &mut self,
        name: &str,
        mut system: PrimeSystem,
        net: &Network,
        calibration: &[f32],
        batch: BatchConfig,
        noise: NoiseModel,
        objective: Objective,
    ) -> Result<(), ServeError> {
        if self.models.iter().any(|m| m.name == name) {
            return Err(ServeError::DuplicateModel { model: name.to_string() });
        }
        match system.deploy_auto(net, calibration, objective, &SimCostModel) {
            Ok(()) => {}
            Err(PrimeError::Rejected { diagnostics }) => {
                let mut all = vec![unservable_model(name, &diagnostics)];
                all.extend(diagnostics);
                return Err(ServeError::NotServable {
                    model: name.to_string(),
                    diagnostics: all,
                });
            }
            Err(error) => {
                return Err(ServeError::Deploy { model: name.to_string(), error })
            }
        }
        self.log.push(match system.deploy_stats() {
            Some(stats) => match &stats.search {
                Some(search) => format!("registered `{name}`: {}", search.describe()),
                None => format!(
                    "registered `{name}`: fixed mapping ({})",
                    stats.strategy.name()
                ),
            },
            None => format!("registered `{name}`"),
        });
        self.models.push(ModelRuntime {
            name: name.to_string(),
            width: net.inputs(),
            noise,
            handle: SystemHandle::new(system),
            queue: Mutex::new(BatchCollector::new(batch)),
            wake: Condvar::new(),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            unservable: AtomicBool::new(false),
        });
        Ok(())
    }

    /// Names of the registered models, in registration order.
    pub fn model_names(&self) -> Vec<String> {
        self.models.iter().map(|m| m.name.clone()).collect()
    }

    /// One entry per successful [`Registry::register`] call: the mapping
    /// the model deployed with — for searched objectives, the full
    /// candidate-by-candidate report.
    pub fn registration_log(&self) -> &[String] {
        &self.log
    }
}

/// Per-model counters reported by [`Server::run`] on shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelStats {
    /// Model name.
    pub model: String,
    /// Requests answered with an `Output` response.
    pub served: u64,
    /// Requests refused with an `Overloaded` response.
    pub shed: u64,
    /// Requests answered with an `Error` response.
    pub failed: u64,
    /// `infer_batch`/`infer_batch_noisy` calls issued.
    pub batches: u64,
}

/// Whole-server counters reported by [`Server::run`] on shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Per-model counters, in registration order.
    pub models: Vec<ModelStats>,
}

/// Raises the shutdown flag and unblocks the accept loop.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Asks the server to stop. Idempotent; safe from any thread.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // Wake the accept loop; the connection is dropped immediately.
        if let Ok(stream) = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1)) {
            drop(stream);
        }
    }
}

/// A bound-but-not-yet-running PRIME inference server.
pub struct Server {
    listener: TcpListener,
    registry: Registry,
    flag: Arc<AtomicBool>,
}

impl Server {
    /// Binds a listener for `registry`'s models. Use `127.0.0.1:0` to
    /// let the OS pick a port (see [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::NoModels`] for an empty registry, otherwise any
    /// socket bind failure as [`ServeError::Io`].
    pub fn bind(addr: impl ToSocketAddrs, registry: Registry) -> Result<Server, ServeError> {
        if registry.models.is_empty() {
            return Err(ServeError::NoModels);
        }
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Io {
            context: "bind",
            detail: e.to_string(),
        })?;
        Ok(Server { listener, registry, flag: Arc::new(AtomicBool::new(false)) })
    }

    /// The address the server is listening on.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the socket cannot report its address.
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        self.listener.local_addr().map_err(|e| ServeError::Io {
            context: "local_addr",
            detail: e.to_string(),
        })
    }

    /// A handle that can stop [`Server::run`] from another thread.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the socket cannot report its address.
    pub fn shutdown_handle(&self) -> Result<ShutdownHandle, ServeError> {
        Ok(ShutdownHandle { flag: Arc::clone(&self.flag), addr: self.local_addr()? })
    }

    /// Serves until [`ShutdownHandle::shutdown`] is called, then drains
    /// all queued work, joins every thread, and returns the final
    /// counters.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] only for accept-loop failures; per-connection
    /// and per-request errors are answered on the wire instead.
    pub fn run(self) -> Result<ServeStats, ServeError> {
        let Server { listener, registry, flag } = self;
        let models = &registry.models[..];
        let flag = &*flag;
        let epoch = Instant::now();
        let connections = AtomicU64::new(0);
        let accept_error = std::thread::scope(|scope| {
            for model in models {
                scope.spawn(move || dispatcher(model, flag, epoch));
            }
            let mut accept_error = None;
            loop {
                let stream = match listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(e) => {
                        if flag.load(Ordering::SeqCst) {
                            break;
                        }
                        accept_error = Some(ServeError::Io {
                            context: "accept",
                            detail: e.to_string(),
                        });
                        flag.store(true, Ordering::SeqCst);
                        break;
                    }
                };
                if flag.load(Ordering::SeqCst) {
                    // The shutdown handle's wake connection (or a late
                    // client); either way we are closing.
                    break;
                }
                connections.fetch_add(1, Ordering::Relaxed);
                scope.spawn(move || connection(stream, models, flag, epoch));
            }
            // Make sure dispatchers notice the flag even if their
            // queues are idle.
            for model in models {
                model.wake.notify_one();
            }
            accept_error
        });
        if let Some(e) = accept_error {
            return Err(e);
        }
        Ok(ServeStats {
            connections: connections.load(Ordering::Relaxed),
            models: models
                .iter()
                .map(|m| ModelStats {
                    model: m.name.clone(),
                    served: m.served.load(Ordering::Relaxed),
                    shed: m.shed.load(Ordering::Relaxed),
                    failed: m.failed.load(Ordering::Relaxed),
                    batches: m.batches.load(Ordering::Relaxed),
                })
                .collect(),
        })
    }
}

/// One admitted request: what to compute and where to send the answer.
struct ServeJob {
    id: u64,
    mode: Mode,
    input: Vec<f32>,
    reply: Reply,
}

/// A shared write half of a connection. Dispatchers for different
/// models may interleave responses on one connection; the mutex keeps
/// frames atomic.
#[derive(Clone)]
struct Reply {
    stream: Arc<Mutex<TcpStream>>,
}

impl Reply {
    fn send(&self, response: &Response) {
        let bytes = match encode_response(response).and_then(|payload| frame(&payload)) {
            Ok(bytes) => bytes,
            Err(e) => {
                // The response itself cannot travel (a field outgrew its
                // wire header). Degrade to a small typed error so the
                // client is not left waiting on a frame that never comes;
                // this fallback is tiny, so its encode cannot fail.
                let fallback = Response::Error {
                    id: response.id(),
                    message: format!("response could not be encoded: {e}"),
                };
                match encode_response(&fallback).and_then(|payload| frame(&payload)) {
                    Ok(bytes) => bytes,
                    Err(_) => return,
                }
            }
        };
        let mut guard = lock(&self.stream);
        // A vanished client is its own problem; the server keeps going.
        let _ = guard.write_all(&bytes);
        let _ = guard.flush();
    }
}

/// Per-model dispatch loop: flush on size/deadline, drain on shutdown.
fn dispatcher(model: &ModelRuntime, flag: &AtomicBool, epoch: Instant) {
    let mut guard = lock(&model.queue);
    loop {
        if let Some(jobs) = guard.poll(epoch.elapsed()) {
            drop(guard);
            execute_batch(model, jobs);
            guard = lock(&model.queue);
            continue;
        }
        if flag.load(Ordering::SeqCst) {
            if guard.is_empty() {
                return;
            }
            let jobs = guard.take_batch();
            drop(guard);
            execute_batch(model, jobs);
            guard = lock(&model.queue);
            continue;
        }
        let now = epoch.elapsed();
        let wait = guard
            .next_deadline()
            .map(|d| d.saturating_sub(now).max(Duration::from_micros(50)))
            .unwrap_or(IDLE_WAIT)
            .min(IDLE_WAIT);
        let (g, _) = model
            .wake
            .wait_timeout(guard, wait)
            .unwrap_or_else(PoisonError::into_inner);
        guard = g;
    }
}

/// Runs one flushed batch. Digital jobs coalesce into a single
/// `infer_batch`; noisy jobs run one at a time to keep per-bank RNG
/// draw order — and therefore outputs — bit-identical to direct calls.
fn execute_batch(model: &ModelRuntime, jobs: Vec<ServeJob>) {
    let mut digital: Vec<ServeJob> = Vec::new();
    let mut noisy: Vec<ServeJob> = Vec::new();
    for job in jobs {
        match job.mode {
            Mode::Digital => digital.push(job),
            Mode::Noisy { .. } => noisy.push(job),
        }
    }
    if !digital.is_empty() {
        model.batches.fetch_add(1, Ordering::Relaxed);
        let inputs: Vec<Vec<f32>> =
            digital.iter_mut().map(|j| std::mem::take(&mut j.input)).collect();
        match model.handle.infer_batch(&inputs) {
            Ok(outputs) => {
                for (job, values) in digital.iter().zip(outputs) {
                    job.reply.send(&Response::Output { id: job.id, values });
                    model.served.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) => {
                if matches!(e, PrimeError::Poisoned) {
                    model.unservable.store(true, Ordering::SeqCst);
                }
                let message = format!("inference failed: {e}");
                for job in &digital {
                    job.reply
                        .send(&Response::Error { id: job.id, message: message.clone() });
                    model.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    for mut job in noisy {
        let Mode::Noisy { seed } = job.mode else { continue };
        model.batches.fetch_add(1, Ordering::Relaxed);
        let input = std::mem::take(&mut job.input);
        match model
            .handle
            .infer_batch_noisy(std::slice::from_ref(&input), &model.noise, seed)
        {
            Ok(outputs) => match outputs.into_iter().next() {
                Some(values) => {
                    job.reply.send(&Response::Output { id: job.id, values });
                    model.served.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    job.reply.send(&Response::Error {
                        id: job.id,
                        message: "inference returned no output".to_string(),
                    });
                    model.failed.fetch_add(1, Ordering::Relaxed);
                }
            },
            Err(e) => {
                if matches!(e, PrimeError::Poisoned) {
                    model.unservable.store(true, Ordering::SeqCst);
                }
                job.reply.send(&Response::Error {
                    id: job.id,
                    message: format!("inference failed: {e}"),
                });
                model.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Outcome of reading an exact byte count with shutdown polling.
enum ReadOutcome {
    Done,
    Closed,
    Shutdown,
}

fn read_exact_polling(
    stream: &mut TcpStream,
    buf: &mut [u8],
    flag: &AtomicBool,
) -> ReadOutcome {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if flag.load(Ordering::SeqCst) {
                    return ReadOutcome::Shutdown;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Closed,
        }
    }
    ReadOutcome::Done
}

/// Per-connection reader: frame -> decode -> admit (or answer a typed
/// error). Runs until the peer closes, a frame is unrecoverable, or
/// shutdown is raised.
fn connection(stream: TcpStream, models: &[ModelRuntime], flag: &AtomicBool, epoch: Instant) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let reply = match stream.try_clone() {
        Ok(write_half) => Reply { stream: Arc::new(Mutex::new(write_half)) },
        Err(_) => return,
    };
    let mut reader = stream;
    let mut header = [0u8; 4];
    loop {
        match read_exact_polling(&mut reader, &mut header, flag) {
            ReadOutcome::Done => {}
            ReadOutcome::Closed | ReadOutcome::Shutdown => return,
        }
        let len = u32::from_le_bytes(header);
        if len > MAX_FRAME_BYTES {
            // The stream cannot be resynchronized past a bogus length.
            let e = WireError::Oversized {
                len: u64::from(len),
                limit: u64::from(MAX_FRAME_BYTES),
            };
            reply.send(&Response::Error { id: 0, message: e.to_string() });
            return;
        }
        let mut payload = vec![0u8; len as usize];
        match read_exact_polling(&mut reader, &mut payload, flag) {
            ReadOutcome::Done => {}
            ReadOutcome::Closed | ReadOutcome::Shutdown => return,
        }
        match decode_request(&payload) {
            Ok(request) => admit(request, models, &reply, epoch),
            Err(e) => {
                // Framing survived but the payload is garbage: answer
                // and keep the connection (frames stay aligned).
                reply.send(&Response::Error {
                    id: 0,
                    message: format!("bad request: {e}"),
                });
            }
        }
    }
}

/// Routes a decoded request to its model's collector, answering
/// immediately for unknown models, width mismatches, and sheds.
fn admit(request: Request, models: &[ModelRuntime], reply: &Reply, epoch: Instant) {
    let Request { id, model, mode, input } = request;
    let Some(runtime) = models.iter().find(|m| m.name == model) else {
        reply.send(&Response::Error {
            id,
            message: format!("unknown model `{model}`"),
        });
        return;
    };
    if runtime.unservable.load(Ordering::SeqCst) {
        reply.send(&Response::Error {
            id,
            message: format!(
                "model `{model}` is unservable: a thread crashed mid-operation and \
                 poisoned the system; redeploy before serving"
            ),
        });
        return;
    }
    if input.len() != runtime.width {
        reply.send(&Response::Error {
            id,
            message: format!(
                "model `{model}` expects {} inputs, got {}",
                runtime.width,
                input.len()
            ),
        });
        return;
    }
    let job = ServeJob { id, mode, input, reply: reply.clone() };
    let admission = lock(&runtime.queue).offer(job, epoch.elapsed());
    match admission {
        Admission::Admitted => runtime.wake.notify_one(),
        Admission::Shed { queue_depth, queue_bound } => {
            runtime.shed.fetch_add(1, Ordering::Relaxed);
            reply.send(&Response::Overloaded {
                id,
                model,
                queue_depth: u32::try_from(queue_depth).unwrap_or(u32::MAX),
                queue_bound: u32::try_from(queue_bound).unwrap_or(u32::MAX),
            });
        }
    }
}
