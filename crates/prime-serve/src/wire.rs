//! Length-prefixed binary wire protocol for `prime-serve`.
//!
//! Every message travels as one *frame*: a little-endian `u32` payload
//! length followed by exactly that many payload bytes. The payload is a
//! tag byte and a fixed field sequence per message kind (DESIGN.md §14).
//! All integers are little-endian; strings are a `u16` byte length plus
//! UTF-8 bytes; `f32` vectors are a `u32` element count plus the raw IEEE
//! bit patterns, so every value — including NaNs and negative zero —
//! round-trips losslessly.
//!
//! Decoding is total: any byte sequence either decodes to a typed message
//! or returns a typed [`WireError`]. There are no panic paths, extending
//! the repo's no-panic guarantee (prime-lint P051) to the network edge.
//! Decoders consume the payload exactly; trailing bytes are an error, so
//! a frame is never silently reinterpreted.
//!
//! Encoding is fallible for the same reason: a value whose length does
//! not fit its header field (a string past `u16::MAX` bytes, a vector
//! past `u32::MAX` elements, a payload past `u32::MAX` bytes) returns
//! [`WireError::Oversized`] instead of being silently truncated to a
//! frame that would decode to *different data* on the other side.

use std::fmt;

/// Default ceiling on one frame's payload size. A 1 MiB frame holds a
/// ~260k-element input vector — far above any deployed model's width —
/// so anything larger is a protocol error (or an attack), not a request.
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// Typed decode/framing failure. Every malformed input maps to one of
/// these; the codec never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a field's bytes (`needed` more than the
    /// `remaining` bytes left).
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually left in the payload.
        remaining: usize,
    },
    /// A length did not fit the agreed bound: on decode, a frame header
    /// announced a payload larger than the receiver's limit; on encode,
    /// a field's length exceeded what its wire header can represent.
    Oversized {
        /// The offending length (bytes, or elements for vectors).
        len: u64,
        /// The limit it exceeded.
        limit: u64,
    },
    /// An unknown message or mode tag.
    BadTag {
        /// What was being decoded (`"request"`, `"response"`, `"mode"`).
        context: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A string field's bytes are not valid UTF-8.
    BadUtf8,
    /// The payload decoded fully but `extra` bytes were left over.
    TrailingBytes {
        /// Unconsumed byte count.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(f, "frame truncated: field needs {needed} bytes, {remaining} left")
            }
            WireError::Oversized { len, limit } => {
                write!(f, "length {len} exceeds the wire limit of {limit}")
            }
            WireError::BadTag { context, tag } => {
                write!(f, "unknown {context} tag {tag:#04x}")
            }
            WireError::BadUtf8 => f.write_str("string field is not valid UTF-8"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// How an inference request wants the model evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Exact digital evaluation (`PrimeSystem::infer_batch`).
    Digital,
    /// Seeded noisy-analog evaluation
    /// (`PrimeSystem::infer_batch_noisy` with the server's configured
    /// noise model). Noisy requests are never coalesced with other
    /// requests: each runs as its own batch so the response is
    /// bit-identical to a direct single-input call with the same seed.
    Noisy {
        /// RNG seed for the per-bank noise streams.
        seed: u64,
    },
}

/// One inference request. `id` is chosen by the client and echoed on the
/// matching response, so clients may pipeline requests on one connection.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// Name of the deployed model to run.
    pub model: String,
    /// Digital or seeded-noisy evaluation.
    pub mode: Mode,
    /// Input activations (must match the model's input width).
    pub input: Vec<f32>,
}

/// One server response, correlated to its request by `id`.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The inference completed; `values` is the model output.
    Output {
        /// Echoed request id.
        id: u64,
        /// Model output activations.
        values: Vec<f32>,
    },
    /// The request was shed by admission control instead of queued: the
    /// model's bounded queue was full. Typed so clients can distinguish
    /// overload (retry later, back off) from failure.
    Overloaded {
        /// Echoed request id.
        id: u64,
        /// The model whose queue was full.
        model: String,
        /// Jobs pending at the time of the shed.
        queue_depth: u32,
        /// The configured admission bound.
        queue_bound: u32,
    },
    /// The request was malformed or failed (unknown model, wrong input
    /// width, execution error); `message` is human-readable.
    Error {
        /// Echoed request id (0 when the request never decoded).
        id: u64,
        /// What went wrong.
        message: String,
    },
}

impl Response {
    /// The echoed request id of any response kind.
    pub fn id(&self) -> u64 {
        match self {
            Response::Output { id, .. }
            | Response::Overloaded { id, .. }
            | Response::Error { id, .. } => *id,
        }
    }
}

const TAG_REQUEST: u8 = 0x01;
const TAG_MODE_DIGITAL: u8 = 0x00;
const TAG_MODE_NOISY: u8 = 0x01;
const TAG_OUTPUT: u8 = 0x81;
const TAG_OVERLOADED: u8 = 0x82;
const TAG_ERROR: u8 = 0x83;

/// Exact-consumption payload reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let remaining = self.buf.len() - self.pos;
        if remaining < n {
            return Err(WireError::Truncated { needed: n, remaining });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn f32_vec(&mut self) -> Result<Vec<f32>, WireError> {
        let count = self.u32()? as usize;
        // Reserve only after the byte count is known to be present, so a
        // lying header cannot trigger a huge allocation.
        let bytes = self.take(count.saturating_mul(4))?;
        let mut values = Vec::with_capacity(count);
        for chunk in bytes.chunks_exact(4) {
            values.push(f32::from_bits(u32::from_le_bytes([
                chunk[0], chunk[1], chunk[2], chunk[3],
            ])));
        }
        Ok(values)
    }

    fn finish(self) -> Result<(), WireError> {
        let extra = self.buf.len() - self.pos;
        if extra > 0 {
            return Err(WireError::TrailingBytes { extra });
        }
        Ok(())
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) -> Result<(), WireError> {
    // A string's byte length travels as a u16: anything longer cannot be
    // represented on the wire, so it is rejected rather than truncated
    // to a name the receiver would misread as complete.
    let bytes = s.as_bytes();
    let len = u16::try_from(bytes.len()).map_err(|_| WireError::Oversized {
        len: bytes.len() as u64,
        limit: u64::from(u16::MAX),
    })?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(bytes);
    Ok(())
}

fn put_f32_vec(out: &mut Vec<u8>, values: &[f32]) -> Result<(), WireError> {
    // The element count travels as a u32; reject rather than drop the
    // tail of a vector that does not fit.
    let len = u32::try_from(values.len()).map_err(|_| WireError::Oversized {
        len: values.len() as u64,
        limit: u64::from(u32::MAX),
    })?;
    out.extend_from_slice(&len.to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    Ok(())
}

/// Encodes a request into a frame payload (no length prefix).
///
/// # Errors
///
/// [`WireError::Oversized`] when the model name exceeds `u16::MAX` bytes
/// or the input exceeds `u32::MAX` elements; nothing is truncated.
pub fn encode_request(req: &Request) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(32 + req.input.len() * 4);
    out.push(TAG_REQUEST);
    out.extend_from_slice(&req.id.to_le_bytes());
    match req.mode {
        Mode::Digital => out.push(TAG_MODE_DIGITAL),
        Mode::Noisy { seed } => {
            out.push(TAG_MODE_NOISY);
            out.extend_from_slice(&seed.to_le_bytes());
        }
    }
    put_string(&mut out, &req.model)?;
    put_f32_vec(&mut out, &req.input)?;
    Ok(out)
}

/// Decodes a request payload.
///
/// # Errors
///
/// Returns a typed [`WireError`] on any malformed input; never panics.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    if tag != TAG_REQUEST {
        return Err(WireError::BadTag { context: "request", tag });
    }
    let id = r.u64()?;
    let mode = match r.u8()? {
        TAG_MODE_DIGITAL => Mode::Digital,
        TAG_MODE_NOISY => Mode::Noisy { seed: r.u64()? },
        tag => return Err(WireError::BadTag { context: "mode", tag }),
    };
    let model = r.string()?;
    let input = r.f32_vec()?;
    r.finish()?;
    Ok(Request { id, model, mode, input })
}

/// Encodes a response into a frame payload (no length prefix).
///
/// # Errors
///
/// [`WireError::Oversized`] when a string field exceeds `u16::MAX` bytes
/// or the output exceeds `u32::MAX` elements; nothing is truncated.
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(32);
    match resp {
        Response::Output { id, values } => {
            out.push(TAG_OUTPUT);
            out.extend_from_slice(&id.to_le_bytes());
            put_f32_vec(&mut out, values)?;
        }
        Response::Overloaded { id, model, queue_depth, queue_bound } => {
            out.push(TAG_OVERLOADED);
            out.extend_from_slice(&id.to_le_bytes());
            put_string(&mut out, model)?;
            out.extend_from_slice(&queue_depth.to_le_bytes());
            out.extend_from_slice(&queue_bound.to_le_bytes());
        }
        Response::Error { id, message } => {
            out.push(TAG_ERROR);
            out.extend_from_slice(&id.to_le_bytes());
            put_string(&mut out, message)?;
        }
    }
    Ok(out)
}

/// Decodes a response payload.
///
/// # Errors
///
/// Returns a typed [`WireError`] on any malformed input; never panics.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    let resp = match tag {
        TAG_OUTPUT => {
            let id = r.u64()?;
            let values = r.f32_vec()?;
            Response::Output { id, values }
        }
        TAG_OVERLOADED => {
            let id = r.u64()?;
            let model = r.string()?;
            let queue_depth = r.u32()?;
            let queue_bound = r.u32()?;
            Response::Overloaded { id, model, queue_depth, queue_bound }
        }
        TAG_ERROR => {
            let id = r.u64()?;
            let message = r.string()?;
            Response::Error { id, message }
        }
        tag => return Err(WireError::BadTag { context: "response", tag }),
    };
    r.finish()?;
    Ok(resp)
}

/// Prepends the `u32` little-endian length header to a payload.
///
/// # Errors
///
/// [`WireError::Oversized`] when the payload exceeds `u32::MAX` bytes —
/// the header could not announce its true length, and a truncated frame
/// would decode to different data (or garbage) on the other side.
pub fn frame(payload: &[u8]) -> Result<Vec<u8>, WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::Oversized {
        len: payload.len() as u64,
        limit: u64::from(u32::MAX),
    })?;
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Splits one frame off the front of `bytes`.
///
/// Returns `Ok(None)` when `bytes` holds a partial frame (more input
/// needed), `Ok(Some((payload, consumed)))` for a complete frame.
///
/// # Errors
///
/// [`WireError::Oversized`] when the header announces more than `limit`
/// payload bytes.
pub fn split_frame(bytes: &[u8], limit: u32) -> Result<Option<(&[u8], usize)>, WireError> {
    if bytes.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if len > limit {
        return Err(WireError::Oversized { len: u64::from(len), limit: u64::from(limit) });
    }
    let total = 4 + len as usize;
    if bytes.len() < total {
        return Ok(None);
    }
    Ok(Some((&bytes[4..total], total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = Request {
            id: 42,
            model: "mlp".to_string(),
            mode: Mode::Noisy { seed: 0xDEAD_BEEF },
            input: vec![0.0, -0.0, 1.5, f32::NAN, f32::INFINITY],
        };
        let back = decode_request(&encode_request(&req).expect("encodes")).expect("decodes");
        assert_eq!(back.id, req.id);
        assert_eq!(back.model, req.model);
        assert_eq!(back.mode, req.mode);
        // Bit-exact comparison: NaN != NaN under PartialEq.
        let bits: Vec<u32> = req.input.iter().map(|v| v.to_bits()).collect();
        let back_bits: Vec<u32> = back.input.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, back_bits);
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Output { id: 7, values: vec![1.0, 2.0] },
            Response::Overloaded {
                id: 9,
                model: "cnn".to_string(),
                queue_depth: 64,
                queue_bound: 64,
            },
            Response::Error { id: 0, message: "unknown model `x`".to_string() },
        ] {
            assert_eq!(decode_response(&encode_response(&resp).expect("encodes")), Ok(resp));
        }
    }

    #[test]
    fn every_strict_prefix_is_a_typed_error() {
        let req = Request {
            id: 1,
            model: "m".to_string(),
            mode: Mode::Digital,
            input: vec![0.25; 3],
        };
        let payload = encode_request(&req).expect("encodes");
        for cut in 0..payload.len() {
            let err = decode_request(&payload[..cut]).expect_err("prefix must not decode");
            assert!(
                matches!(err, WireError::Truncated { .. } | WireError::BadTag { .. }),
                "cut {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_request(&Request {
            id: 1,
            model: "m".to_string(),
            mode: Mode::Digital,
            input: vec![],
        })
        .expect("encodes");
        payload.push(0xFF);
        assert_eq!(decode_request(&payload), Err(WireError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn oversized_frame_header_is_rejected() {
        let mut bytes = (MAX_FRAME_BYTES + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 16]);
        assert_eq!(
            split_frame(&bytes, MAX_FRAME_BYTES),
            Err(WireError::Oversized {
                len: u64::from(MAX_FRAME_BYTES + 1),
                limit: u64::from(MAX_FRAME_BYTES),
            })
        );
    }

    #[test]
    fn oversized_model_name_is_rejected_on_encode() {
        let req = Request {
            id: 1,
            model: "a".repeat(u16::MAX as usize + 1),
            mode: Mode::Digital,
            input: vec![],
        };
        assert_eq!(
            encode_request(&req),
            Err(WireError::Oversized {
                len: u64::from(u16::MAX) + 1,
                limit: u64::from(u16::MAX),
            })
        );
    }

    #[test]
    fn oversized_error_message_is_rejected_on_encode() {
        let resp = Response::Error { id: 2, message: "e".repeat(1 << 17) };
        assert_eq!(
            encode_response(&resp),
            Err(WireError::Oversized { len: 1 << 17, limit: u64::from(u16::MAX) })
        );
    }

    #[test]
    fn partial_frames_ask_for_more_input() {
        let framed = frame(
            &encode_response(&Response::Error { id: 3, message: "x".to_string() })
                .expect("encodes"),
        )
        .expect("frames");
        for cut in 0..framed.len() {
            assert_eq!(split_frame(&framed[..cut], MAX_FRAME_BYTES), Ok(None), "cut {cut}");
        }
        let (payload, consumed) =
            split_frame(&framed, MAX_FRAME_BYTES).expect("no error").expect("complete");
        assert_eq!(consumed, framed.len());
        assert!(decode_response(payload).is_ok());
    }
}
