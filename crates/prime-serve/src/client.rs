//! A minimal blocking client for the prime-serve wire protocol.
//!
//! One request in flight per connection: `infer`/`infer_noisy` send a
//! frame and block for the matching response. The server may still
//! batch across *connections*, so concurrent clients (one per thread)
//! exercise the collector exactly like a production open-loop load.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::error::ClientError;
use crate::wire::{
    decode_response, encode_request, frame, split_frame, Mode, Request, Response,
    MAX_FRAME_BYTES,
};

/// A blocking connection to a [`crate::Server`].
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the TCP connect fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io {
            context: "connect",
            detail: e.to_string(),
        })?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream, next_id: 1, buf: Vec::new() })
    }

    /// Connects with a timeout (useful against a server mid-startup).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the TCP connect fails or times out.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Client, ClientError> {
        let stream =
            TcpStream::connect_timeout(addr, timeout).map_err(|e| ClientError::Io {
                context: "connect",
                detail: e.to_string(),
            })?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream, next_id: 1, buf: Vec::new() })
    }

    /// Sends a digital-mode request and blocks for the response.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures as [`ClientError`]; server-side
    /// refusals arrive as `Ok(Response::Overloaded | Response::Error)`.
    pub fn infer(&mut self, model: &str, input: Vec<f32>) -> Result<Response, ClientError> {
        self.roundtrip(model, Mode::Digital, input)
    }

    /// Sends a seeded noisy-mode request and blocks for the response.
    ///
    /// # Errors
    ///
    /// As [`Client::infer`].
    pub fn infer_noisy(
        &mut self,
        model: &str,
        input: Vec<f32>,
        seed: u64,
    ) -> Result<Response, ClientError> {
        self.roundtrip(model, Mode::Noisy { seed }, input)
    }

    fn roundtrip(
        &mut self,
        model: &str,
        mode: Mode,
        input: Vec<f32>,
    ) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request { id, model: model.to_string(), mode, input };
        let bytes = frame(&encode_request(&request)?)?;
        self.stream.write_all(&bytes).map_err(|e| ClientError::Io {
            context: "send",
            detail: e.to_string(),
        })?;
        let response = self.read_response()?;
        if response.id() != id {
            return Err(ClientError::IdMismatch { expected: id, got: response.id() });
        }
        Ok(response)
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        loop {
            if let Some((payload, consumed)) = split_frame(&self.buf, MAX_FRAME_BYTES)? {
                let response = decode_response(payload)?;
                self.buf.drain(..consumed);
                return Ok(response);
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).map_err(|e| ClientError::Io {
                context: "recv",
                detail: e.to_string(),
            })?;
            if n == 0 {
                return Err(ClientError::Disconnected);
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}
