//! Open-loop load driver for `prime-serve`.
//!
//! Drives each model of the standard registry at a *target request
//! rate*: request `i` is scheduled at `start + i/rate` regardless of
//! how earlier requests fared, and latency is measured from the
//! **scheduled** send time — so a stalled server shows up as growing
//! tail latency instead of silently throttling the load
//! (coordinated-omission-safe). Requests round-robin over a small pool
//! of blocking connections; a slow response delays only later requests
//! on the *same* connection, and that delay is charged to them.
//!
//! By default the bencher self-hosts a loopback server (the standard
//! MLP-M-class + CNN-1-class registry on `127.0.0.1:0`), drives it,
//! shuts it down gracefully, and writes `BENCH_serve.json` — an object
//! with the same `meta` block shape as `BENCH_throughput.json`
//! (`host_cpu_cores` + `note`) and one section per model carrying
//! p50/p95/p99 latency and achieved throughput. The device-runner
//! `single_request_ns_p50` row in `BENCH_throughput.json` is the
//! in-process reference: served p50 minus it is wire + batching cost.
//!
//! ```text
//! prime-bencher [--smoke] [--baseline BENCH_baseline.json]
//!               [--addr host:port] [--rate R] [--duration SECS]
//!               [--connections C]
//! ```
//!
//! `--smoke` (CI) runs ~2 s per model at low rate, skips the JSON, and
//! with `--baseline` gates on the `serve` section of
//! `BENCH_baseline.json`: completion rate at least
//! `min_completion_rate` and shed rate at most `max_shed_rate`.
//! Absolute latency is *not* gated — the CI container is single-core,
//! so server and clients share one CPU and tails are scheduler noise.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use prime_device::NoiseModel;
use prime_serve::workloads::{sample_input, standard_registry, CNN_1, CNN_1_WIDTH, MLP_M, MLP_M_WIDTH};
use prime_serve::{BatchConfig, Client, Response, Server};
use serde::{Deserialize, Serialize};

/// Run-level metadata, schema-compatible with `BENCH_throughput.json`.
#[derive(Serialize)]
struct Meta {
    host_cpu_cores: Option<usize>,
    note: String,
}

/// Latency percentiles over successful responses, nanoseconds.
#[derive(Serialize)]
struct LatencyNs {
    p50: f64,
    p95: f64,
    p99: f64,
    max: f64,
}

/// One model driven at one target rate.
#[derive(Serialize)]
struct Section {
    model: String,
    target_rate_per_s: f64,
    duration_s: f64,
    connections: usize,
    requests_sent: usize,
    ok: usize,
    shed: usize,
    errors: usize,
    /// `ok / requests_sent`.
    completion_rate: f64,
    /// `shed / requests_sent`.
    shed_rate: f64,
    /// Successful responses per second of wall clock.
    achieved_rate_per_s: f64,
    latency_ns: LatencyNs,
}

#[derive(Serialize)]
struct Report {
    meta: Meta,
    sections: Vec<Section>,
}

/// The `serve` section of the pinned `BENCH_baseline.json`.
#[derive(Deserialize)]
struct ServeBaseline {
    /// Highest tolerated `shed_rate` in any section.
    max_shed_rate: f64,
    /// Lowest tolerated `completion_rate` in any section.
    min_completion_rate: f64,
}

/// `BENCH_baseline.json` seen through the bencher's eyes: only the
/// `serve` key matters here (the vendored serde ignores the rest).
#[derive(Deserialize)]
struct BaselineFile {
    serve: ServeBaseline,
}

/// What to drive: model name, input width, rate, duration.
struct Plan {
    model: &'static str,
    width: usize,
    rate_per_s: f64,
    duration_s: f64,
}

enum Outcome {
    Ok(f64),
    Shed,
    Error,
}

fn arg_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == flag)
        .map(|i| argv.get(i + 1).unwrap_or_else(|| panic!("{flag} takes a value")).clone())
}

fn parsed_arg<T: std::str::FromStr>(argv: &[String], flag: &str) -> Option<T>
where
    T::Err: std::fmt::Display,
{
    arg_value(argv, flag).map(|text| {
        text.parse().unwrap_or_else(|e| panic!("{flag} {text} does not parse: {e}"))
    })
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Drives one model open-loop and reduces the outcomes to a section.
///
/// A worker that cannot even *connect* fails the whole bench with a
/// typed error rather than panicking inside the thread: a dead server
/// is a setup problem, and its report would be meaningless.
fn drive(addr: SocketAddr, plan: &Plan, connections: usize) -> Result<Section, String> {
    let total = (plan.rate_per_s * plan.duration_s).ceil() as usize;
    let interval = Duration::from_secs_f64(1.0 / plan.rate_per_s);
    let start = Instant::now();
    let per_thread: Vec<Result<Vec<Outcome>, String>> = std::thread::scope(|scope| {
        (0..connections)
            .map(|tid| {
                scope.spawn(move || -> Result<Vec<Outcome>, String> {
                    let mut client = Client::connect_timeout(&addr, Duration::from_secs(5))
                        .map_err(|e| {
                            format!(
                                "bencher cannot connect to {addr} for model {}: {e}",
                                plan.model
                            )
                        })?;
                    let mut outcomes = Vec::new();
                    let mut i = tid;
                    while i < total {
                        let scheduled = start + interval.mul_f64(i as f64);
                        if let Some(wait) = scheduled.checked_duration_since(Instant::now())
                        {
                            std::thread::sleep(wait);
                        }
                        let outcome = match client
                            .infer(plan.model, sample_input(plan.width, i))
                        {
                            Ok(Response::Output { .. }) => {
                                // Open-loop latency: completion minus the
                                // *scheduled* send time.
                                Outcome::Ok(
                                    scheduled.elapsed().as_secs_f64() * 1e9,
                                )
                            }
                            Ok(Response::Overloaded { .. }) => Outcome::Shed,
                            Ok(Response::Error { .. }) | Err(_) => Outcome::Error,
                        };
                        outcomes.push(outcome);
                        i += connections;
                    }
                    Ok(outcomes)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| {
                t.join()
                    .unwrap_or_else(|_| Err("bencher thread panicked".to_string()))
            })
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();

    let mut latencies = Vec::new();
    let (mut ok, mut shed, mut errors) = (0usize, 0usize, 0usize);
    for result in per_thread {
        for outcome in result? {
            match outcome {
                Outcome::Ok(ns) => {
                    ok += 1;
                    latencies.push(ns);
                }
                Outcome::Shed => shed += 1,
                Outcome::Error => errors += 1,
            }
        }
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    Ok(Section {
        model: plan.model.to_string(),
        target_rate_per_s: plan.rate_per_s,
        duration_s: plan.duration_s,
        connections,
        requests_sent: total,
        ok,
        shed,
        errors,
        completion_rate: ok as f64 / total.max(1) as f64,
        shed_rate: shed as f64 / total.max(1) as f64,
        achieved_rate_per_s: ok as f64 / wall_s,
        latency_ns: LatencyNs {
            p50: percentile(&latencies, 50.0),
            p95: percentile(&latencies, 95.0),
            p99: percentile(&latencies, 99.0),
            max: latencies.last().copied().unwrap_or(0.0),
        },
    })
}

/// Holds every section to the pinned `serve` baseline; exits nonzero on
/// violation so the CI smoke step fails.
fn check_baseline(sections: &[Section], path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("baseline {path} unreadable: {e}"));
    let baseline: BaselineFile = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("baseline {path} does not parse: {e}"));
    let serve = baseline.serve;
    let mut failed = false;
    for s in sections {
        if s.completion_rate < serve.min_completion_rate {
            eprintln!(
                "BASELINE REGRESSION: {} completion rate {:.3} below {:.3} \
                 ({} ok / {} sent, {} errors)",
                s.model, s.completion_rate, serve.min_completion_rate, s.ok,
                s.requests_sent, s.errors
            );
            failed = true;
        }
        if s.shed_rate > serve.max_shed_rate {
            eprintln!(
                "BASELINE REGRESSION: {} shed rate {:.3} above {:.3} ({} shed)",
                s.model, s.shed_rate, serve.max_shed_rate, s.shed
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "baseline check: completion >= {:.2} and shed <= {:.2} on every section — ok",
        serve.min_completion_rate, serve.max_shed_rate
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let baseline_path = arg_value(&argv, "--baseline");
    let external_addr: Option<SocketAddr> = parsed_arg(&argv, "--addr");
    let connections = parsed_arg(&argv, "--connections").unwrap_or(if smoke { 2 } else { 4 });

    // Rates sit well under the engines' measured capacity (~415/s
    // MLP-M-class, ~8500/s CNN-1-class in BENCH_throughput.json), so a
    // healthy server completes everything without shedding.
    let mut plans = if smoke {
        vec![
            Plan { model: MLP_M, width: MLP_M_WIDTH, rate_per_s: 15.0, duration_s: 2.0 },
            Plan { model: CNN_1, width: CNN_1_WIDTH, rate_per_s: 40.0, duration_s: 2.0 },
        ]
    } else {
        vec![
            Plan { model: MLP_M, width: MLP_M_WIDTH, rate_per_s: 40.0, duration_s: 6.0 },
            Plan { model: CNN_1, width: CNN_1_WIDTH, rate_per_s: 200.0, duration_s: 6.0 },
        ]
    };
    if let Some(rate) = parsed_arg::<f64>(&argv, "--rate") {
        for plan in &mut plans {
            plan.rate_per_s = rate;
        }
    }
    if let Some(duration) = parsed_arg::<f64>(&argv, "--duration") {
        for plan in &mut plans {
            plan.duration_s = duration;
        }
    }

    // Self-host a loopback server unless --addr points elsewhere.
    let hosted = match external_addr {
        Some(_) => None,
        None => {
            println!("deploying loopback registry ({MLP_M}, {CNN_1})...");
            let registry =
                standard_registry(BatchConfig::default_online(), NoiseModel::default())
                    .unwrap_or_else(|e| panic!("registry failed to deploy: {e}"));
            let server = Server::bind("127.0.0.1:0", registry)
                .unwrap_or_else(|e| panic!("cannot bind loopback: {e}"));
            let addr = server.local_addr().expect("bound socket has an address");
            let stop = server.shutdown_handle().expect("bound socket has an address");
            let runner = std::thread::spawn(move || server.run());
            Some((addr, stop, runner))
        }
    };
    let addr = match (&hosted, external_addr) {
        (_, Some(addr)) => addr,
        (Some((addr, _, _)), None) => *addr,
        (None, None) => unreachable!("either hosted or external"),
    };
    println!("driving {addr} with {connections} connections per model\n");

    let mut sections = Vec::new();
    println!(
        "{:<14} {:>8} {:>6} {:>6} {:>5} {:>5} {:>12} {:>12} {:>12} {:>12}",
        "model", "target/s", "sent", "ok", "shed", "err", "achieved/s", "p50 ms", "p95 ms",
        "p99 ms"
    );
    for plan in &plans {
        let section = match drive(addr, plan, connections) {
            Ok(section) => section,
            Err(e) => {
                eprintln!("bench failed: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "{:<14} {:>8.0} {:>6} {:>6} {:>5} {:>5} {:>12.1} {:>12.3} {:>12.3} {:>12.3}",
            section.model,
            section.target_rate_per_s,
            section.requests_sent,
            section.ok,
            section.shed,
            section.errors,
            section.achieved_rate_per_s,
            section.latency_ns.p50 / 1e6,
            section.latency_ns.p95 / 1e6,
            section.latency_ns.p99 / 1e6
        );
        sections.push(section);
    }

    if let Some((_, stop, runner)) = hosted {
        stop.shutdown();
        match runner.join().expect("server thread panicked") {
            Ok(stats) => {
                println!("\nserver drained cleanly: {} connections", stats.connections);
                for m in &stats.models {
                    println!(
                        "  {}: served {}, shed {}, failed {}, {} device batches",
                        m.model, m.served, m.shed, m.failed, m.batches
                    );
                }
            }
            Err(e) => {
                eprintln!("server failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &baseline_path {
        check_baseline(&sections, path);
    }
    if smoke {
        println!("\nsmoke mode: skipping BENCH_serve.json");
        return;
    }
    let report = Report {
        meta: Meta {
            host_cpu_cores: std::thread::available_parallelism().ok().map(|n| n.get()),
            note: "open-loop: latency is measured from each request's scheduled send \
                   time, so server stalls surface as tail latency; on a 1-core host \
                   the server and the load threads share the core, so tails include \
                   scheduler noise. Compare p50 against device_runner.single_request_ns_p50 \
                   in BENCH_throughput.json for the wire+batching overhead."
                .to_string(),
        },
        sections,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\n[wrote BENCH_serve.json]");
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentile_of_empty_is_zero() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[], 99.0), 0.0);
    }

    #[test]
    fn percentile_of_one_sample_is_that_sample() {
        for q in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(percentile(&[7.5], q), 7.5, "q={q}");
        }
    }

    #[test]
    fn percentile_of_two_samples() {
        let two = [1.0, 2.0];
        // Nearest rank: ceil(0.5 * 2) = 1 -> first element.
        assert_eq!(percentile(&two, 50.0), 1.0);
        assert_eq!(percentile(&two, 95.0), 2.0);
        assert_eq!(percentile(&two, 99.0), 2.0);
    }

    #[test]
    fn percentile_of_three_samples_takes_the_median_at_p50() {
        let three = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&three, 50.0), 2.0);
        assert_eq!(percentile(&three, 95.0), 3.0);
        assert_eq!(percentile(&three, 99.0), 3.0);
    }

    #[test]
    fn exact_rank_boundaries_do_not_overshoot() {
        // 100 samples: p50's rank is exactly 50 (index 49), p95's is 95,
        // p99's is 99 — the ceil must not round an exact product up.
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&samples, 50.0), 50.0);
        assert_eq!(percentile(&samples, 95.0), 95.0);
        assert_eq!(percentile(&samples, 99.0), 99.0);
        assert_eq!(percentile(&samples, 100.0), 100.0);
        // q=0 saturates to the smallest sample instead of underflowing.
        assert_eq!(percentile(&samples, 0.0), 1.0);
    }
}
