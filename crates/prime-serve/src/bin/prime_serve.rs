//! Standalone PRIME inference server.
//!
//! Deploys the standard MLP-M-class and CNN-1-class registry and serves
//! the length-prefixed binary protocol until SIGINT kills the process
//! (the library's graceful drain is exercised in-process by the
//! `prime-bencher` bin and the loopback integration test; a bare
//! foreground server has nothing to drain into).
//!
//! ```text
//! prime-serve [--addr 127.0.0.1:7741] [--max-batch 8] [--max-delay-us 1000]
//!             [--queue-bound 256]
//! ```

use std::time::Duration;

use prime_device::NoiseModel;
use prime_serve::workloads::standard_registry;
use prime_serve::{BatchConfig, Server};

fn arg_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == flag)
        .map(|i| argv.get(i + 1).unwrap_or_else(|| panic!("{flag} takes a value")).clone())
}

fn parsed<T: std::str::FromStr>(argv: &[String], flag: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match arg_value(argv, flag) {
        Some(text) => text
            .parse()
            .unwrap_or_else(|e| panic!("{flag} {text} does not parse: {e}")),
        None => default,
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let addr = arg_value(&argv, "--addr").unwrap_or_else(|| "127.0.0.1:7741".to_string());
    let config = BatchConfig {
        max_batch: parsed(&argv, "--max-batch", 8usize),
        max_delay: Duration::from_micros(parsed(&argv, "--max-delay-us", 1000u64)),
        queue_bound: parsed(&argv, "--queue-bound", 256usize),
    };

    println!(
        "deploying standard registry (batch window: {} reqs / {} us, queue bound {})...",
        config.max_batch,
        config.max_delay.as_micros(),
        config.queue_bound
    );
    let registry = standard_registry(config, NoiseModel::default())
        .unwrap_or_else(|e| panic!("registry failed to deploy: {e}"));
    for entry in registry.registration_log() {
        println!("{entry}");
    }
    println!("models: {}", registry.model_names().join(", "));

    let server = Server::bind(addr.as_str(), registry)
        .unwrap_or_else(|e| panic!("cannot bind {addr}: {e}"));
    let local = server.local_addr().expect("bound socket has an address");
    println!("serving on {local}");
    match server.run() {
        Ok(stats) => println!("server stopped: {stats:?}"),
        Err(e) => {
            eprintln!("server failed: {e}");
            std::process::exit(1);
        }
    }
}
