//! Typed errors for the serving stack. Library code in this crate never
//! panics (prime-lint P051): every failure surfaces as one of these.

use std::fmt;

use prime_analyze::Diagnostic;
use prime_core::PrimeError;

use crate::wire::WireError;

/// Server-side failure: registration, binding, or transport.
#[derive(Debug)]
pub enum ServeError {
    /// A socket operation failed.
    Io {
        /// What was being attempted (`"bind"`, `"accept"`, ...).
        context: &'static str,
        /// The OS error text.
        detail: String,
    },
    /// A frame or payload was malformed.
    Wire(WireError),
    /// A model was registered whose deployment the static verifier
    /// rejected. `diagnostics` leads with the serving-layer P031
    /// summary followed by the deploy refusal's own findings.
    NotServable {
        /// The model that cannot be served.
        model: String,
        /// P031 plus the deploy rejection's diagnostics.
        diagnostics: Vec<Diagnostic>,
    },
    /// A model's deployment failed for a non-verifier reason.
    Deploy {
        /// The model being deployed.
        model: String,
        /// The underlying deploy error.
        error: PrimeError,
    },
    /// Two models were registered under one name.
    DuplicateModel {
        /// The colliding name.
        model: String,
    },
    /// A server was started with an empty registry.
    NoModels,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { context, detail } => write!(f, "{context} failed: {detail}"),
            ServeError::Wire(e) => write!(f, "wire protocol error: {e}"),
            ServeError::NotServable { model, diagnostics } => {
                write!(f, "model `{model}` is not servable:")?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            ServeError::Deploy { model, error } => {
                write!(f, "deploying model `{model}` failed: {error}")
            }
            ServeError::DuplicateModel { model } => {
                write!(f, "model `{model}` is already registered")
            }
            ServeError::NoModels => f.write_str("the registry has no models to serve"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

/// Client-side failure: transport, protocol, or correlation.
#[derive(Debug)]
pub enum ClientError {
    /// A socket operation failed.
    Io {
        /// What was being attempted (`"connect"`, `"send"`, `"recv"`).
        context: &'static str,
        /// The OS error text.
        detail: String,
    },
    /// A response frame was malformed.
    Wire(WireError),
    /// The server closed the connection mid-exchange.
    Disconnected,
    /// A response arrived for a different request id than the one in
    /// flight (protocol violation for the synchronous client).
    IdMismatch {
        /// The id the client sent.
        expected: u64,
        /// The id the response carried.
        got: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io { context, detail } => write!(f, "{context} failed: {detail}"),
            ClientError::Wire(e) => write!(f, "wire protocol error: {e}"),
            ClientError::Disconnected => f.write_str("server closed the connection"),
            ClientError::IdMismatch { expected, got } => {
                write!(f, "response id {got} does not match request id {expected}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}
