//! Online serving for PRIME: a TCP front end over deployed
//! [`prime_core::PrimeSystem`]s.
//!
//! The paper evaluates PRIME on throughput-oriented batches; this crate
//! adds the *online* counterpart — a server that fields inference
//! requests over a socket, coalesces them into device batches, and
//! sheds load when a model's queue fills. Everything is `std`-only
//! (`std::net` + scoped threads, no async runtime), matching the
//! repo's offline-container constraint.
//!
//! * [`wire`] — the length-prefixed binary protocol: `u32` little-endian
//!   frame length, then a tagged payload. Decoding is total: any
//!   truncated, oversized, or garbage frame yields a typed
//!   [`WireError`], never a panic.
//! * [`batcher`] — the time/size-windowed [`BatchCollector`] with an
//!   *injected clock* (`now: Duration` parameters), so window logic is
//!   unit-testable without wall-clock sleeps.
//! * [`server`] — [`Registry`] (deploy-at-registration; rejected models
//!   surface P031 and are never advertised), [`Server`] (accept loop +
//!   per-connection readers + per-model dispatchers, all scoped), and
//!   [`ShutdownHandle`] (graceful drain).
//! * [`client`] — a minimal blocking [`Client`] for tests and the
//!   `prime-bencher` load driver.
//! * [`workloads`] — the standard MLP-M-class / CNN-1-class registry
//!   shared by the bins, matching `bench_throughput`'s geometry.
//!
//! Served outputs are bit-identical to direct [`prime_core::PrimeSystem`]
//! calls: digital requests may share an `infer_batch` call (replicated
//! bank copies hold byte-identical weights), while seeded-noisy
//! requests always run alone so the per-bank RNG draw order matches a
//! direct `infer_batch_noisy` call.
//!
//! # Examples
//!
//! ```no_run
//! use prime_serve::{BatchConfig, Client, Response, Server};
//! use prime_serve::workloads::{sample_input, standard_registry, CNN_1, CNN_1_WIDTH};
//! use prime_device::NoiseModel;
//!
//! let registry = standard_registry(BatchConfig::default_online(), NoiseModel::default())?;
//! let server = Server::bind("127.0.0.1:0", registry)?;
//! let addr = server.local_addr()?;
//! let stop = server.shutdown_handle()?;
//! std::thread::spawn(move || server.run());
//! let mut client = Client::connect(addr)?;
//! match client.infer(CNN_1, sample_input(CNN_1_WIDTH, 0))? {
//!     Response::Output { values, .. } => println!("{values:?}"),
//!     other => println!("refused: {other:?}"),
//! }
//! stop.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod client;
pub mod error;
pub mod server;
pub mod wire;
pub mod workloads;

pub use batcher::{Admission, BatchCollector, BatchConfig};
pub use client::Client;
pub use error::{ClientError, ServeError};
pub use server::{ModelStats, Registry, ServeStats, Server, ShutdownHandle};
pub use wire::{Mode, Request, Response, WireError, MAX_FRAME_BYTES};
