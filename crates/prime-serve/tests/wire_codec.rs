//! Property-based coverage of the prime-serve wire codec.
//!
//! Four contracts, each over arbitrary generated values:
//!
//! 1. **Lossless round trip** — every request/response encodes and
//!    decodes back to an equal value, with `f32`s compared as IEEE bit
//!    patterns (NaN payloads, infinities, and negative zero included).
//! 2. **Canonical encoding** — whenever arbitrary bytes happen to
//!    decode, re-encoding reproduces the original bytes exactly (every
//!    message has one wire form).
//! 3. **Totality** — truncated, garbage, and oversized inputs return
//!    typed [`WireError`]s; no input panics the decoder.
//! 4. **No silent truncation** — a value whose length outgrows its wire
//!    header field is rejected as [`WireError::Oversized`] at *encode*
//!    time; the codec never clamps a length and ships different data.

use proptest::prelude::*;

use prime_serve::wire::{
    decode_request, decode_response, encode_request, encode_response, frame, split_frame,
    Mode, Request, Response, WireError, MAX_FRAME_BYTES,
};

/// Bit patterns of an `f32` slice: the NaN-safe equality domain.
fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Arbitrary model/message strings. The vendored proptest has no string
/// strategy, so bytes are mapped through `char::from` (Latin-1), which
/// also exercises multi-byte UTF-8 encodings past 0x7F.
fn any_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..24)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

/// Arbitrary `f32` vectors drawn from raw bit patterns, covering NaNs,
/// infinities, subnormals, and both zeros.
fn any_f32_vec() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(any::<u32>(), 0..48)
        .prop_map(|words| words.into_iter().map(f32::from_bits).collect())
}

fn any_mode() -> impl Strategy<Value = Mode> {
    (any::<bool>(), any::<u64>()).prop_map(|(noisy, seed)| {
        if noisy {
            Mode::Noisy { seed }
        } else {
            Mode::Digital
        }
    })
}

fn any_request() -> impl Strategy<Value = Request> {
    (any::<u64>(), any_string(), any_mode(), any_f32_vec())
        .prop_map(|(id, model, mode, input)| Request { id, model, mode, input })
}

fn any_response() -> impl Strategy<Value = Response> {
    (0u8..3, any::<u64>(), any_string(), any_f32_vec(), any::<u32>(), any::<u32>()).prop_map(
        |(kind, id, text, values, depth, bound)| match kind {
            0 => Response::Output { id, values },
            1 => Response::Overloaded {
                id,
                model: text,
                queue_depth: depth,
                queue_bound: bound,
            },
            _ => Response::Error { id, message: text },
        },
    )
}

proptest! {
    /// Requests survive encode -> decode bit-exactly.
    #[test]
    fn requests_round_trip_losslessly(req in any_request()) {
        let payload = encode_request(&req).expect("in-range request encodes");
        let back = decode_request(&payload).expect("own encoding decodes");
        prop_assert_eq!(back.id, req.id);
        prop_assert_eq!(&back.model, &req.model);
        prop_assert_eq!(back.mode, req.mode);
        prop_assert_eq!(bits(&back.input), bits(&req.input));
    }

    /// Responses survive encode -> decode bit-exactly.
    #[test]
    fn responses_round_trip_losslessly(resp in any_response()) {
        let payload = encode_response(&resp).expect("in-range response encodes");
        let back = decode_response(&payload).expect("own encoding decodes");
        match (&back, &resp) {
            (Response::Output { id: a, values: va }, Response::Output { id: b, values: vb }) => {
                prop_assert_eq!(a, b);
                prop_assert_eq!(bits(va), bits(vb));
            }
            _ => prop_assert_eq!(&back, &resp),
        }
    }

    /// Framing is transparent: one whole frame splits back to the exact
    /// payload, and every strict prefix asks for more input.
    #[test]
    fn framing_round_trips_and_prefixes_are_partial(req in any_request()) {
        let payload = encode_request(&req).expect("in-range request encodes");
        let framed = frame(&payload).expect("in-range payload frames");
        let (split, consumed) = split_frame(&framed, MAX_FRAME_BYTES)
            .expect("within limit")
            .expect("complete frame");
        prop_assert_eq!(split, &payload[..]);
        prop_assert_eq!(consumed, framed.len());
        for cut in 0..framed.len() {
            prop_assert_eq!(split_frame(&framed[..cut], MAX_FRAME_BYTES), Ok(None));
        }
    }

    /// Every strict prefix of a valid payload is a typed decode error —
    /// never a panic, never a bogus success.
    #[test]
    fn truncated_payloads_are_typed_errors(req in any_request()) {
        let payload = encode_request(&req).expect("in-range request encodes");
        for cut in 0..payload.len() {
            match decode_request(&payload[..cut]) {
                Err(
                    WireError::Truncated { .. }
                    | WireError::BadTag { .. }
                    | WireError::BadUtf8,
                ) => {}
                other => prop_assert!(false, "cut {}: unexpected {:?}", cut, other),
            }
        }
    }

    /// Arbitrary bytes never panic either decoder, and anything that
    /// does decode re-encodes to the identical bytes (the wire form is
    /// canonical).
    #[test]
    fn garbage_never_panics_and_successes_are_canonical(
        bytes in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        if let Ok(req) = decode_request(&bytes) {
            prop_assert_eq!(encode_request(&req), Ok(bytes.clone()));
        }
        if let Ok(resp) = decode_response(&bytes) {
            prop_assert_eq!(encode_response(&resp), Ok(bytes.clone()));
        }
    }

    /// Headers announcing more than the limit are rejected as
    /// `Oversized` no matter what follows them.
    #[test]
    fn oversized_headers_are_rejected(
        (excess, tail) in (1u32..1024, proptest::collection::vec(any::<u8>(), 0..32)),
    ) {
        let len = MAX_FRAME_BYTES + excess;
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&tail);
        prop_assert_eq!(
            split_frame(&bytes, MAX_FRAME_BYTES),
            Err(WireError::Oversized {
                len: u64::from(len),
                limit: u64::from(MAX_FRAME_BYTES),
            })
        );
    }

    /// A model name longer than its `u16` length header is rejected at
    /// encode time — with the exact overflowing length reported — not
    /// silently truncated into a *different* (decodable!) request.
    #[test]
    fn over_length_strings_are_rejected_on_encode(excess in 1usize..512) {
        let len = u16::MAX as usize + excess;
        let req = Request {
            id: 9,
            model: "m".repeat(len),
            mode: Mode::Digital,
            input: vec![],
        };
        prop_assert_eq!(
            encode_request(&req),
            Err(WireError::Oversized {
                len: len as u64,
                limit: u64::from(u16::MAX),
            })
        );
        let resp = Response::Error { id: 9, message: "e".repeat(len) };
        prop_assert_eq!(
            encode_response(&resp),
            Err(WireError::Oversized {
                len: len as u64,
                limit: u64::from(u16::MAX),
            })
        );
        // One byte under the header limit still encodes and round-trips:
        // the rejection boundary is exact.
        let ok = Request {
            id: 9,
            model: "m".repeat(u16::MAX as usize),
            mode: Mode::Digital,
            input: vec![],
        };
        let payload = encode_request(&ok).expect("limit-sized name encodes");
        prop_assert_eq!(decode_request(&payload).expect("decodes").model.len(), u16::MAX as usize);
    }

    /// An `Overloaded` response with an over-length model name is also
    /// rejected on encode (the field rides a different message shape).
    #[test]
    fn over_length_overloaded_model_is_rejected_on_encode(excess in 1usize..256) {
        let len = u16::MAX as usize + excess;
        let resp = Response::Overloaded {
            id: 3,
            model: "x".repeat(len),
            queue_depth: 1,
            queue_bound: 1,
        };
        prop_assert_eq!(
            encode_response(&resp),
            Err(WireError::Oversized {
                len: len as u64,
                limit: u64::from(u16::MAX),
            })
        );
    }
}
