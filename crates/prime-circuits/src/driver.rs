//! Wordline decoder and driver (paper Fig. 4 A).
//!
//! In memory mode the driver supplies the two fixed read/write voltage
//! levels. In computation mode PRIME attaches multi-level voltage sources
//! (`2^Pin` levels) to every wordline, a latch so all inputs are driven
//! simultaneously, a per-wordline current amplifier to drive the analog
//! signal, and a multiplexer that switches the voltage source between the
//! two modes. Two crossbar arrays (positive and negative weights) share
//! the same driven input port.

use serde::{Deserialize, Serialize};

use prime_device::READ_VOLTAGE_V;

use crate::error::CircuitError;

/// Operating mode selected by the driver's voltage-source multiplexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DriverMode {
    /// Conventional memory operation: two voltage levels (read and write).
    Memory,
    /// NN computation: `2^Pin` input voltage levels driven simultaneously.
    Computation,
}

/// The multi-level voltage wordline driver with its input latch.
///
/// # Examples
///
/// ```
/// use prime_circuits::{DriverMode, WordlineDriver};
///
/// let mut driver = WordlineDriver::new(4, 3); // 4 wordlines, 3-bit DAC
/// driver.set_mode(DriverMode::Computation);
/// driver.latch(&[0, 3, 7, 1])?;
/// assert_eq!(driver.driven_codes(), &[0, 3, 7, 1]);
/// # Ok::<(), prime_circuits::CircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WordlineDriver {
    wordlines: usize,
    input_bits: u8,
    mode: DriverMode,
    latch: Vec<u16>,
    /// Wordlines driven by the last latch; everything past this index is
    /// grounded (code 0). Full-width latches drive all wordlines.
    active: usize,
}

impl WordlineDriver {
    /// Creates a driver for `wordlines` rows with a `input_bits`-bit DAC
    /// (PRIME assumes 3-bit, i.e. 8 voltage levels). Starts in memory mode
    /// with a cleared latch.
    ///
    /// # Panics
    ///
    /// Panics if `wordlines` is zero or `input_bits` is 0 or above 8.
    pub fn new(wordlines: usize, input_bits: u8) -> Self {
        assert!(wordlines > 0, "driver must serve at least one wordline");
        assert!((1..=8).contains(&input_bits), "input DAC must be 1-8 bits");
        WordlineDriver {
            wordlines,
            input_bits,
            mode: DriverMode::Memory,
            latch: vec![0; wordlines],
            active: 0,
        }
    }

    /// Number of wordlines served.
    pub fn wordlines(&self) -> usize {
        self.wordlines
    }

    /// DAC resolution in bits.
    pub fn input_bits(&self) -> u8 {
        self.input_bits
    }

    /// Number of distinct drive voltages in computation mode.
    pub fn voltage_levels(&self) -> u16 {
        1 << self.input_bits
    }

    /// Current operating mode.
    pub fn mode(&self) -> DriverMode {
        self.mode
    }

    /// Switches the voltage-source multiplexer between modes. The latch is
    /// cleared on every switch, matching the reconfiguration step.
    pub fn set_mode(&mut self, mode: DriverMode) {
        self.mode = mode;
        self.latch.fill(0);
        self.active = 0;
    }

    /// Loads a full input vector into the latch so that all wordlines are
    /// driven simultaneously (NN computation requires concurrent inputs).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::LatchLengthMismatch`] for a wrong-length
    /// vector or [`CircuitError::CodeOutOfRange`] if any code exceeds the
    /// DAC resolution. The latch is unchanged on error.
    pub fn latch(&mut self, codes: &[u16]) -> Result<(), CircuitError> {
        if codes.len() != self.wordlines {
            return Err(CircuitError::LatchLengthMismatch {
                got: codes.len(),
                expected: self.wordlines,
            });
        }
        let max = u32::from(self.voltage_levels()) - 1;
        for &c in codes {
            if u32::from(c) > max {
                return Err(CircuitError::CodeOutOfRange {
                    code: u32::from(c),
                    codes: max + 1,
                });
            }
        }
        self.latch.copy_from_slice(codes);
        self.active = self.wordlines;
        Ok(())
    }

    /// Latches `codes` onto the first `codes.len()` wordlines and grounds
    /// the rest (code 0): a mat programmed on a row prefix only fetches
    /// that prefix from the buffer, and undriven wordlines contribute
    /// nothing to any bitline. Wordlines a previous latch drove past the
    /// new prefix are re-grounded, so steady-state repeated prefix
    /// latches of the same width touch only the prefix.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::LatchLengthMismatch`] if `codes` exceeds
    /// the wordline count, or [`CircuitError::CodeOutOfRange`] if any
    /// code exceeds the DAC resolution. The latch is unchanged on error.
    pub fn latch_prefix(&mut self, codes: &[u16]) -> Result<(), CircuitError> {
        if codes.len() > self.wordlines {
            return Err(CircuitError::LatchLengthMismatch {
                got: codes.len(),
                expected: self.wordlines,
            });
        }
        let max = u32::from(self.voltage_levels()) - 1;
        for &c in codes {
            if u32::from(c) > max {
                return Err(CircuitError::CodeOutOfRange {
                    code: u32::from(c),
                    codes: max + 1,
                });
            }
        }
        if self.active > codes.len() {
            self.latch[codes.len()..self.active].fill(0);
        }
        self.latch[..codes.len()].copy_from_slice(codes);
        self.active = codes.len();
        Ok(())
    }

    /// The codes currently latched onto the wordlines.
    pub fn driven_codes(&self) -> &[u16] {
        &self.latch
    }

    /// The analog voltage driven for a digital `code` in computation mode.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::CodeOutOfRange`] if the code exceeds the DAC
    /// resolution.
    pub fn voltage_for(&self, code: u16) -> Result<f64, CircuitError> {
        let max = u32::from(self.voltage_levels()) - 1;
        if u32::from(code) > max {
            return Err(CircuitError::CodeOutOfRange { code: u32::from(code), codes: max + 1 });
        }
        Ok(READ_VOLTAGE_V * f64::from(code) / f64::from(max as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_in_memory_mode_cleared() {
        let d = WordlineDriver::new(8, 3);
        assert_eq!(d.mode(), DriverMode::Memory);
        assert!(d.driven_codes().iter().all(|&c| c == 0));
        assert_eq!(d.voltage_levels(), 8);
    }

    #[test]
    fn latch_round_trips_valid_codes() {
        let mut d = WordlineDriver::new(3, 3);
        d.latch(&[7, 0, 4]).unwrap();
        assert_eq!(d.driven_codes(), &[7, 0, 4]);
    }

    #[test]
    fn latch_rejects_wrong_length_and_over_range() {
        let mut d = WordlineDriver::new(3, 3);
        assert!(matches!(d.latch(&[1, 2]), Err(CircuitError::LatchLengthMismatch { .. })));
        assert!(matches!(d.latch(&[1, 2, 8]), Err(CircuitError::CodeOutOfRange { code: 8, .. })));
        assert_eq!(d.driven_codes(), &[0, 0, 0]);
    }

    #[test]
    fn mode_switch_clears_latch() {
        let mut d = WordlineDriver::new(2, 3);
        d.latch(&[5, 5]).unwrap();
        d.set_mode(DriverMode::Computation);
        assert_eq!(d.driven_codes(), &[0, 0]);
    }

    #[test]
    fn voltages_scale_linearly_with_code() {
        let d = WordlineDriver::new(1, 3);
        assert_eq!(d.voltage_for(0).unwrap(), 0.0);
        let v7 = d.voltage_for(7).unwrap();
        let v1 = d.voltage_for(1).unwrap();
        assert!((v7 - 7.0 * v1).abs() < 1e-12);
        assert!(d.voltage_for(8).is_err());
    }
}
