//! Analog activation circuitry: the sigmoid unit in the column multiplexer
//! (paper Fig. 4 B) and the ReLU unit next to the SA (paper Fig. 4 C).
//!
//! Both units can be bypassed — the sigmoid when a large NN is split
//! across multiple crossbars (the non-linearity must only be applied after
//! the split partial sums are merged), and the ReLU when a layer has no
//! rectification.

use serde::{Deserialize, Serialize};

/// The analog sigmoid unit \[63\].
///
/// Digitally, the unit maps a signed accumulation to an unsigned
/// `out_bits`-bit code approximating `(2^out_bits - 1) * sigmoid(x / scale)`.
/// `scale` sets the input range mapped onto the sigmoid's linear region;
/// a piecewise-linear circuit implements it in silicon, which the model
/// reflects by quantizing to the output code grid.
///
/// # Examples
///
/// ```
/// use prime_circuits::SigmoidUnit;
///
/// let unit = SigmoidUnit::new(6, 64.0);
/// assert_eq!(unit.apply(0), 32);        // sigmoid(0) = 0.5 -> mid-code
/// assert!(unit.apply(1_000) >= 62);     // saturates high
/// assert!(unit.apply(-1_000) <= 1);     // saturates low
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SigmoidUnit {
    out_bits: u8,
    scale: f64,
    bypass: bool,
}

impl SigmoidUnit {
    /// Creates a sigmoid unit producing `out_bits`-bit codes with input
    /// scaling `scale` (the accumulation value mapped to sigmoid argument
    /// 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `out_bits` is 0 or above 8, or `scale` is not positive.
    pub fn new(out_bits: u8, scale: f64) -> Self {
        assert!((1..=8).contains(&out_bits), "sigmoid output must be 1-8 bits");
        assert!(scale > 0.0, "sigmoid input scale must be positive");
        SigmoidUnit { out_bits, scale, bypass: false }
    }

    /// Output resolution in bits.
    pub fn out_bits(&self) -> u8 {
        self.out_bits
    }

    /// Whether the unit is currently bypassed.
    pub fn is_bypassed(&self) -> bool {
        self.bypass
    }

    /// Sets the bypass switch (`bypass sigmoid` controller command).
    pub fn set_bypass(&mut self, bypass: bool) {
        self.bypass = bypass;
    }

    /// Applies the sigmoid (or passes through when bypassed, clamped to the
    /// non-negative output grid).
    pub fn apply(&self, x: i64) -> u64 {
        let max = (1u64 << self.out_bits) - 1;
        if self.bypass {
            return x.clamp(0, max as i64) as u64;
        }
        let s = 1.0 / (1.0 + (-(x as f64) / self.scale).exp());
        (s * max as f64).round() as u64
    }
}

/// The ReLU unit supporting CNN convolution layers (paper Fig. 4 C).
///
/// The circuit checks the sign bit of the result: it outputs zero when the
/// sign bit is negative and the result itself otherwise.
///
/// # Examples
///
/// ```
/// use prime_circuits::ReluUnit;
///
/// let relu = ReluUnit::new();
/// assert_eq!(relu.apply(17), 17);
/// assert_eq!(relu.apply(-4), 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReluUnit {
    bypass: bool,
}

impl ReluUnit {
    /// Creates an active (non-bypassed) ReLU unit.
    pub fn new() -> Self {
        ReluUnit { bypass: false }
    }

    /// Whether the unit is currently bypassed.
    pub fn is_bypassed(&self) -> bool {
        self.bypass
    }

    /// Sets the bypass switch.
    pub fn set_bypass(&mut self, bypass: bool) {
        self.bypass = bypass;
    }

    /// Applies `max(x, 0)`, or passes through when bypassed.
    pub fn apply(&self, x: i64) -> i64 {
        if self.bypass {
            x
        } else {
            x.max(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_monotonic() {
        let unit = SigmoidUnit::new(6, 32.0);
        let mut prev = unit.apply(-200);
        for x in (-200..=200).step_by(10) {
            let y = unit.apply(x);
            assert!(y >= prev, "sigmoid not monotonic at {x}");
            prev = y;
        }
    }

    #[test]
    fn sigmoid_midpoint_and_saturation() {
        let unit = SigmoidUnit::new(6, 64.0);
        assert_eq!(unit.apply(0), 32);
        assert_eq!(unit.apply(100_000), 63);
        assert_eq!(unit.apply(-100_000), 0);
    }

    #[test]
    fn sigmoid_bypass_passes_through_clamped() {
        let mut unit = SigmoidUnit::new(4, 8.0);
        unit.set_bypass(true);
        assert_eq!(unit.apply(5), 5);
        assert_eq!(unit.apply(-5), 0);
        assert_eq!(unit.apply(99), 15);
    }

    #[test]
    fn sigmoid_symmetry_around_midpoint() {
        let unit = SigmoidUnit::new(8, 40.0);
        let hi = unit.apply(30) as i64;
        let lo = unit.apply(-30) as i64;
        assert_eq!(hi + lo, 255);
    }

    #[test]
    fn relu_clamps_negatives_only() {
        let relu = ReluUnit::new();
        assert_eq!(relu.apply(0), 0);
        assert_eq!(relu.apply(123), 123);
        assert_eq!(relu.apply(-123), 0);
    }

    #[test]
    fn relu_bypass_is_identity() {
        let mut relu = ReluUnit::new();
        relu.set_bypass(true);
        assert_eq!(relu.apply(-7), -7);
    }
}
