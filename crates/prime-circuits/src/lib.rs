//! Peripheral circuit models for PRIME full-function (FF) subarrays.
//!
//! PRIME's key circuit idea is *reuse*: instead of adding DACs and ADCs
//! next to the memory's write drivers and sense amplifiers, the existing
//! peripheral circuits are extended to serve both functions (paper
//! §III-A). This crate models every added/modified block of Fig. 4:
//!
//! * [`WordlineDriver`] — multi-level voltage sources, input latch, and
//!   the memory/computation mode multiplexer (Fig. 4 A);
//! * [`ColumnMux`], [`SubtractionUnit`], [`SigmoidUnit`] — the modified
//!   column multiplexer with analog subtraction and bypassable sigmoid
//!   (Fig. 4 B);
//! * [`ReconfigurableSa`], [`PrecisionController`], [`ReluUnit`],
//!   [`MaxPoolUnit`] — the reconfigurable sense amplifier with its
//!   counter, precision-control register/adder, ReLU, and 4:1 max-pooling
//!   hardware (Fig. 4 C);
//! * [`ComposingScheme`] — the input-and-synapse composing arithmetic that
//!   overcomes the precision challenge (§III-D, Eqs. 2-9).
//!
//! # Examples
//!
//! Composing two 3-bit input signals and two 4-bit cells into a 6-bit x
//! 8-bit multiply, truncated to a 6-bit output exactly as the hardware
//! does:
//!
//! ```
//! use prime_circuits::{part_sums, ComposingScheme};
//!
//! let scheme = ComposingScheme::prime_default();
//! let inputs = vec![40u16; 16];
//! let weights = vec![100i32; 16];
//! let parts = part_sums(&scheme, &inputs, &weights, 1)?;
//! let exact = scheme.exact_target(scheme.full_from_parts(parts[0]));
//! let composed = scheme.compose(parts[0]);
//! assert!((exact - composed).abs() <= scheme.max_composition_error());
//! # Ok::<(), prime_circuits::CircuitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod column_mux;
mod compose;
mod driver;
mod error;
mod pooling;
mod sense_amp;

pub use activation::{ReluUnit, SigmoidUnit};
pub use column_mux::{ColumnMode, ColumnMux, SubtractionUnit};
pub use compose::{part_sums, ComposingScheme, Part, PartSums};
pub use driver::{DriverMode, WordlineDriver};
pub use error::CircuitError;
pub use pooling::{mean_pool_weights, MaxPoolUnit, MAX_POOL_DIFF_WEIGHTS};
pub use sense_amp::{PrecisionController, ReconfigurableSa};
