//! Reconfigurable sense amplifier (paper Fig. 4 C).
//!
//! Memory reads need 1-bit sensing; NN computation needs much higher
//! precision. PRIME adopts a fabrication-tested `Po`-bit (`Po <= 8`)
//! reconfigurable SA whose effective precision can be set anywhere from
//! 1 bit up to `Po` bits, controlled by a counter. A precision-control
//! circuit (register + adder) lets low-precision cells produce
//! high-precision results by accumulating shifted partial sums — the
//! hardware half of the input-and-synapse composing scheme.

use serde::{Deserialize, Serialize};

use crate::error::CircuitError;

/// The reconfigurable sense amplifier.
///
/// Converting a full-precision bitline accumulation to an `n`-bit digital
/// output means keeping its highest `n` bits, i.e. right-shifting by
/// `full_bits - n` — exactly how the paper defines the target result
/// (Eq. 3). The SA also saturates: a result wider than `full_bits`
/// clamps at the maximum code.
///
/// # Examples
///
/// ```
/// use prime_circuits::ReconfigurableSa;
///
/// let mut sa = ReconfigurableSa::new(6)?; // PRIME's 6-bit SA
/// sa.set_precision(6)?;
/// // A 13-bit-wide accumulation sensed at 6 bits keeps the top 6 bits:
/// assert_eq!(sa.convert(0b1_0110_1011_0111, 13)?, 0b101101);
/// # Ok::<(), prime_circuits::CircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigurableSa {
    max_bits: u8,
    precision: u8,
}

impl ReconfigurableSa {
    /// Creates an SA with a maximum precision of `max_bits` (1-8), initially
    /// configured at full precision.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::PrecisionOutOfRange`] if `max_bits` is 0 or
    /// greater than 8.
    pub fn new(max_bits: u8) -> Result<Self, CircuitError> {
        if max_bits == 0 || max_bits > 8 {
            return Err(CircuitError::PrecisionOutOfRange { requested: max_bits, max: 8 });
        }
        Ok(ReconfigurableSa { max_bits, precision: max_bits })
    }

    /// Maximum supported precision in bits.
    pub fn max_bits(&self) -> u8 {
        self.max_bits
    }

    /// Currently configured precision in bits.
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Reconfigures the effective precision (1 to `max_bits` bits).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::PrecisionOutOfRange`] for 0 or a value above
    /// `max_bits`.
    pub fn set_precision(&mut self, bits: u8) -> Result<(), CircuitError> {
        if bits == 0 || bits > self.max_bits {
            return Err(CircuitError::PrecisionOutOfRange { requested: bits, max: self.max_bits });
        }
        self.precision = bits;
        Ok(())
    }

    /// Largest output code at the current precision.
    pub fn max_code(&self) -> u64 {
        (1u64 << self.precision) - 1
    }

    /// Converts a non-negative full-precision accumulation whose value is
    /// known to fit in `full_bits` bits, keeping the highest
    /// `precision` bits (right shift by `full_bits - precision`).
    ///
    /// Values that overflow `full_bits` saturate at the maximum code,
    /// mirroring an SA driven past its reference ladder.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::PrecisionOutOfRange`] if `full_bits` is
    /// smaller than the configured precision or larger than 63.
    pub fn convert(&self, full_result: u64, full_bits: u8) -> Result<u64, CircuitError> {
        if full_bits < self.precision || full_bits > 63 {
            return Err(CircuitError::PrecisionOutOfRange {
                requested: full_bits,
                max: self.max_bits,
            });
        }
        let shift = full_bits - self.precision;
        Ok((full_result >> shift).min(self.max_code()))
    }

    /// Memory-mode 1-bit sensing of a bitline: threshold at half the
    /// full-scale value.
    pub fn sense_bit(&self, full_result: u64, full_bits: u8) -> bool {
        full_result >= (1u64 << (full_bits - 1))
    }

    /// Number of sequential conversion steps the counter performs at the
    /// current precision (one per output bit).
    pub fn conversion_steps(&self) -> u8 {
        self.precision
    }
}

/// The precision-control circuit: a register and adder that accumulate
/// shifted partial results so low-precision cells can produce a
/// high-precision weight (paper Fig. 4 C, §III-D).
///
/// # Examples
///
/// ```
/// use prime_circuits::PrecisionController;
///
/// let mut acc = PrecisionController::new();
/// acc.accumulate(5, 4);  // 5 * 2^4
/// acc.accumulate(3, 0);  // + 3
/// assert_eq!(acc.value(), 83);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrecisionController {
    register: i64,
}

impl PrecisionController {
    /// Creates a cleared accumulator register.
    pub fn new() -> Self {
        PrecisionController { register: 0 }
    }

    /// Adds `partial * 2^shift` to the register.
    pub fn accumulate(&mut self, partial: i64, shift: u8) {
        self.register += partial << shift;
    }

    /// Adds `partial >> shift` (arithmetic shift, floor semantics) to the
    /// register — the "take the highest bits" step of the composing scheme.
    pub fn accumulate_truncated(&mut self, partial: i64, shift: u8) {
        self.register += partial >> shift;
    }

    /// The accumulated value.
    pub fn value(&self) -> i64 {
        self.register
    }

    /// Clears the register for the next output.
    pub fn clear(&mut self) {
        self.register = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_invalid_widths() {
        assert!(ReconfigurableSa::new(0).is_err());
        assert!(ReconfigurableSa::new(9).is_err());
        assert!(ReconfigurableSa::new(8).is_ok());
    }

    #[test]
    fn precision_is_reconfigurable_within_range() {
        let mut sa = ReconfigurableSa::new(6).unwrap();
        for p in 1..=6 {
            sa.set_precision(p).unwrap();
            assert_eq!(sa.precision(), p);
            assert_eq!(sa.conversion_steps(), p);
        }
        assert!(sa.set_precision(7).is_err());
        assert!(sa.set_precision(0).is_err());
    }

    #[test]
    fn convert_keeps_highest_bits() {
        let mut sa = ReconfigurableSa::new(8).unwrap();
        sa.set_precision(4).unwrap();
        // 12-bit value 0b1010_1111_0001 -> top 4 bits 0b1010.
        assert_eq!(sa.convert(0b1010_1111_0001, 12).unwrap(), 0b1010);
    }

    #[test]
    fn convert_at_equal_width_is_identity_below_saturation() {
        let sa = ReconfigurableSa::new(6).unwrap();
        assert_eq!(sa.convert(42, 6).unwrap(), 42);
    }

    #[test]
    fn convert_saturates_on_overflow() {
        let sa = ReconfigurableSa::new(6).unwrap();
        // 200 does not fit in 6 bits at shift 0: clamps to 63.
        assert_eq!(sa.convert(200, 6).unwrap(), 63);
    }

    #[test]
    fn convert_rejects_narrower_full_width() {
        let sa = ReconfigurableSa::new(6).unwrap();
        assert!(sa.convert(1, 5).is_err());
    }

    #[test]
    fn sense_bit_thresholds_at_half_scale() {
        let sa = ReconfigurableSa::new(6).unwrap();
        assert!(!sa.sense_bit(127, 8));
        assert!(sa.sense_bit(128, 8));
    }

    #[test]
    fn controller_accumulates_shifted_parts() {
        let mut acc = PrecisionController::new();
        acc.accumulate(1, 8);
        acc.accumulate(-3, 2);
        assert_eq!(acc.value(), 256 - 12);
        acc.accumulate_truncated(-7, 1);
        assert_eq!(acc.value(), 256 - 12 - 4); // -7 >> 1 == -4 (floor)
        acc.clear();
        assert_eq!(acc.value(), 0);
    }
}
