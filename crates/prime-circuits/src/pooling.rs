//! Hardware pooling support (paper §III-E, Fig. 4 C).
//!
//! Max pooling uses a dedicated 4:1 unit: the four candidates are stored in
//! registers, ReRAM dot products with the six difference weight vectors
//! `[1,-1,0,0], [1,0,-1,0], [1,0,0,-1], [0,1,-1,0], [0,1,0,-1], [0,0,1,-1]`
//! produce all pairwise differences `a_i - a_j`, their sign bits form a
//! *winner code*, and combinational logic selects the maximum. Windows
//! larger than four are handled in multiple 4:1 steps. Mean pooling needs
//! no extra hardware: weights `[1/n, ..., 1/n]` are pre-programmed and a
//! single dot product produces the mean.

use serde::{Deserialize, Serialize};

use crate::error::CircuitError;

/// The six difference-weight vectors the 4:1 max-pooling unit programs into
/// ReRAM cells to compare its four candidates.
pub const MAX_POOL_DIFF_WEIGHTS: [[i8; 4]; 6] = [
    [1, -1, 0, 0],
    [1, 0, -1, 0],
    [1, 0, 0, -1],
    [0, 1, -1, 0],
    [0, 1, 0, -1],
    [0, 0, 1, -1],
];

/// The 4:1 max-pooling hardware unit.
///
/// # Examples
///
/// ```
/// use prime_circuits::MaxPoolUnit;
///
/// let unit = MaxPoolUnit::new();
/// assert_eq!(unit.pool4([3, 9, 1, 9]), 9);
/// assert_eq!(unit.pool(&[5, 2, 8, 1, 7])?, 8); // n > 4 takes multiple steps
/// # Ok::<(), prime_circuits::CircuitError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxPoolUnit;

impl MaxPoolUnit {
    /// Creates the unit.
    pub fn new() -> Self {
        MaxPoolUnit
    }

    /// Computes the winner code: the sign bits of the six pairwise
    /// differences, bit `k` set when difference `k` is non-negative.
    pub fn winner_code(&self, a: [i64; 4]) -> u8 {
        let mut code = 0u8;
        for (k, w) in MAX_POOL_DIFF_WEIGHTS.iter().enumerate() {
            let diff: i64 = w.iter().zip(a.iter()).map(|(&wi, &ai)| i64::from(wi) * ai).sum();
            if diff >= 0 {
                code |= 1 << k;
            }
        }
        code
    }

    /// Decodes a winner code to the index (0-3) of the maximum candidate.
    ///
    /// Bits 0-2 compare `a0` against `a1..a3`; bits 3-4 compare `a1`
    /// against `a2..a3`; bit 5 compares `a2` against `a3`. Ties resolve to
    /// the lower index, matching the `>= 0` sign convention.
    pub fn decode_winner(&self, code: u8) -> usize {
        if code & 0b000_111 == 0b000_111 {
            0
        } else if code & 0b011_000 == 0b011_000 && code & 0b000_001 == 0 {
            1
        } else if code & 0b100_000 != 0 && code & 0b000_010 == 0 && code & 0b001_000 == 0 {
            2
        } else {
            3
        }
    }

    /// One hardware step: the maximum of exactly four candidates.
    pub fn pool4(&self, a: [i64; 4]) -> i64 {
        a[self.decode_winner(self.winner_code(a))]
    }

    /// `n:1` max pooling via repeated 4:1 steps (n need not be a multiple
    /// of four; short groups are padded with the group's first element).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidPoolWindow`] for an empty window.
    pub fn pool(&self, values: &[i64]) -> Result<i64, CircuitError> {
        if values.is_empty() {
            return Err(CircuitError::InvalidPoolWindow { window: 0 });
        }
        let mut current: Vec<i64> = values.to_vec();
        while current.len() > 1 {
            let mut next = Vec::with_capacity(current.len().div_ceil(4));
            for chunk in current.chunks(4) {
                let mut group = [chunk[0]; 4];
                group[..chunk.len()].copy_from_slice(chunk);
                next.push(self.pool4(group));
            }
            current = next;
        }
        Ok(current[0])
    }

    /// Number of 4:1 hardware steps needed for an `n`-element window.
    pub fn steps_for(&self, n: usize) -> usize {
        let mut remaining = n;
        let mut steps = 0;
        while remaining > 1 {
            let groups = remaining.div_ceil(4);
            steps += groups;
            remaining = groups;
        }
        steps
    }
}

/// Builds the `[1/n, ..., 1/n]` weight row for ReRAM mean pooling,
/// quantized to `weight_bits`-bit levels relative to full scale.
///
/// The returned levels, used as cell codes, compute `sum(x) * level` where
/// `level ~= max_level / n`, rounded to the nearest programmable level;
/// the periphery interprets the result at the matching fixed-point scale.
/// Round-to-nearest matters at MLC precision: at 4-bit weights
/// (`max_level = 15`), windows of 9 ≤ n ≤ 30 round to level 1 and stay
/// programmable, where floor quantization would already collapse n ≥ 16
/// to zero.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidPoolWindow`] when `n` is zero or so large
/// that `max_level / n` rounds to zero (the mean would vanish).
pub fn mean_pool_weights(n: usize, weight_bits: u8) -> Result<Vec<u16>, CircuitError> {
    if n == 0 {
        return Err(CircuitError::InvalidPoolWindow { window: 0 });
    }
    let max_level = (1u32 << weight_bits) - 1;
    let n = n as u32;
    let level = (2 * max_level + n) / (2 * n); // round(max_level / n)
    if level == 0 {
        return Err(CircuitError::InvalidPoolWindow { window: n as usize });
    }
    Ok(vec![level as u16; n as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool4_matches_max_for_all_permutations() {
        let unit = MaxPoolUnit::new();
        let vals = [-3i64, 0, 7, 12];
        // All 24 permutations of 4 distinct values.
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    for l in 0..4 {
                        let idx = [i, j, k, l];
                        let mut seen = [false; 4];
                        idx.iter().for_each(|&x| seen[x] = true);
                        if seen != [true; 4] {
                            continue;
                        }
                        let a = [vals[i], vals[j], vals[k], vals[l]];
                        assert_eq!(unit.pool4(a), 12, "failed on {a:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn pool4_handles_ties() {
        let unit = MaxPoolUnit::new();
        assert_eq!(unit.pool4([5, 5, 5, 5]), 5);
        assert_eq!(unit.pool4([5, 5, 2, 1]), 5);
        assert_eq!(unit.pool4([1, 2, 9, 9]), 9);
    }

    #[test]
    fn pool_arbitrary_windows() {
        let unit = MaxPoolUnit::new();
        assert_eq!(unit.pool(&[42]).unwrap(), 42);
        assert_eq!(unit.pool(&[1, 2]).unwrap(), 2);
        assert_eq!(unit.pool(&(0..17).map(|x| x as i64).collect::<Vec<_>>()).unwrap(), 16);
        assert!(unit.pool(&[]).is_err());
    }

    #[test]
    fn steps_match_pooling_tree() {
        let unit = MaxPoolUnit::new();
        assert_eq!(unit.steps_for(4), 1);
        assert_eq!(unit.steps_for(16), 5); // 4 groups + 1 final
        assert_eq!(unit.steps_for(1), 0);
        assert_eq!(unit.steps_for(5), 3); // 2 groups + 1 final
    }

    #[test]
    fn winner_code_uses_six_differences() {
        let unit = MaxPoolUnit::new();
        // a0 strictly greatest: bits 0,1,2 set; a1 > a2 > a3 sets bits 3,4,5.
        assert_eq!(unit.winner_code([9, 5, 3, 1]), 0b111_111);
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// The repeated 4:1 winner-code reduction equals scalar max
            /// for arbitrary window sizes, including n not a multiple of
            /// four (short groups pad with their first element).
            #[test]
            fn pool_equals_scalar_max(values in proptest::collection::vec(-1000i64..1000, 1..40)) {
                let unit = MaxPoolUnit::new();
                let expected = *values.iter().max().unwrap();
                prop_assert_eq!(unit.pool(&values).unwrap(), expected);
            }

            /// Tie-heavy windows: candidates drawn from a tiny value set
            /// force duplicate maxima in nearly every group, exercising
            /// the `>= 0` tie-resolution paths of the winner code.
            #[test]
            fn pool_equals_scalar_max_under_ties(
                values in proptest::collection::vec(0i64..4, 1..40),
            ) {
                let unit = MaxPoolUnit::new();
                let expected = *values.iter().max().unwrap();
                prop_assert_eq!(unit.pool(&values).unwrap(), expected);
            }

            /// Round-to-nearest 1/n quantization: whenever a level is
            /// representable it is the closest one to `max_level / n`.
            #[test]
            fn mean_pool_level_is_nearest(n in 1usize..64, bits in 2u8..8) {
                let max_level = f64::from((1u32 << bits) - 1);
                match mean_pool_weights(n, bits) {
                    Ok(w) => {
                        prop_assert_eq!(w.len(), n);
                        let err = (f64::from(w[0]) - max_level / n as f64).abs();
                        prop_assert!(err <= 0.5, "level {} for n {}", w[0], n);
                    }
                    Err(_) => prop_assert!((max_level / n as f64) < 0.5),
                }
            }
        }
    }

    #[test]
    fn mean_pool_weights_quantize_reciprocal() {
        let w = mean_pool_weights(4, 4).unwrap();
        assert_eq!(w, vec![4, 4, 4, 4]); // round(15 / 4) = 4
        assert!(mean_pool_weights(0, 4).is_err());
        // round(15 / 16) = 1: large MLC windows stay programmable.
        assert_eq!(mean_pool_weights(16, 4).unwrap(), vec![1; 16]);
    }

    #[test]
    fn mean_pool_weights_survive_mlc_windows_up_to_rounding_limit() {
        // 4-bit MLC audit (ISSUE satellite): every n in 9..=30 must round
        // to a nonzero level; n >= 31 is genuinely unprogrammable.
        for n in 9..=30 {
            let w = mean_pool_weights(n, 4).unwrap();
            assert!(w[0] >= 1, "n = {n} collapsed to zero");
            // Level is the nearest programmable reciprocal: |level - 15/n|
            // <= 0.5.
            let err = (f64::from(w[0]) - 15.0 / n as f64).abs();
            assert!(err <= 0.5, "n = {n} level {} off by {err}", w[0]);
        }
        assert!(mean_pool_weights(31, 4).is_err());
        assert!(mean_pool_weights(64, 4).is_err());
    }
}
