//! Column multiplexer with analog subtraction and sigmoid (paper Fig. 4 B).
//!
//! In computation mode the modified column multiplexer routes the paired
//! positive/negative bitline currents into an analog subtraction unit and
//! then (unless bypassed) into the sigmoid unit, before local SA sensing.
//! In memory mode the analog units are bypassed entirely. One set of this
//! circuitry serves a positive/negative crossbar pair, so only half of the
//! column multiplexers need modification.

use serde::{Deserialize, Serialize};

use crate::activation::SigmoidUnit;
use crate::error::CircuitError;
use crate::sense_amp::ReconfigurableSa;

/// Routing mode of the column multiplexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnMode {
    /// Bitlines connect straight to the memory sense path.
    Memory,
    /// Bitlines route through subtraction (and optionally sigmoid).
    Computation,
}

/// The analog subtraction unit: difference of the positive- and
/// negative-array results for one output neuron.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubtractionUnit;

impl SubtractionUnit {
    /// Creates the unit.
    pub fn new() -> Self {
        SubtractionUnit
    }

    /// Subtracts the negative-array accumulation from the positive one.
    pub fn subtract(&self, positive: u64, negative: u64) -> i64 {
        positive as i64 - negative as i64
    }
}

/// The computation-mode output path: subtraction -> sigmoid -> SA.
///
/// This composes the peripheral pieces exactly as Fig. 5(a)'s dataflow
/// does: positive and negative bitline results are subtracted, the
/// difference passes the (bypassable) sigmoid, and the SA converts the
/// analog value to a digital code.
///
/// # Examples
///
/// ```
/// use prime_circuits::{ColumnMux, ColumnMode};
///
/// let mut mux = ColumnMux::new(6, 64.0)?;
/// mux.set_mode(ColumnMode::Computation);
/// mux.sigmoid_mut().set_bypass(true);
/// // pos - neg = 40; bypassed sigmoid passes it to the 6-bit SA.
/// assert_eq!(mux.process(100, 60)?, 40);
/// # Ok::<(), prime_circuits::CircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnMux {
    mode: ColumnMode,
    subtraction: SubtractionUnit,
    sigmoid: SigmoidUnit,
    sa: ReconfigurableSa,
}

impl ColumnMux {
    /// Creates a computation output path with an `out_bits`-bit SA and a
    /// sigmoid of the given input scale. Starts in memory mode.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::PrecisionOutOfRange`] for an invalid SA
    /// width.
    pub fn new(out_bits: u8, sigmoid_scale: f64) -> Result<Self, CircuitError> {
        Ok(ColumnMux {
            mode: ColumnMode::Memory,
            subtraction: SubtractionUnit::new(),
            sigmoid: SigmoidUnit::new(out_bits, sigmoid_scale),
            sa: ReconfigurableSa::new(out_bits)?,
        })
    }

    /// Current routing mode.
    pub fn mode(&self) -> ColumnMode {
        self.mode
    }

    /// Switches between memory and computation routing.
    pub fn set_mode(&mut self, mode: ColumnMode) {
        self.mode = mode;
    }

    /// The sigmoid unit, for bypass control.
    pub fn sigmoid_mut(&mut self) -> &mut SigmoidUnit {
        &mut self.sigmoid
    }

    /// The sense amplifier, for precision control.
    pub fn sa_mut(&mut self) -> &mut ReconfigurableSa {
        &mut self.sa
    }

    /// The sense amplifier.
    pub fn sa(&self) -> &ReconfigurableSa {
        &self.sa
    }

    /// Runs the computation path on a pair of bitline accumulations and
    /// returns the digital output code.
    ///
    /// With the sigmoid active, its output is already an SA-width code.
    /// With the sigmoid bypassed, the signed difference is clamped at zero
    /// (negative analog values do not drive the SA) and saturated at the SA
    /// ceiling; callers needing signed partial sums read the subtraction
    /// result via [`subtract`](Self::subtract) instead.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::PrecisionOutOfRange`] if the path is used in
    /// memory mode (a datapath-configuration bug).
    pub fn process(&self, positive: u64, negative: u64) -> Result<u64, CircuitError> {
        if self.mode != ColumnMode::Computation {
            return Err(CircuitError::PrecisionOutOfRange {
                requested: 0,
                max: self.sa.max_bits(),
            });
        }
        let diff = self.subtraction.subtract(positive, negative);
        let activated = self.sigmoid.apply(diff);
        self.sa.convert(activated, self.sa.precision())
    }

    /// Raw signed subtraction, used when results feed the precision
    /// controller (split NNs, composing scheme) rather than an activation.
    pub fn subtract(&self, positive: u64, negative: u64) -> i64 {
        self.subtraction.subtract(positive, negative)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtraction_is_signed() {
        let s = SubtractionUnit::new();
        assert_eq!(s.subtract(10, 3), 7);
        assert_eq!(s.subtract(3, 10), -7);
    }

    #[test]
    fn process_requires_computation_mode() {
        let mux = ColumnMux::new(6, 64.0).unwrap();
        assert!(mux.process(1, 0).is_err());
    }

    #[test]
    fn process_with_sigmoid_produces_mid_code_at_zero() {
        let mut mux = ColumnMux::new(6, 64.0).unwrap();
        mux.set_mode(ColumnMode::Computation);
        assert_eq!(mux.process(50, 50).unwrap(), 32);
    }

    #[test]
    fn process_bypassed_clamps_negative_to_zero() {
        let mut mux = ColumnMux::new(6, 64.0).unwrap();
        mux.set_mode(ColumnMode::Computation);
        mux.sigmoid_mut().set_bypass(true);
        assert_eq!(mux.process(3, 10).unwrap(), 0);
        assert_eq!(mux.process(10, 3).unwrap(), 7);
    }

    #[test]
    fn process_saturates_at_sa_ceiling() {
        let mut mux = ColumnMux::new(4, 64.0).unwrap();
        mux.set_mode(ColumnMode::Computation);
        mux.sigmoid_mut().set_bypass(true);
        assert_eq!(mux.process(1000, 0).unwrap(), 15);
    }
}
