//! The input and synapse composing scheme (paper §III-D, Eqs. 2-9).
//!
//! With practical technology assumptions — 3-bit input voltages, 4-bit MLC
//! cells, a 6-bit reconfigurable SA — PRIME reaches higher effective
//! precision by composition: two 3-bit input signals form one `Pin = 6`-bit
//! input, and two 4-bit cells (in adjacent bitlines) form one `Pw = 8`-bit
//! synaptic weight. A full-accuracy crossbar result would carry
//! `Pin + Pw + PN` bits (Eq. 2, with `2^PN` inputs per array); the target
//! output keeps its highest `Po` bits (Eq. 3).
//!
//! Splitting inputs and weights into HIGH/LOW halves (Eqs. 4-5) decomposes
//! the full result into four partial dot products — HH, HL, LH, LL — with
//! binary weights `2^((Pin+Pw)/2)`, `2^(Pw/2)`, `2^(Pin/2)`, `2^0`
//! (Eqs. 6-8). The hardware computes the parts sequentially, truncates
//! each to its significant bits via the reconfigurable SA, and accumulates
//! them with the precision-control adder (Eq. 9). Parts whose kept-bit
//! count would be non-positive (LL under the default assumptions) are
//! skipped.

use serde::{Deserialize, Serialize};

use crate::error::CircuitError;

/// The four partial dot products of a composed evaluation.
///
/// Each field is the full-precision (signed, after positive/negative array
/// subtraction) accumulation of one input-half x weight-half combination.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartSums {
    /// HIGH input half x HIGH weight half.
    pub hh: i64,
    /// LOW input half x HIGH weight half.
    pub hl: i64,
    /// HIGH input half x LOW weight half.
    pub lh: i64,
    /// LOW input half x LOW weight half.
    pub ll: i64,
}

/// Identifies one of the four composing parts, in the order the hardware
/// evaluates them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Part {
    /// HIGH x HIGH.
    Hh,
    /// LOW x HIGH.
    Hl,
    /// HIGH x LOW.
    Lh,
    /// LOW x LOW.
    Ll,
}

impl Part {
    /// All parts in hardware evaluation order.
    pub const ALL: [Part; 4] = [Part::Hh, Part::Hl, Part::Lh, Part::Ll];
}

/// Parameters of the composing scheme.
///
/// # Examples
///
/// The paper's default assumptions — composed 6-bit inputs from 3-bit
/// signals, composed 8-bit weights from 4-bit cells, 6-bit outputs, 256
/// inputs per crossbar:
///
/// ```
/// use prime_circuits::ComposingScheme;
///
/// let scheme = ComposingScheme::prime_default();
/// assert_eq!(scheme.input_half_bits(), 3);
/// assert_eq!(scheme.weight_half_bits(), 4);
/// assert_eq!(scheme.included_parts().len(), 3); // LL is dropped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComposingScheme {
    pin: u8,
    pw: u8,
    po: u8,
    pn: u8,
}

impl ComposingScheme {
    /// Creates a scheme with composed input bits `pin`, composed weight
    /// bits `pw`, output bits `po`, and `2^pn` inputs per crossbar array.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidComposition`] if `pin` or `pw` is odd
    /// or zero, if `po` is zero or exceeds the full precision
    /// `pin + pw + pn`, or if any width is implausibly large (> 16).
    pub fn new(pin: u8, pw: u8, po: u8, pn: u8) -> Result<Self, CircuitError> {
        if pin == 0 || !pin.is_multiple_of(2) {
            return Err(CircuitError::InvalidComposition {
                reason: "composed input width must be even and non-zero",
            });
        }
        if pw == 0 || !pw.is_multiple_of(2) {
            return Err(CircuitError::InvalidComposition {
                reason: "composed weight width must be even and non-zero",
            });
        }
        if pin > 16 || pw > 16 || po > 16 || pn > 16 {
            return Err(CircuitError::InvalidComposition {
                reason: "bit widths above 16 are not plausible hardware",
            });
        }
        if po == 0 || po > pin + pw + pn {
            return Err(CircuitError::InvalidComposition {
                reason: "output width must be in 1..=pin+pw+pn",
            });
        }
        Ok(ComposingScheme { pin, pw, po, pn })
    }

    /// The paper's default: `Pin = 6`, `Pw = 8`, `Po = 6`, `PN = 8`
    /// (256-input mats).
    pub const fn prime_default() -> Self {
        // Constructed directly: even non-zero pin/pw, po within
        // 1..=pin+pw+pn, all widths <= 16 — the `new` invariants hold.
        ComposingScheme { pin: 6, pw: 8, po: 6, pn: 8 }
    }

    /// Composed input width in bits.
    pub fn input_bits(&self) -> u8 {
        self.pin
    }

    /// Composed weight width in bits (magnitude; sign is carried by the
    /// positive/negative array split).
    pub fn weight_bits(&self) -> u8 {
        self.pw
    }

    /// Target output width in bits.
    pub fn output_bits(&self) -> u8 {
        self.po
    }

    /// `log2` of the number of inputs per crossbar.
    pub fn pn(&self) -> u8 {
        self.pn
    }

    /// Width of each physical input signal (half the composed width).
    pub fn input_half_bits(&self) -> u8 {
        self.pin / 2
    }

    /// Width of each physical cell (half the composed width).
    pub fn weight_half_bits(&self) -> u8 {
        self.pw / 2
    }

    /// Full precision of an uncomposed result (Eq. 2): `pin + pw + pn` bits.
    pub fn full_bits(&self) -> u8 {
        self.pin + self.pw + self.pn
    }

    /// The right shift taking a full-precision result to the target
    /// (Eq. 3): `pin + pw + pn - po`.
    pub fn target_shift(&self) -> u8 {
        self.full_bits() - self.po
    }

    /// Binary scale (exponent) of a part in the full result (Eq. 8).
    pub fn part_scale(&self, part: Part) -> u8 {
        match part {
            Part::Hh => (self.pin + self.pw) / 2,
            Part::Hl => self.pw / 2,
            Part::Lh => self.pin / 2,
            Part::Ll => 0,
        }
    }

    /// How many bits of a part the SA keeps (paper §III-D list); a
    /// non-positive count means the part is skipped.
    pub fn kept_bits(&self, part: Part) -> i8 {
        let offset = match part {
            Part::Hh => 0,
            Part::Hl => self.pin / 2,
            Part::Lh => self.pw / 2,
            Part::Ll => (self.pin + self.pw) / 2,
        };
        self.po as i8 - offset as i8
    }

    /// The parts the hardware actually evaluates (kept bits > 0), in order.
    pub fn included_parts(&self) -> Vec<Part> {
        self.included_parts_iter().collect()
    }

    /// Allocation-free form of [`included_parts`](Self::included_parts),
    /// for hot kernels.
    pub fn included_parts_iter(self) -> impl Iterator<Item = Part> {
        Part::ALL.iter().copied().filter(move |&p| self.kept_bits(p) > 0)
    }

    /// Largest representable composed input code: `2^Pin - 1` (63 for the
    /// paper's 6-bit inputs). The single source of truth for input
    /// quantization clamps.
    pub fn input_code_max(&self) -> u16 {
        ((1u32 << self.pin) - 1) as u16
    }

    /// Largest representable output magnitude: `2^Po - 1` (63 for the
    /// paper's 6-bit outputs); the sign is carried by the subtraction
    /// unit. The single source of truth for output/requantization clamps.
    pub fn output_code_max(&self) -> i64 {
        (1i64 << self.po) - 1
    }

    /// Splits a composed input code into (HIGH, LOW) physical signals.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::CodeOutOfRange`] if the code exceeds
    /// `2^pin - 1`.
    pub fn split_input(&self, code: u16) -> Result<(u16, u16), CircuitError> {
        let max = (1u32 << self.pin) - 1;
        if u32::from(code) > max {
            return Err(CircuitError::CodeOutOfRange { code: u32::from(code), codes: max + 1 });
        }
        let half = self.input_half_bits();
        Ok((code >> half, code & ((1 << half) - 1)))
    }

    /// Splits a composed weight magnitude into (HIGH, LOW) cell levels.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::CodeOutOfRange`] if the magnitude exceeds
    /// `2^pw - 1`.
    pub fn split_weight(&self, magnitude: u16) -> Result<(u16, u16), CircuitError> {
        let max = (1u32 << self.pw) - 1;
        if u32::from(magnitude) > max {
            return Err(CircuitError::CodeOutOfRange {
                code: u32::from(magnitude),
                codes: max + 1,
            });
        }
        let half = self.weight_half_bits();
        Ok((magnitude >> half, magnitude & ((1 << half) - 1)))
    }

    /// Reconstructs the exact full-precision result from the four parts
    /// (Eq. 8) — the mathematical identity the scheme is built on.
    pub fn full_from_parts(&self, parts: PartSums) -> i64 {
        (parts.hh << self.part_scale(Part::Hh))
            + (parts.hl << self.part_scale(Part::Hl))
            + (parts.lh << self.part_scale(Part::Lh))
            + parts.ll
    }

    /// The exact target result: the full-precision value shifted right by
    /// [`target_shift`](Self::target_shift) (arithmetic, floor semantics).
    pub fn exact_target(&self, full: i64) -> i64 {
        full >> self.target_shift()
    }

    /// The hardware-composed target (Eq. 9): each included part is
    /// truncated to its kept bits by the SA and accumulated by the
    /// precision-control adder. Differs from [`exact_target`](Self::exact_target) by at most a
    /// few LSBs (the dropped fractional bits and the skipped LL part).
    pub fn compose(&self, parts: PartSums) -> i64 {
        let shift = self.target_shift();
        let mut acc = 0i64;
        for part in self.included_parts() {
            let scale = self.part_scale(part);
            let value = match part {
                Part::Hh => parts.hh,
                Part::Hl => parts.hl,
                Part::Lh => parts.lh,
                Part::Ll => parts.ll,
            };
            // Contribution of `value * 2^scale` to `full >> shift`.
            if shift >= scale {
                acc += value >> (shift - scale);
            } else {
                acc += value << (scale - shift);
            }
        }
        acc
    }

    /// Worst-case magnitude of `exact_target - compose` for this scheme:
    /// one LSB per truncated part plus the skipped parts' maximum
    /// contribution. Used by tests and by accuracy analysis.
    pub fn max_composition_error(&self) -> i64 {
        let included = self.included_parts();
        let truncation = included.len() as i64;
        let mut skipped = 0i64;
        for part in Part::ALL {
            if !included.contains(&part) {
                let scale = self.part_scale(part);
                let part_max_bits = self.input_half_bits() + self.weight_half_bits() + self.pn;
                let contribution_bits =
                    i32::from(scale) + i32::from(part_max_bits) - i32::from(self.target_shift());
                if contribution_bits > 0 {
                    skipped += 1i64 << contribution_bits;
                } else {
                    skipped += 1;
                }
            }
        }
        truncation + skipped
    }
}

impl Default for ComposingScheme {
    fn default() -> Self {
        ComposingScheme::prime_default()
    }
}

/// Computes the four partial dot products of a composed evaluation in
/// software, from composed inputs and signed composed weights laid out
/// row-major as `weights[i * outputs + j]`.
///
/// This is the reference the FF-subarray hardware path is tested against;
/// it is also used directly by the functional simulator when device-level
/// fidelity is not required.
///
/// # Errors
///
/// Returns [`CircuitError::LatchLengthMismatch`] if `weights.len()` is not
/// `inputs.len() * outputs`, or a code/magnitude range error from the
/// splitting helpers.
pub fn part_sums(
    scheme: &ComposingScheme,
    inputs: &[u16],
    weights: &[i32],
    outputs: usize,
) -> Result<Vec<PartSums>, CircuitError> {
    if weights.len() != inputs.len() * outputs {
        return Err(CircuitError::LatchLengthMismatch {
            got: weights.len(),
            expected: inputs.len() * outputs,
        });
    }
    let mut sums = vec![PartSums::default(); outputs];
    for (i, &code) in inputs.iter().enumerate() {
        let (ih, il) = scheme.split_input(code)?;
        for (j, sum) in sums.iter_mut().enumerate() {
            let w = weights[i * outputs + j];
            let sign = if w < 0 { -1i64 } else { 1 };
            let (wh, wl) = scheme.split_weight(w.unsigned_abs().min(u32::from(u16::MAX)) as u16)?;
            sum.hh += sign * i64::from(ih) * i64::from(wh);
            sum.hl += sign * i64::from(il) * i64::from(wh);
            sum.lh += sign * i64::from(ih) * i64::from(wl);
            sum.ll += sign * i64::from(il) * i64::from(wl);
        }
    }
    Ok(sums)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_assumptions() {
        let s = ComposingScheme::prime_default();
        assert_eq!(s.input_bits(), 6);
        assert_eq!(s.weight_bits(), 8);
        assert_eq!(s.output_bits(), 6);
        assert_eq!(s.full_bits(), 22);
        assert_eq!(s.target_shift(), 16);
    }

    #[test]
    fn kept_bits_follow_paper_breakdown() {
        // Paper: all 6 bits of HH, highest 3 of HL, highest 2 of LH, LL dropped.
        let s = ComposingScheme::prime_default();
        assert_eq!(s.kept_bits(Part::Hh), 6);
        assert_eq!(s.kept_bits(Part::Hl), 3);
        assert_eq!(s.kept_bits(Part::Lh), 2);
        assert_eq!(s.kept_bits(Part::Ll), -1);
        assert_eq!(s.included_parts(), vec![Part::Hh, Part::Hl, Part::Lh]);
    }

    #[test]
    fn new_validates_parameters() {
        assert!(ComposingScheme::new(5, 8, 6, 8).is_err()); // odd pin
        assert!(ComposingScheme::new(6, 7, 6, 8).is_err()); // odd pw
        assert!(ComposingScheme::new(6, 8, 0, 8).is_err()); // zero po
        assert!(ComposingScheme::new(6, 8, 23, 8).is_err()); // po > full
        assert!(ComposingScheme::new(18, 8, 6, 8).is_err()); // implausible
    }

    #[test]
    fn split_input_and_weight_round_trip() {
        let s = ComposingScheme::prime_default();
        for code in 0..64u16 {
            let (h, l) = s.split_input(code).unwrap();
            assert_eq!((h << 3) | l, code);
            assert!(h < 8 && l < 8);
        }
        for mag in (0..256u16).step_by(7) {
            let (h, l) = s.split_weight(mag).unwrap();
            assert_eq!((h << 4) | l, mag);
            assert!(h < 16 && l < 16);
        }
        assert!(s.split_input(64).is_err());
        assert!(s.split_weight(256).is_err());
    }

    #[test]
    fn full_from_parts_is_exact_identity() {
        let s = ComposingScheme::prime_default();
        let inputs = [63u16, 0, 17, 42];
        let weights = [255i32, -255, 1, -128, 77, 0, -200, 5];
        let outputs = 2;
        let parts = part_sums(&s, &inputs, &weights, outputs).unwrap();
        for j in 0..outputs {
            let direct: i64 = inputs
                .iter()
                .enumerate()
                .map(|(i, &a)| i64::from(a) * i64::from(weights[i * outputs + j]))
                .sum();
            assert_eq!(s.full_from_parts(parts[j]), direct);
        }
    }

    #[test]
    fn compose_approximates_exact_target() {
        let s = ComposingScheme::prime_default();
        let inputs: Vec<u16> = (0..256).map(|i| (i % 64) as u16).collect();
        let weights: Vec<i32> = (0..256).map(|i| ((i * 13) % 511) - 255).collect();
        let parts = part_sums(&s, &inputs, &weights, 1).unwrap();
        let exact = s.exact_target(s.full_from_parts(parts[0]));
        let composed = s.compose(parts[0]);
        assert!(
            (exact - composed).abs() <= s.max_composition_error(),
            "exact {exact}, composed {composed}, bound {}",
            s.max_composition_error()
        );
    }

    #[test]
    fn compose_is_exact_when_no_truncation_needed() {
        // po == full bits: shift is zero and every part is kept.
        let s = ComposingScheme::new(2, 2, 6, 2).unwrap();
        let parts = PartSums { hh: 3, hl: 2, lh: 1, ll: 1 };
        assert_eq!(s.compose(parts), s.full_from_parts(parts));
    }

    #[test]
    fn part_sums_validates_shape() {
        let s = ComposingScheme::prime_default();
        assert!(part_sums(&s, &[1, 2], &[1, 2, 3], 2).is_err());
    }

    #[test]
    fn part_scales_match_equation_8() {
        let s = ComposingScheme::prime_default();
        assert_eq!(s.part_scale(Part::Hh), 7);
        assert_eq!(s.part_scale(Part::Hl), 4);
        assert_eq!(s.part_scale(Part::Lh), 3);
        assert_eq!(s.part_scale(Part::Ll), 0);
    }
}
