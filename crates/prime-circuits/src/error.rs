//! Error type for the peripheral-circuit layer.

use std::fmt;

/// Errors raised by peripheral-circuit operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A digital code outside the circuit's resolution was supplied.
    CodeOutOfRange {
        /// The offending code.
        code: u32,
        /// Number of representable codes.
        codes: u32,
    },
    /// A precision outside the reconfigurable range was requested.
    PrecisionOutOfRange {
        /// Requested bits.
        requested: u8,
        /// Maximum supported bits.
        max: u8,
    },
    /// The latch was asked to drive a vector of the wrong length.
    LatchLengthMismatch {
        /// Supplied length.
        got: usize,
        /// Latch width.
        expected: usize,
    },
    /// A composing parameter was invalid (e.g. odd bit-width to split).
    InvalidComposition {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The pooling unit was given an unsupported window.
    InvalidPoolWindow {
        /// Requested window size.
        window: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::CodeOutOfRange { code, codes } => {
                write!(f, "code {code} out of range ({codes} representable codes)")
            }
            CircuitError::PrecisionOutOfRange { requested, max } => {
                write!(f, "precision {requested} bits out of range (max {max})")
            }
            CircuitError::LatchLengthMismatch { got, expected } => {
                write!(f, "latched vector length {got} does not match driver width {expected}")
            }
            CircuitError::InvalidComposition { reason } => {
                write!(f, "invalid composing parameters: {reason}")
            }
            CircuitError::InvalidPoolWindow { window } => {
                write!(f, "pooling window {window} is not supported")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_meaningful() {
        let e = CircuitError::PrecisionOutOfRange { requested: 9, max: 8 };
        assert_eq!(e.to_string(), "precision 9 bits out of range (max 8)");
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<CircuitError>();
    }
}
