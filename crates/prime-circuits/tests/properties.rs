//! Property-based tests for the peripheral-circuit layer, centred on the
//! composing scheme's approximation guarantee.

use proptest::prelude::*;

use prime_circuits::{part_sums, ComposingScheme, MaxPoolUnit, ReconfigurableSa};

/// Arbitrary valid composing schemes with matching random input/weight
/// vectors.
fn composed_case() -> impl Strategy<Value = (ComposingScheme, Vec<u16>, Vec<i32>)> {
    (1u8..=3, 1u8..=3, 1u8..=6, 1usize..64).prop_flat_map(|(half_in, half_w, po, n)| {
        let pin = half_in * 2;
        let pw = half_w * 2;
        let pn = 8u8; // fixed mat-sized array exponent
        let po = po.min(pin + pw + pn);
        let scheme = ComposingScheme::new(pin, pw, po, pn).unwrap();
        let in_max = (1u16 << pin) - 1;
        let w_max = (1i32 << pw) - 1;
        (
            Just(scheme),
            proptest::collection::vec(0..=in_max, n),
            proptest::collection::vec(-w_max..=w_max, n),
        )
    })
}

proptest! {
    /// Eq. 8 identity: the four partial sums reconstruct the exact signed
    /// dot product for every scheme and input/weight combination.
    #[test]
    fn parts_reconstruct_full_result((scheme, inputs, weights) in composed_case()) {
        let parts = part_sums(&scheme, &inputs, &weights, 1).unwrap();
        let direct: i64 = inputs
            .iter()
            .zip(weights.iter())
            .map(|(&a, &w)| i64::from(a) * i64::from(w))
            .sum();
        prop_assert_eq!(scheme.full_from_parts(parts[0]), direct);
    }

    /// The hardware composition (truncate parts, accumulate) never strays
    /// further from the exact target than the analytic error bound.
    #[test]
    fn composition_error_is_bounded((scheme, inputs, weights) in composed_case()) {
        let parts = part_sums(&scheme, &inputs, &weights, 1).unwrap();
        let exact = scheme.exact_target(scheme.full_from_parts(parts[0]));
        let composed = scheme.compose(parts[0]);
        prop_assert!(
            (exact - composed).abs() <= scheme.max_composition_error(),
            "scheme {:?}: exact {} composed {}", scheme, exact, composed
        );
    }

    /// Input and weight splitting always round-trips.
    #[test]
    fn splits_round_trip(code in 0u16..64, mag in 0u16..256) {
        let scheme = ComposingScheme::prime_default();
        let (ih, il) = scheme.split_input(code).unwrap();
        prop_assert_eq!((ih << 3) | il, code);
        let (wh, wl) = scheme.split_weight(mag).unwrap();
        prop_assert_eq!((wh << 4) | wl, mag);
    }

    /// SA conversion equals keeping the highest `precision` bits for any
    /// in-range value, at every reconfigurable precision.
    #[test]
    fn sa_truncation_matches_shift(value in 0u64..(1 << 20), precision in 1u8..=8) {
        let mut sa = ReconfigurableSa::new(8).unwrap();
        sa.set_precision(precision).unwrap();
        let got = sa.convert(value, 20).unwrap();
        prop_assert_eq!(got, value >> (20 - precision));
    }

    /// The winner-code max-pooling hardware agrees with `Iterator::max`
    /// for arbitrary windows.
    #[test]
    fn max_pool_matches_reference(values in proptest::collection::vec(-1000i64..1000, 1..40)) {
        let unit = MaxPoolUnit::new();
        prop_assert_eq!(unit.pool(&values).unwrap(), *values.iter().max().unwrap());
    }
}
