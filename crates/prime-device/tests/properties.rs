//! Property-based tests for the ReRAM device layer.

use proptest::prelude::*;

use prime_device::{Crossbar, IrDropModel, MlcSpec, NoiseModel, PairScratch, PairedCrossbar};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A strategy producing (rows, cols, weight-levels, input-codes, cell-bits,
/// input-bits) tuples describing a valid crossbar evaluation.
fn crossbar_case() -> impl Strategy<Value = (usize, usize, Vec<u16>, Vec<u16>, u8, u8)> {
    (1usize..24, 1usize..24, 1u8..=6, 1u8..=6).prop_flat_map(|(rows, cols, wbits, ibits)| {
        let wmax = (1u16 << wbits) - 1;
        let imax = (1u16 << ibits) - 1;
        (
            Just(rows),
            Just(cols),
            proptest::collection::vec(0..=wmax, rows * cols),
            proptest::collection::vec(0..=imax, rows),
            Just(wbits),
            Just(ibits),
        )
    })
}

proptest! {
    /// The crossbar's integer dot product equals a straightforward
    /// reference implementation for arbitrary shapes and precisions.
    #[test]
    fn dot_matches_integer_reference((rows, cols, weights, input, wbits, _ibits) in crossbar_case()) {
        let mut xbar = Crossbar::new(rows, cols, MlcSpec::new(wbits).unwrap());
        xbar.program_matrix(&weights).unwrap();
        let got = xbar.dot(&input).unwrap();
        for c in 0..cols {
            let expect: u64 = (0..rows)
                .map(|r| u64::from(input[r]) * u64::from(weights[r * cols + c]))
                .sum();
            prop_assert_eq!(got[c], expect);
        }
    }

    /// Decoding ideal analog currents recovers the exact integer dot
    /// product for every precision combination — the contract the
    /// reconfigurable SA depends on.
    #[test]
    fn analog_decode_is_exact_without_noise((rows, cols, weights, input, wbits, ibits) in crossbar_case()) {
        let mut xbar = Crossbar::new(rows, cols, MlcSpec::new(wbits).unwrap());
        xbar.program_matrix(&weights).unwrap();
        let exact = xbar.dot(&input).unwrap();
        let input_sum: u64 = input.iter().map(|&a| u64::from(a)).sum();
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        let currents = xbar.dot_analog(&input, ibits, &NoiseModel::ideal(), &mut rng).unwrap();
        for (c, current) in currents.iter().enumerate() {
            prop_assert_eq!(xbar.decode_current(*current, input_sum, ibits), exact[c] as i64);
        }
    }

    /// Splitting signed weights across a positive/negative pair and
    /// subtracting bitline results equals signed integer arithmetic.
    #[test]
    fn paired_crossbar_equals_signed_matvec(
        rows in 1usize..16,
        cols in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pair = PairedCrossbar::new(rows, cols, MlcSpec::new(4).unwrap());
        let weights: Vec<i32> = (0..rows * cols)
            .map(|_| rand::Rng::gen_range(&mut rng, -15i32..=15))
            .collect();
        pair.program_signed_matrix(&weights).unwrap();
        let input: Vec<u16> = (0..rows).map(|_| rand::Rng::gen_range(&mut rng, 0u16..8)).collect();
        let got = pair.dot_signed(&input).unwrap();
        for c in 0..cols {
            let expect: i64 = (0..rows)
                .map(|r| i64::from(input[r]) * i64::from(weights[r * cols + c]))
                .sum();
            prop_assert_eq!(got[c], expect);
        }
    }

    /// Signed weights written through `program_signed` always read back
    /// exactly, for the full representable range.
    #[test]
    fn signed_weight_round_trip(w in -15i32..=15) {
        let mut pair = PairedCrossbar::new(1, 1, MlcSpec::new(4).unwrap());
        pair.program_signed(0, 0, w).unwrap();
        prop_assert_eq!(pair.signed_weight(0, 0).unwrap(), w);
    }

    /// Memory-mode bit rows survive a round trip through computation mode
    /// and back (the FF morphing invariant at the device level).
    #[test]
    fn morph_round_trip_preserves_bits(bits in proptest::collection::vec(any::<bool>(), 1..64)) {
        let mut xbar = Crossbar::new(1, bits.len(), MlcSpec::slc());
        xbar.write_row_bits(0, &bits).unwrap();
        xbar.morph(MlcSpec::new(4).unwrap());
        xbar.morph(MlcSpec::slc());
        prop_assert_eq!(xbar.read_row_bits(0).unwrap(), bits);
    }

    /// Conductance quantization inverts conductance mapping at every level
    /// and is robust to sub-half-LSB perturbations.
    #[test]
    fn conductance_quantization_tolerates_small_error(bits in 1u8..=6, frac in -0.45f64..0.45) {
        let spec = MlcSpec::new(bits).unwrap();
        let lsb = (spec.g_on() - spec.g_off()) / f64::from(spec.max_level());
        for level in 0..=spec.max_level() {
            let g = spec.conductance(level) + frac * lsb;
            prop_assert_eq!(spec.quantize_conductance(g), level);
        }
    }

    /// Every single-crossbar `*_into` kernel writes exactly what its
    /// allocating twin returns — including through pre-dirtied buffers
    /// (the clear-and-resize half of the scratch-buffer contract) and RNG
    /// draw for RNG draw on the analog path.
    #[test]
    fn into_kernels_match_allocating_kernels(
        (rows, cols, weights, input, wbits, ibits) in crossbar_case(),
    ) {
        let mut xbar = Crossbar::new(rows, cols, MlcSpec::new(wbits).unwrap());
        xbar.program_matrix(&weights).unwrap();

        let mut out = vec![99u64; 3]; // stale contents must be ignored
        xbar.dot_into(&input, &mut out).unwrap();
        prop_assert_eq!(&out, &xbar.dot(&input).unwrap());

        let noise = NoiseModel { program_sigma: 0.0, read_sigma: 0.05 };
        let mut rng_a = SmallRng::seed_from_u64(0xA11A);
        let mut rng_b = SmallRng::seed_from_u64(0xA11A);
        let currents = xbar.dot_analog(&input, ibits, &noise, &mut rng_a).unwrap();
        let mut currents_into = vec![f64::NAN; 1];
        xbar.dot_analog_into(&input, ibits, &noise, &mut rng_b, &mut currents_into).unwrap();
        prop_assert_eq!(currents, currents_into);

        let model = IrDropModel::new(1e-3);
        let mut attenuated = vec![f64::NAN; 2];
        model.dot_attenuated_into(&xbar, &input, &mut attenuated).unwrap();
        prop_assert_eq!(model.dot_attenuated(&xbar, &input).unwrap(), attenuated);
    }

    /// Paired (signed) `*_into` kernels are bit-identical to their
    /// allocating twins, digital and analog, with one scratch reused
    /// across both calls.
    #[test]
    fn paired_into_kernels_match(
        rows in 1usize..16,
        cols in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pair = PairedCrossbar::new(rows, cols, MlcSpec::new(4).unwrap());
        let weights: Vec<i32> = (0..rows * cols)
            .map(|_| rand::Rng::gen_range(&mut rng, -15i32..=15))
            .collect();
        pair.program_signed_matrix(&weights).unwrap();
        let input: Vec<u16> = (0..rows).map(|_| rand::Rng::gen_range(&mut rng, 0u16..8)).collect();

        let mut scratch = PairScratch::new();
        let mut out = Vec::new();
        pair.dot_signed_into(&input, &mut scratch, &mut out).unwrap();
        prop_assert_eq!(&out, &pair.dot_signed(&input).unwrap());

        let noise = NoiseModel { program_sigma: 0.0, read_sigma: 0.02 };
        let mut rng_a = SmallRng::seed_from_u64(seed ^ 0xBEEF);
        let mut rng_b = SmallRng::seed_from_u64(seed ^ 0xBEEF);
        let reference = pair.dot_signed_analog(&input, 3, &noise, &mut rng_a).unwrap();
        let mut analog_out = Vec::new();
        pair.dot_signed_analog_into(&input, 3, &noise, &mut rng_b, &mut scratch, &mut analog_out)
            .unwrap();
        prop_assert_eq!(reference, analog_out);
    }
}
