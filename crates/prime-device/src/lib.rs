//! Behavioural ReRAM device models for the PRIME reproduction.
//!
//! This crate is the lowest substrate of the PRIME (ISCA 2016) stack: it
//! models metal-oxide ReRAM cells, their multi-level (MLC) resistance
//! encoding, and the crossbar arrays whose bitline current summation
//! performs analog matrix-vector multiplication — the primitive every
//! higher layer (peripheral circuits, FF subarrays, the mapping compiler,
//! and the evaluation simulator) builds on.
//!
//! # Examples
//!
//! Programming signed synaptic weights into a positive/negative crossbar
//! pair and evaluating a quantized dot product, exactly as an FF mat does:
//!
//! ```
//! use prime_device::{MlcSpec, PairedCrossbar};
//!
//! let mut mat = PairedCrossbar::new(3, 2, MlcSpec::new(4)?);
//! mat.program_signed_matrix(&[
//!     2, -1,
//!     0, 4,
//!     -3, 1,
//! ])?;
//! let bitline_sums = mat.dot_signed(&[1, 2, 1])?;
//! assert_eq!(bitline_sums, vec![1 * 2 - 1 * 3, -1 + 2 * 4 + 1]);
//! # Ok::<(), prime_device::DeviceError>(())
//! ```
//!
//! # Scratch-buffer contract
//!
//! Every dot-product kernel has an allocating form (`dot`, `dot_analog`,
//! `dot_signed`, `dot_signed_analog`, `dot_attenuated`) and an `*_into`
//! form writing into caller-owned buffers ([`Crossbar::dot_into`],
//! [`Crossbar::dot_analog_into`], [`PairedCrossbar::dot_signed_into`],
//! [`PairedCrossbar::dot_signed_analog_into`],
//! [`IrDropModel::dot_attenuated_into`]). The `*_into` forms share one
//! contract:
//!
//! * Output buffers are **cleared and resized** to the kernel's column
//!   count — callers never need to pre-size them, and stale contents are
//!   never read.
//! * Buffers only ever **grow**. After the first call at a given
//!   geometry, repeated calls perform **zero heap allocation**; this is
//!   what the batched inference engine in `prime-core` relies on for its
//!   steady-state allocation-free guarantee.
//! * On error the output buffer contents are unspecified (but the buffer
//!   stays valid for reuse).
//! * The two forms are **bit-identical**: `dot(x)` equals the buffer
//!   `dot_into(x, &mut out)` produces, RNG draw for RNG draw on the
//!   analog paths.
//!
//! [`PairScratch`] bundles the per-polarity intermediates the paired
//! kernels need, so callers hold a single reusable object.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod crossbar;
mod energy;
mod error;
mod ir_drop;
mod mlc;
mod noise;
mod retention;
mod timing;

pub use cell::{ReramCell, DEFAULT_ENDURANCE_WRITES, RESET_VOLTAGE_V, SET_VOLTAGE_V};
pub use crossbar::{Crossbar, PairScratch, PairedCrossbar, MAT_DIM, READ_VOLTAGE_V};
pub use energy::DeviceEnergy;
pub use error::DeviceError;
pub use ir_drop::IrDropModel;
pub use mlc::{MlcSpec, DEFAULT_R_OFF_OHM, DEFAULT_R_ON_OHM};
pub use noise::NoiseModel;
pub use retention::RetentionModel;
pub use timing::DeviceTiming;
