//! Wire-resistance (IR-drop) model for crossbar evaluation.
//!
//! In a large crossbar the wordline/bitline metal is not ideal: current
//! flowing to far cells drops voltage across the wire, so cells distant
//! from the drivers and sense amplifiers see attenuated signals. The
//! paper's reliability citation (\[74\], Liu et al., "Reduction and
//! IR-drop compensations techniques for reliable neuromorphic computing
//! systems") addresses exactly this. This module provides a first-order
//! attenuation model — each cell's effective contribution shrinks with
//! its wire distance — plus the standard compensation that pre-scales
//! programmed conductances to cancel the expected attenuation.

use serde::{Deserialize, Serialize};

use crate::crossbar::Crossbar;
use crate::error::DeviceError;

/// First-order IR-drop model: the effective voltage at cell `(r, c)` is
/// the driven voltage times `1 / (1 + alpha * (r + c))`, where `alpha`
/// is the ratio of per-segment wire resistance to the average cell
/// resistance.
///
/// # Examples
///
/// ```
/// use prime_device::IrDropModel;
///
/// let model = IrDropModel::new(1e-4);
/// // The far corner of a 256x256 array sees a few percent attenuation.
/// let far = model.attenuation(255, 255);
/// assert!(far < 1.0 && far > 0.9);
/// assert_eq!(model.attenuation(0, 0), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IrDropModel {
    /// Per-segment wire resistance relative to the average cell
    /// resistance (dimensionless; ~1e-4 for a 256x256 array with ~1 ohm
    /// segments and ~10 kohm cells).
    pub alpha: f64,
}

impl IrDropModel {
    /// Creates a model with the given relative segment resistance.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha >= 0.0, "wire resistance cannot be negative");
        IrDropModel { alpha }
    }

    /// An ideal-wire model (no attenuation).
    pub fn ideal() -> Self {
        IrDropModel { alpha: 0.0 }
    }

    /// A typical 256x256 array: ~1 ohm segments against ~10 kohm cells.
    pub fn typical() -> Self {
        IrDropModel { alpha: 1e-4 }
    }

    /// The signal attenuation factor at cell `(row, col)`.
    pub fn attenuation(&self, row: usize, col: usize) -> f64 {
        1.0 / (1.0 + self.alpha * (row + col) as f64)
    }

    /// Evaluates a crossbar dot product under IR drop: each cell's
    /// contribution is scaled by its attenuation.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InputLengthMismatch`] for a wrong-length
    /// input.
    pub fn dot_attenuated(&self, xbar: &Crossbar, input: &[u16]) -> Result<Vec<f64>, DeviceError> {
        let mut out = Vec::new();
        self.dot_attenuated_into(xbar, input, &mut out)?;
        Ok(out)
    }

    /// [`dot_attenuated`](Self::dot_attenuated) into a caller-owned buffer.
    ///
    /// `out` is cleared and resized to `cols`; repeated calls at the same
    /// geometry perform no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InputLengthMismatch`] for a wrong-length
    /// input.
    pub fn dot_attenuated_into(
        &self,
        xbar: &Crossbar,
        input: &[u16],
        out: &mut Vec<f64>,
    ) -> Result<(), DeviceError> {
        if input.len() != xbar.rows() {
            return Err(DeviceError::InputLengthMismatch {
                got: input.len(),
                expected: xbar.rows(),
            });
        }
        out.clear();
        out.resize(xbar.cols(), 0.0);
        for (r, &a) in input.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (c, o) in out.iter_mut().enumerate() {
                let w = f64::from(xbar.level(r, c)?);
                *o += f64::from(a) * w * self.attenuation(r, c);
            }
        }
        Ok(())
    }

    /// The compensation scheme of ref \[74\]: pre-scale each weight so its
    /// attenuated contribution equals the nominal one. Returns the
    /// compensated level matrix (clamped to the cell's range, so extreme
    /// corners of very resistive arrays may remain under-compensated).
    ///
    /// # Errors
    ///
    /// Propagates [`DeviceError::IndexOutOfBounds`] from the level reads
    /// (unreachable for a well-formed crossbar, but typed rather than a
    /// panic path).
    pub fn compensate_weights(&self, xbar: &Crossbar) -> Result<Vec<u16>, DeviceError> {
        let max = xbar.spec().max_level();
        let mut out = Vec::with_capacity(xbar.rows() * xbar.cols());
        for r in 0..xbar.rows() {
            for c in 0..xbar.cols() {
                let w = f64::from(xbar.level(r, c)?);
                let compensated = (w / self.attenuation(r, c)).round();
                let clamped = compensated.clamp(0.0, f64::from(max)) as u64;
                out.push(u16::try_from(clamped).unwrap_or(max));
            }
        }
        Ok(out)
    }

    /// Worst-case relative error of an uncompensated `rows x cols` array:
    /// the far-corner attenuation deficit.
    pub fn worst_case_error(&self, rows: usize, cols: usize) -> f64 {
        1.0 - self.attenuation(rows.saturating_sub(1), cols.saturating_sub(1))
    }
}

impl Default for IrDropModel {
    fn default() -> Self {
        IrDropModel::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlc::MlcSpec;

    fn test_xbar() -> Crossbar {
        let mut xbar = Crossbar::new(64, 32, MlcSpec::new(4).unwrap());
        let weights: Vec<u16> = (0..64 * 32).map(|i| ((i % 15) + 1) as u16).collect();
        xbar.program_matrix(&weights).unwrap();
        xbar
    }

    #[test]
    fn attenuation_decreases_with_distance() {
        let m = IrDropModel::typical();
        assert_eq!(m.attenuation(0, 0), 1.0);
        assert!(m.attenuation(100, 100) < m.attenuation(10, 10));
        assert!(m.attenuation(255, 255) > 0.9);
    }

    #[test]
    fn ideal_wires_match_exact_dot() {
        let xbar = test_xbar();
        let input: Vec<u16> = (0..64).map(|i| (i % 8) as u16).collect();
        let exact = xbar.dot(&input).unwrap();
        let attenuated = IrDropModel::ideal().dot_attenuated(&xbar, &input).unwrap();
        for (e, a) in exact.iter().zip(&attenuated) {
            assert!((*e as f64 - a).abs() < 1e-9);
        }
    }

    #[test]
    fn ir_drop_underestimates_far_columns_more() {
        let xbar = test_xbar();
        let input: Vec<u16> = vec![7; 64];
        let exact = xbar.dot(&input).unwrap();
        let drooped = IrDropModel::new(1e-3).dot_attenuated(&xbar, &input).unwrap();
        let err = |c: usize| (exact[c] as f64 - drooped[c]) / exact[c] as f64;
        assert!(err(31) > err(0), "far column must droop more");
        assert!(err(31) > 0.0);
    }

    #[test]
    fn compensation_recovers_the_exact_result() {
        let mut xbar = test_xbar();
        let model = IrDropModel::new(2e-4);
        let input: Vec<u16> = (0..64).map(|i| ((i * 3) % 8) as u16).collect();
        let exact: Vec<f64> = xbar.dot(&input).unwrap().iter().map(|&v| v as f64).collect();
        let compensated = model.compensate_weights(&xbar).unwrap();
        xbar.program_matrix(&compensated).unwrap();
        let recovered = model.dot_attenuated(&xbar, &input).unwrap();
        for (c, (e, r)) in exact.iter().zip(&recovered).enumerate() {
            // Compensation rounds to integer levels: allow ~5% residual.
            let rel = (e - r).abs() / e.max(1.0);
            assert!(rel < 0.05, "col {c}: exact {e} vs recovered {r}");
        }
    }

    #[test]
    fn worst_case_error_matches_far_corner() {
        let m = IrDropModel::new(1e-4);
        let expected = 1.0 - m.attenuation(255, 255);
        assert!((m.worst_case_error(256, 256) - expected).abs() < 1e-12);
        assert_eq!(IrDropModel::ideal().worst_case_error(256, 256), 0.0);
    }

    #[test]
    fn dot_attenuated_validates_input() {
        let xbar = test_xbar();
        assert!(IrDropModel::typical().dot_attenuated(&xbar, &[1, 2]).is_err());
    }
}
