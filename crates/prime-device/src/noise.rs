//! Device non-ideality model.
//!
//! ReRAM programming is analog: a feedback write algorithm tunes the cell
//! resistance to about 1 % precision for an isolated cell and about 3 %
//! for cells inside a crossbar array (paper §III-D, refs \[31\]\[65\]).
//! This module injects that programming error, plus optional read noise,
//! into the analog crossbar evaluation so the precision scheme can be
//! validated against realistic devices.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Relative (multiplicative) noise magnitudes for device operations.
///
/// All sigmas are fractions of the nominal value; `0.03` means a 3 %
/// standard deviation.
///
/// # Examples
///
/// ```
/// use prime_device::NoiseModel;
///
/// let ideal = NoiseModel::ideal();
/// assert!(!ideal.is_noisy());
/// let realistic = NoiseModel::crossbar_default();
/// assert!(realistic.is_noisy());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Relative standard deviation of programmed conductance.
    pub program_sigma: f64,
    /// Relative standard deviation added to each bitline current at read time.
    pub read_sigma: f64,
}

impl NoiseModel {
    /// A perfectly ideal device: no programming or read noise.
    pub fn ideal() -> Self {
        NoiseModel { program_sigma: 0.0, read_sigma: 0.0 }
    }

    /// Single-cell tuning precision: ~1 % programming error \[31\].
    pub fn single_cell_default() -> Self {
        NoiseModel { program_sigma: 0.01, read_sigma: 0.0 }
    }

    /// In-crossbar tuning precision: ~3 % programming error \[31\]\[65\].
    pub fn crossbar_default() -> Self {
        NoiseModel { program_sigma: 0.03, read_sigma: 0.0 }
    }

    /// Whether any noise source is enabled.
    pub fn is_noisy(&self) -> bool {
        self.program_sigma > 0.0 || self.read_sigma > 0.0
    }

    /// Perturbs a programmed conductance with Gaussian error.
    ///
    /// The result is clamped to be non-negative (conductance cannot be
    /// negative).
    pub fn perturb_conductance<R: Rng + ?Sized>(&self, nominal: f64, rng: &mut R) -> f64 {
        if self.program_sigma == 0.0 {
            return nominal;
        }
        (nominal * (1.0 + self.program_sigma * sample_standard_normal(rng))).max(0.0)
    }

    /// Perturbs a sensed bitline current with Gaussian read noise.
    pub fn perturb_current<R: Rng + ?Sized>(&self, nominal: f64, rng: &mut R) -> f64 {
        if self.read_sigma == 0.0 {
            return nominal;
        }
        nominal * (1.0 + self.read_sigma * sample_standard_normal(rng))
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::ideal()
    }
}

/// Samples a standard normal variate via the Box-Muller transform.
///
/// Implemented locally so the crate needs no statistics dependency.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_model_is_identity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = NoiseModel::ideal();
        assert_eq!(m.perturb_conductance(1e-3, &mut rng), 1e-3);
        assert_eq!(m.perturb_current(0.5, &mut rng), 0.5);
    }

    #[test]
    fn perturbed_conductance_is_non_negative() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = NoiseModel { program_sigma: 2.0, read_sigma: 0.0 };
        for _ in 0..1000 {
            assert!(m.perturb_conductance(1e-3, &mut rng) >= 0.0);
        }
    }

    #[test]
    fn noise_statistics_match_sigma() {
        let mut rng = SmallRng::seed_from_u64(3);
        let m = NoiseModel::crossbar_default();
        let nominal = 1e-3;
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| m.perturb_conductance(nominal, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        let rel_std = var.sqrt() / nominal;
        assert!((mean - nominal).abs() / nominal < 0.005, "mean drifted: {mean}");
        assert!((rel_std - 0.03).abs() < 0.005, "sigma off: {rel_std}");
    }

    #[test]
    fn standard_normal_has_unit_variance() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
