//! ReRAM crossbar arrays.
//!
//! The crossbar is the area-efficient ReRAM organization (paper Fig. 1(c))
//! and the computational heart of PRIME: input data are applied as analog
//! wordline voltages, synaptic weights are the programmed cell
//! conductances, and the current accumulating on each bitline is the
//! matrix-vector product `sum_i a_i * w_ij` (paper Fig. 2(b)).
//!
//! Two views are provided:
//!
//! * an **integer-exact** evaluation ([`Crossbar::dot`]) that computes the
//!   ideal quantized dot product — the architectural contract the rest of
//!   the system is built on; and
//! * an **analog** evaluation ([`Crossbar::dot_analog`]) through the
//!   conductance/voltage domain, including programming noise, from which
//!   the digital result is recovered the way the peripheral sense circuit
//!   does (offset cancellation via the known input sum, then scaling).
//!
//! Because positive and negative weights cannot both be conductances, a
//! weight matrix is split across two arrays ([`PairedCrossbar`]) whose
//! bitline results are subtracted by the column-multiplexer circuitry.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::DeviceError;
use crate::mlc::MlcSpec;
use crate::noise::NoiseModel;

/// Read voltage applied to wordlines at the maximum input level, in volts.
///
/// PRIME drives computation inputs well below the 2 V SET/RESET voltage so
/// reads never disturb the stored weights.
pub const READ_VOLTAGE_V: f64 = 0.5;

/// PRIME's mat dimension: crossbars are 256x256 cells (paper §V-A).
pub const MAT_DIM: usize = 256;

/// A single ReRAM crossbar array of `rows x cols` multi-level cells.
///
/// # Examples
///
/// ```
/// use prime_device::{Crossbar, MlcSpec};
///
/// let mut xbar = Crossbar::new(4, 2, MlcSpec::new(4)?);
/// xbar.program(0, 0, 3)?;
/// xbar.program(1, 0, 5)?;
/// let out = xbar.dot(&[2, 1, 0, 0])?;
/// assert_eq!(out, vec![2 * 3 + 1 * 5, 0]);
/// # Ok::<(), prime_device::DeviceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Crossbar {
    rows: usize,
    cols: usize,
    spec: MlcSpec,
    /// Nominal digital level of each cell, row-major.
    levels: Vec<u16>,
    /// Actual programmed conductance of each cell, row-major. `None` means
    /// every cell sits at its *nominal* conductance (derived from its level
    /// on demand); the vector is only materialized when something perturbs
    /// conductances away from nominal (noisy programming, retention drift),
    /// so an ideally-programmed array stores levels only.
    conductances: Option<Vec<f64>>,
    /// Total cell writes performed, for wear accounting.
    writes: u64,
}

impl Crossbar {
    /// Creates a crossbar with every cell in the HRS (level 0).
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize, spec: MlcSpec) -> Self {
        assert!(rows > 0 && cols > 0, "crossbar dimensions must be non-zero");
        Crossbar {
            rows,
            cols,
            spec,
            levels: vec![0; rows * cols],
            conductances: None,
            writes: 0,
        }
    }

    /// Creates a PRIME-sized (256x256) crossbar with the default 4-bit cells.
    pub fn mat() -> Self {
        Crossbar::new(MAT_DIM, MAT_DIM, MlcSpec::default())
    }

    /// Number of wordlines (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bitlines (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The cell specification shared by every cell in the array.
    pub fn spec(&self) -> MlcSpec {
        self.spec
    }

    /// Total cell writes performed on this array.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Bytes of heap state resident for this array (levels plus the analog
    /// conductance shadow when it has been materialized).
    pub fn state_bytes(&self) -> usize {
        self.levels.len() * core::mem::size_of::<u16>()
            + self
                .conductances
                .as_ref()
                .map_or(0, |g| g.len() * core::mem::size_of::<f64>())
    }

    /// Whether the analog conductance shadow is materialized (it only is
    /// after noisy programming or retention drift perturbed cells away from
    /// their nominal conductances).
    pub fn conductances_materialized(&self) -> bool {
        self.conductances.is_some()
    }

    /// Materializes the conductance shadow at nominal values.
    fn materialize_conductances(&mut self) -> &mut Vec<f64> {
        let spec = self.spec;
        let levels = &self.levels;
        self.conductances
            .get_or_insert_with(|| levels.iter().map(|&l| spec.conductance(l)).collect())
    }

    fn index(&self, row: usize, col: usize) -> Result<usize, DeviceError> {
        if row >= self.rows || col >= self.cols {
            return Err(DeviceError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok(row * self.cols + col)
    }

    /// Reads the nominal digital level of a cell.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::IndexOutOfBounds`] for an invalid coordinate.
    pub fn level(&self, row: usize, col: usize) -> Result<u16, DeviceError> {
        Ok(self.levels[self.index(row, col)?])
    }

    /// Programs one cell to `level` with an ideal (noise-free) write.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::IndexOutOfBounds`] or
    /// [`DeviceError::LevelOutOfRange`].
    pub fn program(&mut self, row: usize, col: usize, level: u16) -> Result<(), DeviceError> {
        let idx = self.index(row, col)?;
        let g = self.spec.try_conductance(level)?;
        self.levels[idx] = level;
        if let Some(conductances) = &mut self.conductances {
            conductances[idx] = g;
        }
        self.writes += 1;
        Ok(())
    }

    /// Programs the whole array from a row-major level matrix.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ShapeMismatch`] if `matrix` is not
    /// `rows * cols` long, or [`DeviceError::LevelOutOfRange`] if any level
    /// is unrepresentable (the array is left unmodified in that case).
    pub fn program_matrix(&mut self, matrix: &[u16]) -> Result<(), DeviceError> {
        if matrix.len() != self.rows * self.cols {
            return Err(DeviceError::ShapeMismatch {
                got: (matrix.len(), 1),
                expected: (self.rows, self.cols),
            });
        }
        // Validate before mutating so a failed bulk program is atomic.
        for &level in matrix {
            self.spec.try_conductance(level)?;
        }
        self.levels.copy_from_slice(matrix);
        if let Some(conductances) = &mut self.conductances {
            for (g, &level) in conductances.iter_mut().zip(matrix) {
                *g = self.spec.conductance(level);
            }
        }
        self.writes += (self.rows * self.cols) as u64;
        Ok(())
    }

    /// Programs a rectangular region in one chunked write: `levels` is a
    /// row-major `(levels.len() / width) x width` block written with its
    /// top-left cell at `(row0, col0)`.
    ///
    /// This is the deploy-path bulk write: one validation sweep, then
    /// per-row slice copies, instead of a bounds/conductance check per cell.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ShapeMismatch`] if `levels` is not a whole
    /// number of `width`-sized rows, [`DeviceError::IndexOutOfBounds`] if
    /// the region overhangs the array, or [`DeviceError::LevelOutOfRange`]
    /// for an unrepresentable level. The array is unmodified on error.
    pub fn program_region(
        &mut self,
        row0: usize,
        col0: usize,
        width: usize,
        levels: &[u16],
    ) -> Result<(), DeviceError> {
        if width == 0 || !levels.len().is_multiple_of(width) {
            return Err(DeviceError::ShapeMismatch {
                got: (levels.len(), 1),
                expected: (levels.len().div_ceil(width.max(1)), width),
            });
        }
        let height = levels.len() / width;
        if row0 + height > self.rows || col0 + width > self.cols {
            return Err(DeviceError::IndexOutOfBounds {
                row: row0 + height - 1,
                col: col0 + width - 1,
                rows: self.rows,
                cols: self.cols,
            });
        }
        // Validate before mutating so a failed bulk program is atomic.
        for &level in levels {
            self.spec.try_conductance(level)?;
        }
        let spec = self.spec;
        for (r, block_row) in levels.chunks_exact(width).enumerate() {
            let base = (row0 + r) * self.cols + col0;
            self.levels[base..base + width].copy_from_slice(block_row);
            if let Some(conductances) = &mut self.conductances {
                for (g, &level) in conductances[base..base + width].iter_mut().zip(block_row) {
                    *g = spec.conductance(level);
                }
            }
        }
        self.writes += levels.len() as u64;
        Ok(())
    }

    /// Scales every programmed conductance by `factor` (retention drift;
    /// the nominal digital levels are unaffected).
    pub fn scale_conductances(&mut self, factor: f64) {
        for g in self.materialize_conductances() {
            *g *= factor;
        }
    }

    /// Re-programs every cell to its nominal level through a noisy write,
    /// modelling the feedback tuning precision of real devices.
    ///
    /// Only the analog conductances are perturbed; the nominal levels (and
    /// therefore [`dot`](Self::dot)) are unaffected.
    pub fn apply_program_noise<R: Rng + ?Sized>(&mut self, noise: &NoiseModel, rng: &mut R) {
        let spec = self.spec;
        let levels = &self.levels;
        let conductances = self
            .conductances
            .get_or_insert_with(|| Vec::with_capacity(levels.len()));
        conductances.clear();
        conductances.extend(
            levels
                .iter()
                .map(|&level| noise.perturb_conductance(spec.conductance(level), rng)),
        );
    }

    /// Integer-exact matrix-vector product: `out[j] = sum_i input[i] * level[i][j]`.
    ///
    /// `input` holds digital wordline levels (the DAC codes); the result is
    /// the full-precision accumulation before any sense-amplifier
    /// truncation.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InputLengthMismatch`] if `input.len() != rows`.
    pub fn dot(&self, input: &[u16]) -> Result<Vec<u64>, DeviceError> {
        let mut out = Vec::new();
        self.dot_into(input, &mut out)?;
        Ok(out)
    }

    /// [`dot`](Self::dot) into a caller-owned buffer.
    ///
    /// `out` is cleared and resized to `cols`; once its capacity has grown
    /// to `cols` no further heap allocation occurs on repeated calls (see
    /// the crate-level scratch-buffer contract).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InputLengthMismatch`] if `input.len() != rows`.
    pub fn dot_into(&self, input: &[u16], out: &mut Vec<u64>) -> Result<(), DeviceError> {
        if input.len() != self.rows {
            return Err(DeviceError::InputLengthMismatch {
                got: input.len(),
                expected: self.rows,
            });
        }
        self.dot_span_into(input, self.cols, out)
    }

    /// [`dot_into`](Self::dot_into) restricted to the first `span` bitlines.
    ///
    /// The sense amplifiers only multiplex the bitlines a mat's composing
    /// scheme actually consumes, so a caller that knows how many physical
    /// columns carry programmed weights can skip sensing the unprogrammed
    /// remainder. `span` is clamped to `cols`; `out` is cleared and resized
    /// to the clamped span. `input` may cover only a prefix of the rows:
    /// wordlines past `input.len()` are undriven (grounded) and contribute
    /// nothing to any bitline.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InputLengthMismatch`] if `input.len() > rows`.
    pub fn dot_span_into(
        &self,
        input: &[u16],
        span: usize,
        out: &mut Vec<u64>,
    ) -> Result<(), DeviceError> {
        if input.len() > self.rows {
            return Err(DeviceError::InputLengthMismatch {
                got: input.len(),
                expected: self.rows,
            });
        }
        let span = span.min(self.cols);
        out.clear();
        out.resize(span, 0);
        for (row, &a) in input.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let a = u64::from(a);
            let base = row * self.cols;
            let row_levels = &self.levels[base..base + span];
            for (o, &w) in out.iter_mut().zip(row_levels) {
                *o += a * u64::from(w);
            }
        }
        Ok(())
    }

    /// Analog matrix-vector product through the voltage/conductance domain.
    ///
    /// `input` are DAC codes quantized to `input_bits`; the wordline voltage
    /// for code `a` is `READ_VOLTAGE_V * a / (2^input_bits - 1)`. Returns
    /// the raw bitline currents in amperes (optionally read-noise
    /// perturbed).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InputLengthMismatch`] for a wrong-length
    /// input, or [`DeviceError::InputLevelOutOfRange`] if a code exceeds
    /// the DAC resolution.
    pub fn dot_analog<R: Rng + ?Sized>(
        &self,
        input: &[u16],
        input_bits: u8,
        noise: &NoiseModel,
        rng: &mut R,
    ) -> Result<Vec<f64>, DeviceError> {
        let mut currents = Vec::new();
        self.dot_analog_into(input, input_bits, noise, rng, &mut currents)?;
        Ok(currents)
    }

    /// [`dot_analog`](Self::dot_analog) into a caller-owned buffer.
    ///
    /// `currents` is cleared and resized to `cols`; repeated calls at the
    /// same geometry perform no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InputLengthMismatch`] for a wrong-length
    /// input, or [`DeviceError::InputLevelOutOfRange`] if a code exceeds
    /// the DAC resolution.
    pub fn dot_analog_into<R: Rng + ?Sized>(
        &self,
        input: &[u16],
        input_bits: u8,
        noise: &NoiseModel,
        rng: &mut R,
        currents: &mut Vec<f64>,
    ) -> Result<(), DeviceError> {
        if input.len() != self.rows {
            return Err(DeviceError::InputLengthMismatch {
                got: input.len(),
                expected: self.rows,
            });
        }
        self.dot_analog_span_into(input, input_bits, self.cols, noise, rng, currents)
    }

    /// [`dot_analog_into`](Self::dot_analog_into) restricted to the first
    /// `span` bitlines.
    ///
    /// Unsensed bitlines draw no read-noise samples: the RNG advances once
    /// per *sensed* column, so restricting the span changes the stream of
    /// noise draws relative to a full-width read (see the runner's
    /// RNG-order note in DESIGN.md §11). `span` is clamped to `cols`;
    /// `input` may cover only a prefix of the rows (undriven wordlines
    /// are grounded).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InputLengthMismatch`] for an over-length
    /// input, or [`DeviceError::InputLevelOutOfRange`] if a code exceeds
    /// the DAC resolution.
    pub fn dot_analog_span_into<R: Rng + ?Sized>(
        &self,
        input: &[u16],
        input_bits: u8,
        span: usize,
        noise: &NoiseModel,
        rng: &mut R,
        currents: &mut Vec<f64>,
    ) -> Result<(), DeviceError> {
        if input.len() > self.rows {
            return Err(DeviceError::InputLengthMismatch {
                got: input.len(),
                expected: self.rows,
            });
        }
        let max_code = (1u32 << input_bits) - 1;
        for &a in input {
            if u32::from(a) > max_code {
                return Err(DeviceError::InputLevelOutOfRange {
                    requested: a,
                    levels: u16::try_from((max_code + 1).min(u32::from(u16::MAX)))
                        .unwrap_or(u16::MAX),
                });
            }
        }
        let span = span.min(self.cols);
        currents.clear();
        currents.resize(span, 0.0);
        for (row, &a) in input.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let v = READ_VOLTAGE_V * f64::from(a) / f64::from(max_code);
            let base = row * self.cols;
            match &self.conductances {
                Some(conductances) => {
                    let row_g = &conductances[base..base + span];
                    for (c, &g) in currents.iter_mut().zip(row_g) {
                        *c += v * g;
                    }
                }
                // Unmaterialized shadow: every cell is at its nominal
                // conductance, derived from the level on the fly. The
                // products are bit-identical to the materialized path
                // because `spec.conductance` is deterministic.
                None => {
                    let row_levels = &self.levels[base..base + span];
                    for (c, &l) in currents.iter_mut().zip(row_levels) {
                        *c += v * self.spec.conductance(l);
                    }
                }
            }
        }
        for c in currents.iter_mut() {
            *c = noise.perturb_current(*c, rng);
        }
        Ok(())
    }

    /// Recovers the digital dot product from an analog bitline current.
    ///
    /// The HRS conductance is non-zero, so every active input contributes a
    /// weight-independent offset `v_i * g_off`. Real arrays cancel it with a
    /// dummy column of level-0 cells; architecturally the offset equals
    /// `g_off`-scaled input sum, which this decoder subtracts before scaling
    /// by the conductance LSB. `input_sum` is `sum_i input[i]` (the dummy
    /// column's own decoded value).
    pub fn decode_current(&self, current: f64, input_sum: u64, input_bits: u8) -> i64 {
        let max_code = f64::from((1u32 << input_bits) - 1);
        let v_lsb = READ_VOLTAGE_V / max_code;
        let g_span = self.spec.g_on() - self.spec.g_off();
        let g_lsb = g_span / f64::from(self.spec.max_level());
        let offset = v_lsb * self.spec.g_off() * input_sum as f64;
        (((current - offset) / (v_lsb * g_lsb)).round()) as i64
    }

    /// Memory-mode read of a whole row as bits (SLC view of the cells).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::IndexOutOfBounds`] for an invalid row.
    pub fn read_row_bits(&self, row: usize) -> Result<Vec<bool>, DeviceError> {
        self.index(row, 0)?;
        let base = row * self.cols;
        Ok(self.levels[base..base + self.cols]
            .iter()
            .map(|&l| u32::from(l) * 2 > u32::from(self.spec.max_level()))
            .collect())
    }

    /// Memory-mode write of a whole row of bits (cells driven to HRS/LRS).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::IndexOutOfBounds`] for an invalid row or
    /// [`DeviceError::InputLengthMismatch`] for a wrong-length bit vector.
    pub fn write_row_bits(&mut self, row: usize, bits: &[bool]) -> Result<(), DeviceError> {
        self.index(row, 0)?;
        if bits.len() != self.cols {
            return Err(DeviceError::InputLengthMismatch {
                got: bits.len(),
                expected: self.cols,
            });
        }
        let max = self.spec.max_level();
        for (col, &bit) in bits.iter().enumerate() {
            let level = if bit { max } else { 0 };
            self.program(row, col, level)?;
        }
        Ok(())
    }

    /// Morphs every cell to a new MLC spec (memory <-> computation mode),
    /// clamping stored levels to the new range.
    pub fn morph(&mut self, spec: MlcSpec) {
        self.spec = spec;
        for level in self.levels.iter_mut() {
            *level = (*level).min(spec.max_level());
        }
        // Re-programming every cell for the new mode resets any perturbed
        // conductances to nominal, so the shadow collapses back to lazy.
        self.conductances = None;
    }
}

/// Reusable per-polarity buffers for [`PairedCrossbar`] dot products.
///
/// Holding one of these across calls makes `dot_signed_into` /
/// `dot_signed_analog_into` allocation-free in steady state: each buffer
/// grows to the pair's column count on first use and is then reused.
#[derive(Debug, Default, Clone)]
pub struct PairScratch {
    pos: Vec<u64>,
    neg: Vec<u64>,
    pos_currents: Vec<f64>,
    neg_currents: Vec<f64>,
}

impl PairScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        PairScratch::default()
    }
}

/// A positive/negative crossbar pair sharing one input port.
///
/// Matrices with signed weights are implemented as two separate arrays —
/// one storing the positive part, one the magnitude of the negative part —
/// whose bitline results are subtracted by the analog subtraction unit
/// (paper §II-B, §III-E).
///
/// # Examples
///
/// ```
/// use prime_device::{MlcSpec, PairedCrossbar};
///
/// let mut pair = PairedCrossbar::new(2, 1, MlcSpec::new(4)?);
/// pair.program_signed(0, 0, 5)?;  // +5
/// pair.program_signed(1, 0, -3)?; // -3
/// assert_eq!(pair.dot_signed(&[1, 2])?, vec![5 - 6]);
/// # Ok::<(), prime_device::DeviceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairedCrossbar {
    positive: Crossbar,
    negative: Crossbar,
}

impl PairedCrossbar {
    /// Creates a pair of `rows x cols` arrays with all-zero weights.
    pub fn new(rows: usize, cols: usize, spec: MlcSpec) -> Self {
        PairedCrossbar {
            positive: Crossbar::new(rows, cols, spec),
            negative: Crossbar::new(rows, cols, spec),
        }
    }

    /// Creates a PRIME-sized (256x256) pair with default 4-bit cells.
    pub fn mat() -> Self {
        PairedCrossbar::new(MAT_DIM, MAT_DIM, MlcSpec::default())
    }

    /// Worst-case signed interval one bitline's differential partial sum
    /// can reach when `rows` wordlines drive inputs of magnitude at most
    /// `input_max` into pair cells of magnitude at most `weight_max`.
    /// The static counterpart of `calibrate_output_window`'s dynamic
    /// `2 * max_abs` calibration: the sense path never sees a value
    /// outside this span, so the interval analysis can propagate it
    /// without running a single evaluation. Saturates instead of
    /// wrapping so degenerate shapes stay ordered.
    pub fn sense_interval(rows: usize, input_max: i64, weight_max: i64) -> (i64, i64) {
        let rows = i64::try_from(rows).unwrap_or(i64::MAX);
        let hi = rows
            .saturating_mul(input_max.max(0))
            .saturating_mul(weight_max.max(0));
        (-hi, hi)
    }

    /// Number of wordlines.
    pub fn rows(&self) -> usize {
        self.positive.rows()
    }

    /// Number of bitlines per polarity array.
    pub fn cols(&self) -> usize {
        self.positive.cols()
    }

    /// The positive-weight array.
    pub fn positive(&self) -> &Crossbar {
        &self.positive
    }

    /// The negative-weight array.
    pub fn negative(&self) -> &Crossbar {
        &self.negative
    }

    /// Mutable access to the positive-weight array, for memory-mode writes
    /// and mode morphing where the two arrays act independently.
    pub fn positive_mut(&mut self) -> &mut Crossbar {
        &mut self.positive
    }

    /// Mutable access to the negative-weight array.
    pub fn negative_mut(&mut self) -> &mut Crossbar {
        &mut self.negative
    }

    /// Programs a signed weight: the magnitude goes to the polarity array
    /// matching the sign, zero to the other.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::LevelOutOfRange`] if `|weight|` exceeds the
    /// cell's level range, or [`DeviceError::IndexOutOfBounds`].
    pub fn program_signed(&mut self, row: usize, col: usize, weight: i32) -> Result<(), DeviceError> {
        let magnitude = weight.unsigned_abs();
        let max = u32::from(self.positive.spec().max_level());
        if magnitude > max {
            return Err(DeviceError::LevelOutOfRange {
                requested: u16::try_from(magnitude.min(u32::from(u16::MAX)))
                    .unwrap_or(u16::MAX),
                levels: self.positive.spec().levels(),
            });
        }
        // `magnitude <= max <= u16::MAX` here, so the conversion is exact.
        let level = u16::try_from(magnitude).unwrap_or(u16::MAX);
        if weight >= 0 {
            self.positive.program(row, col, level)?;
            self.negative.program(row, col, 0)?;
        } else {
            self.positive.program(row, col, 0)?;
            self.negative.program(row, col, level)?;
        }
        Ok(())
    }

    /// Programs the whole pair from a row-major signed weight matrix.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ShapeMismatch`] for a wrong-sized matrix or
    /// [`DeviceError::LevelOutOfRange`] for an unrepresentable magnitude.
    pub fn program_signed_matrix(&mut self, matrix: &[i32]) -> Result<(), DeviceError> {
        if matrix.len() != self.rows() * self.cols() {
            return Err(DeviceError::ShapeMismatch {
                got: (matrix.len(), 1),
                expected: (self.rows(), self.cols()),
            });
        }
        for (idx, &w) in matrix.iter().enumerate() {
            let (row, col) = (idx / self.cols(), idx % self.cols());
            self.program_signed(row, col, w)?;
        }
        Ok(())
    }

    /// Programs a rectangular region of signed weights in one chunked
    /// write per polarity array: `weights` is a row-major
    /// `(weights.len() / width) x width` block with its top-left cell at
    /// `(row0, col0)`. Magnitudes go to the polarity array matching each
    /// sign, zero to the other, exactly as per-cell
    /// [`program_signed`](Self::program_signed) would — but with one
    /// validation sweep and slice copies instead of four bounds-checked
    /// writes per weight.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ShapeMismatch`], [`DeviceError::IndexOutOfBounds`]
    /// or [`DeviceError::LevelOutOfRange`]; both arrays are unmodified on
    /// error.
    pub fn program_signed_region(
        &mut self,
        row0: usize,
        col0: usize,
        width: usize,
        weights: &[i32],
    ) -> Result<(), DeviceError> {
        if width == 0 || !weights.len().is_multiple_of(width) {
            return Err(DeviceError::ShapeMismatch {
                got: (weights.len(), 1),
                expected: (weights.len().div_ceil(width.max(1)), width),
            });
        }
        let max = u32::from(self.positive.spec().max_level());
        let mut pos = Vec::with_capacity(weights.len());
        let mut neg = Vec::with_capacity(weights.len());
        for &w in weights {
            let magnitude = w.unsigned_abs();
            if magnitude > max {
                return Err(DeviceError::LevelOutOfRange {
                    requested: u16::try_from(magnitude.min(u32::from(u16::MAX)))
                        .unwrap_or(u16::MAX),
                    levels: self.positive.spec().levels(),
                });
            }
            // `magnitude <= max <= u16::MAX` here, so the conversion is exact.
            let level = u16::try_from(magnitude).unwrap_or(u16::MAX);
            if w >= 0 {
                pos.push(level);
                neg.push(0);
            } else {
                pos.push(0);
                neg.push(level);
            }
        }
        self.positive.program_region(row0, col0, width, &pos)?;
        self.negative.program_region(row0, col0, width, &neg)
    }

    /// Bytes of heap state resident across both polarity arrays.
    pub fn state_bytes(&self) -> usize {
        self.positive.state_bytes() + self.negative.state_bytes()
    }

    /// Reads back the effective signed weight of a cell pair.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::IndexOutOfBounds`].
    pub fn signed_weight(&self, row: usize, col: usize) -> Result<i32, DeviceError> {
        let p = i32::from(self.positive.level(row, col)?);
        let n = i32::from(self.negative.level(row, col)?);
        Ok(p - n)
    }

    /// Signed integer-exact matrix-vector product: positive-array result
    /// minus negative-array result, as the subtraction unit produces.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InputLengthMismatch`].
    pub fn dot_signed(&self, input: &[u16]) -> Result<Vec<i64>, DeviceError> {
        let mut scratch = PairScratch::new();
        let mut out = Vec::new();
        self.dot_signed_into(input, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`dot_signed`](Self::dot_signed) into caller-owned buffers.
    ///
    /// `out` is cleared and resized to `cols`; with a reused `scratch`,
    /// repeated calls at the same geometry perform no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InputLengthMismatch`].
    pub fn dot_signed_into(
        &self,
        input: &[u16],
        scratch: &mut PairScratch,
        out: &mut Vec<i64>,
    ) -> Result<(), DeviceError> {
        if input.len() != self.positive.rows() {
            return Err(DeviceError::InputLengthMismatch {
                got: input.len(),
                expected: self.positive.rows(),
            });
        }
        self.dot_signed_span_into(input, self.positive.cols(), scratch, out)
    }

    /// [`dot_signed_into`](Self::dot_signed_into) restricted to the first
    /// `span` bitlines of both polarity arrays.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InputLengthMismatch`].
    pub fn dot_signed_span_into(
        &self,
        input: &[u16],
        span: usize,
        scratch: &mut PairScratch,
        out: &mut Vec<i64>,
    ) -> Result<(), DeviceError> {
        self.positive.dot_span_into(input, span, &mut scratch.pos)?;
        self.negative.dot_span_into(input, span, &mut scratch.neg)?;
        out.clear();
        out.extend(
            scratch
                .pos
                .iter()
                .zip(&scratch.neg)
                .map(|(&p, &n)| p as i64 - n as i64),
        );
        Ok(())
    }

    /// Applies programming noise to both polarity arrays.
    pub fn apply_program_noise<R: Rng + ?Sized>(&mut self, noise: &NoiseModel, rng: &mut R) {
        self.positive.apply_program_noise(noise, rng);
        self.negative.apply_program_noise(noise, rng);
    }

    /// Signed analog matrix-vector product: decodes both polarity arrays'
    /// currents and subtracts, returning integer results as sensed by an
    /// ideal (non-truncating) SA.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Crossbar::dot_analog`].
    pub fn dot_signed_analog<R: Rng + ?Sized>(
        &self,
        input: &[u16],
        input_bits: u8,
        noise: &NoiseModel,
        rng: &mut R,
    ) -> Result<Vec<i64>, DeviceError> {
        let mut scratch = PairScratch::new();
        let mut out = Vec::new();
        self.dot_signed_analog_into(input, input_bits, noise, rng, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`dot_signed_analog`](Self::dot_signed_analog) into caller-owned
    /// buffers.
    ///
    /// `out` is cleared and resized to `cols`; with a reused `scratch`,
    /// repeated calls at the same geometry perform no heap allocation.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Crossbar::dot_analog_into`].
    pub fn dot_signed_analog_into<R: Rng + ?Sized>(
        &self,
        input: &[u16],
        input_bits: u8,
        noise: &NoiseModel,
        rng: &mut R,
        scratch: &mut PairScratch,
        out: &mut Vec<i64>,
    ) -> Result<(), DeviceError> {
        if input.len() != self.positive.rows() {
            return Err(DeviceError::InputLengthMismatch {
                got: input.len(),
                expected: self.positive.rows(),
            });
        }
        self.dot_signed_analog_span_into(
            input,
            input_bits,
            self.positive.cols(),
            noise,
            rng,
            scratch,
            out,
        )
    }

    /// [`dot_signed_analog_into`](Self::dot_signed_analog_into) restricted
    /// to the first `span` bitlines of both polarity arrays.
    ///
    /// Only sensed bitlines draw read-noise samples, so the RNG stream
    /// depends on `span` (see [`Crossbar::dot_analog_span_into`]).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Crossbar::dot_analog_span_into`].
    #[allow(clippy::too_many_arguments)]
    pub fn dot_signed_analog_span_into<R: Rng + ?Sized>(
        &self,
        input: &[u16],
        input_bits: u8,
        span: usize,
        noise: &NoiseModel,
        rng: &mut R,
        scratch: &mut PairScratch,
        out: &mut Vec<i64>,
    ) -> Result<(), DeviceError> {
        let input_sum: u64 = input.iter().map(|&a| u64::from(a)).sum();
        self.positive.dot_analog_span_into(
            input,
            input_bits,
            span,
            noise,
            rng,
            &mut scratch.pos_currents,
        )?;
        self.negative.dot_analog_span_into(
            input,
            input_bits,
            span,
            noise,
            rng,
            &mut scratch.neg_currents,
        )?;
        out.clear();
        out.extend(scratch.pos_currents.iter().zip(&scratch.neg_currents).map(|(&p, &n)| {
            self.positive.decode_current(p, input_sum, input_bits)
                - self.negative.decode_current(n, input_sum, input_bits)
        }));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn reference_dot(matrix: &[u16], rows: usize, cols: usize, input: &[u16]) -> Vec<u64> {
        let mut out = vec![0u64; cols];
        for r in 0..rows {
            for c in 0..cols {
                out[c] += u64::from(input[r]) * u64::from(matrix[r * cols + c]);
            }
        }
        out
    }

    #[test]
    fn dot_matches_reference_on_small_matrix() {
        let mut xbar = Crossbar::new(3, 2, MlcSpec::new(4).unwrap());
        let m = [1u16, 2, 3, 4, 5, 6];
        xbar.program_matrix(&m).unwrap();
        let input = [7u16, 0, 2];
        assert_eq!(xbar.dot(&input).unwrap(), reference_dot(&m, 3, 2, &input));
    }

    #[test]
    fn dot_rejects_wrong_input_length() {
        let xbar = Crossbar::new(3, 2, MlcSpec::default());
        assert!(matches!(
            xbar.dot(&[1, 2]),
            Err(DeviceError::InputLengthMismatch { got: 2, expected: 3 })
        ));
    }

    #[test]
    fn program_matrix_is_atomic_on_failure() {
        let mut xbar = Crossbar::new(2, 2, MlcSpec::new(2).unwrap());
        xbar.program_matrix(&[1, 1, 1, 1]).unwrap();
        // Level 4 is out of range for 2-bit cells; nothing should change.
        assert!(xbar.program_matrix(&[2, 2, 2, 4]).is_err());
        assert_eq!(xbar.level(0, 0).unwrap(), 1);
        assert_eq!(xbar.level(1, 1).unwrap(), 1);
    }

    #[test]
    fn analog_decode_matches_exact_dot_without_noise() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut xbar = Crossbar::new(16, 8, MlcSpec::new(4).unwrap());
        let matrix: Vec<u16> = (0..16 * 8).map(|i| (i % 16) as u16).collect();
        xbar.program_matrix(&matrix).unwrap();
        let input: Vec<u16> = (0..16).map(|i| (i % 8) as u16).collect();
        let input_sum: u64 = input.iter().map(|&a| u64::from(a)).sum();
        let exact = xbar.dot(&input).unwrap();
        let currents = xbar.dot_analog(&input, 3, &NoiseModel::ideal(), &mut rng).unwrap();
        for (col, current) in currents.iter().enumerate() {
            assert_eq!(xbar.decode_current(*current, input_sum, 3), exact[col] as i64);
        }
    }

    #[test]
    fn analog_with_noise_stays_close_to_exact() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut xbar = Crossbar::new(64, 16, MlcSpec::new(4).unwrap());
        let matrix: Vec<u16> = (0..64 * 16).map(|i| ((i * 7) % 16) as u16).collect();
        xbar.program_matrix(&matrix).unwrap();
        xbar.apply_program_noise(&NoiseModel::crossbar_default(), &mut rng);
        let input: Vec<u16> = (0..64).map(|i| ((i * 3) % 8) as u16).collect();
        let input_sum: u64 = input.iter().map(|&a| u64::from(a)).sum();
        let exact = xbar.dot(&input).unwrap();
        let currents = xbar.dot_analog(&input, 3, &NoiseModel::ideal(), &mut rng).unwrap();
        for (col, current) in currents.iter().enumerate() {
            let decoded = xbar.decode_current(*current, input_sum, 3) as f64;
            let ideal = exact[col] as f64;
            // 3% conductance error over 64 accumulated terms stays within ~10%.
            assert!((decoded - ideal).abs() <= (ideal * 0.1).max(32.0), "col {col}: {decoded} vs {ideal}");
        }
    }

    #[test]
    fn dot_analog_rejects_over_range_code() {
        let xbar = Crossbar::new(2, 2, MlcSpec::default());
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(matches!(
            xbar.dot_analog(&[8, 0], 3, &NoiseModel::ideal(), &mut rng),
            Err(DeviceError::InputLevelOutOfRange { requested: 8, .. })
        ));
    }

    #[test]
    fn memory_mode_row_round_trip() {
        let mut xbar = Crossbar::new(4, 8, MlcSpec::slc());
        let bits = [true, false, true, true, false, false, true, false];
        xbar.write_row_bits(2, &bits).unwrap();
        assert_eq!(xbar.read_row_bits(2).unwrap(), bits.to_vec());
        assert_eq!(xbar.read_row_bits(0).unwrap(), vec![false; 8]);
    }

    #[test]
    fn morph_preserves_bits_between_modes() {
        let mut xbar = Crossbar::new(2, 4, MlcSpec::slc());
        xbar.write_row_bits(0, &[true, false, true, false]).unwrap();
        xbar.morph(MlcSpec::new(4).unwrap());
        xbar.morph(MlcSpec::slc());
        assert_eq!(xbar.read_row_bits(0).unwrap(), vec![true, false, true, false]);
    }

    #[test]
    fn paired_dot_handles_mixed_signs() {
        let mut pair = PairedCrossbar::new(3, 2, MlcSpec::new(4).unwrap());
        pair.program_signed_matrix(&[1, -2, 0, 4, -3, 5]).unwrap();
        let out = pair.dot_signed(&[2, 1, 1]).unwrap();
        // col0: 2*1 + 1*0 + 1*(-3) = -1 ; col1: 2*(-2) + 1*4 + 1*5 = 5
        assert_eq!(out, vec![-1, 5]);
    }

    #[test]
    fn paired_signed_weight_read_back() {
        let mut pair = PairedCrossbar::new(1, 1, MlcSpec::new(4).unwrap());
        pair.program_signed(0, 0, -9).unwrap();
        assert_eq!(pair.signed_weight(0, 0).unwrap(), -9);
        pair.program_signed(0, 0, 15).unwrap();
        assert_eq!(pair.signed_weight(0, 0).unwrap(), 15);
    }

    #[test]
    fn paired_rejects_over_range_magnitude() {
        let mut pair = PairedCrossbar::new(1, 1, MlcSpec::new(4).unwrap());
        assert!(pair.program_signed(0, 0, 16).is_err());
        assert!(pair.program_signed(0, 0, -16).is_err());
    }

    #[test]
    fn paired_analog_matches_exact_without_noise() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut pair = PairedCrossbar::new(8, 4, MlcSpec::new(4).unwrap());
        let matrix: Vec<i32> = (0..32).map(|i| (i % 21) - 10).collect();
        pair.program_signed_matrix(&matrix).unwrap();
        let input: Vec<u16> = (0..8).map(|i| (i % 8) as u16).collect();
        let exact = pair.dot_signed(&input).unwrap();
        let analog = pair
            .dot_signed_analog(&input, 3, &NoiseModel::ideal(), &mut rng)
            .unwrap();
        assert_eq!(exact, analog);
    }

    #[test]
    fn program_region_matches_per_cell_program() {
        let spec = MlcSpec::new(4).unwrap();
        let mut chunked = Crossbar::new(6, 5, spec);
        let mut reference = Crossbar::new(6, 5, spec);
        let block: Vec<u16> = (0..12).map(|i| (i % 16) as u16).collect();
        chunked.program_region(2, 1, 4, &block).unwrap();
        for (i, &level) in block.iter().enumerate() {
            reference.program(2 + i / 4, 1 + i % 4, level).unwrap();
        }
        assert_eq!(chunked.levels, reference.levels);
        assert_eq!(chunked.writes(), reference.writes());
    }

    #[test]
    fn program_region_is_atomic_on_failure() {
        let mut xbar = Crossbar::new(4, 4, MlcSpec::new(2).unwrap());
        // Overhangs the array.
        assert!(xbar.program_region(3, 0, 4, &[1; 8]).is_err());
        // Ragged block.
        assert!(xbar.program_region(0, 0, 3, &[1; 8]).is_err());
        // Unrepresentable level.
        assert!(xbar.program_region(0, 0, 4, &[1, 1, 1, 4]).is_err());
        assert_eq!(xbar.level(0, 0).unwrap(), 0);
        assert_eq!(xbar.writes(), 0);
    }

    #[test]
    fn conductances_stay_lazy_until_perturbed() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut xbar = Crossbar::new(8, 4, MlcSpec::new(4).unwrap());
        let matrix: Vec<u16> = (0..32).map(|i| (i % 16) as u16).collect();
        xbar.program_matrix(&matrix).unwrap();
        assert!(!xbar.conductances_materialized());
        let lazy_bytes = xbar.state_bytes();

        // Nominal analog reads don't materialize and still decode exactly.
        let input: Vec<u16> = (0..8).map(|i| (i % 8) as u16).collect();
        let input_sum: u64 = input.iter().map(|&a| u64::from(a)).sum();
        let exact = xbar.dot(&input).unwrap();
        let currents = xbar.dot_analog(&input, 3, &NoiseModel::ideal(), &mut rng).unwrap();
        for (col, current) in currents.iter().enumerate() {
            assert_eq!(xbar.decode_current(*current, input_sum, 3), exact[col] as i64);
        }
        assert!(!xbar.conductances_materialized());

        // Noisy programming materializes the shadow; morphing collapses it.
        xbar.apply_program_noise(&NoiseModel::crossbar_default(), &mut rng);
        assert!(xbar.conductances_materialized());
        assert!(xbar.state_bytes() > lazy_bytes);
        xbar.morph(MlcSpec::new(4).unwrap());
        assert!(!xbar.conductances_materialized());
        assert_eq!(xbar.state_bytes(), lazy_bytes);
    }

    #[test]
    fn paired_program_signed_region_matches_per_cell() {
        let spec = MlcSpec::new(4).unwrap();
        let mut chunked = PairedCrossbar::new(5, 4, spec);
        let mut reference = PairedCrossbar::new(5, 4, spec);
        let block: Vec<i32> = (0..12).map(|i| (i % 21) - 10).collect();
        chunked.program_signed_region(1, 1, 3, &block).unwrap();
        for (i, &w) in block.iter().enumerate() {
            reference.program_signed(1 + i / 3, 1 + i % 3, w).unwrap();
        }
        for row in 0..5 {
            for col in 0..4 {
                assert_eq!(
                    chunked.signed_weight(row, col).unwrap(),
                    reference.signed_weight(row, col).unwrap()
                );
            }
        }
        // Out-of-range magnitude leaves both arrays untouched.
        assert!(chunked.program_signed_region(0, 0, 2, &[1, -16]).is_err());
        assert_eq!(chunked.signed_weight(0, 0).unwrap(), 0);
    }

    #[test]
    fn mat_has_prime_dimensions() {
        let xbar = Crossbar::mat();
        assert_eq!((xbar.rows(), xbar.cols()), (256, 256));
        assert_eq!(xbar.spec().bits(), 4);
    }
}
