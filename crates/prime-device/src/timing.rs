//! Device-level timing parameters.
//!
//! ReRAM read latency is comparable to DRAM while writes are several times
//! slower (paper §II-A quotes ~5x); with the architectural optimizations of
//! Xu et al. \[20\], the optimized ReRAM main memory performs within 10 % of
//! DRAM. The figures here are the per-operation device latencies consumed
//! by the memory timing model and by the FF-subarray compute pipeline.

use serde::{Deserialize, Serialize};

/// Latencies of elementary ReRAM device operations, in nanoseconds.
///
/// # Examples
///
/// ```
/// use prime_device::DeviceTiming;
///
/// let t = DeviceTiming::default();
/// assert!(t.write_ns > t.read_ns); // ReRAM writes are much slower than reads
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceTiming {
    /// Array read (sense) latency for a memory-mode row access.
    pub read_ns: f64,
    /// SET/RESET write latency for a memory-mode (SLC) cell.
    pub write_ns: f64,
    /// Feedback-tuned MLC program-and-verify latency per cell write, used
    /// when synaptic weights are (re)programmed into an FF mat.
    pub mlc_program_ns: f64,
    /// One analog matrix-vector evaluation of a full crossbar: wordline
    /// settle + current integration, before SA conversion.
    pub compute_ns: f64,
    /// One conversion step of the reconfigurable SA (per output bit).
    pub sense_per_bit_ns: f64,
}

impl DeviceTiming {
    /// Timing for the performance-optimized ReRAM design adopted by PRIME.
    ///
    /// Read/write latencies follow the Table IV memory timing (tCL ≈ 9.8 ns
    /// sense, tWR ≈ 41.4 ns write restore); the crossbar evaluation and SA
    /// conversion latencies follow the dot-product-engine literature the
    /// paper builds on (tens of nanoseconds per analog evaluation).
    pub fn prime_default() -> Self {
        DeviceTiming {
            read_ns: 9.8,
            write_ns: 41.4,
            mlc_program_ns: 200.0,
            compute_ns: 30.0,
            sense_per_bit_ns: 5.0,
        }
    }

    /// Latency of one full FF-mat computation cycle producing `out_bits`-bit
    /// outputs: analog evaluate + SA conversion.
    pub fn mat_cycle_ns(&self, out_bits: u8) -> f64 {
        self.compute_ns + self.sense_per_bit_ns * f64::from(out_bits)
    }

    /// Latency to program an `rows x cols` weight matrix, assuming
    /// row-parallel MLC programming (one program-verify pass per row).
    pub fn program_matrix_ns(&self, rows: usize) -> f64 {
        self.mlc_program_ns * rows as f64
    }
}

impl Default for DeviceTiming {
    fn default() -> Self {
        DeviceTiming::prime_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_prime_profile() {
        assert_eq!(DeviceTiming::default(), DeviceTiming::prime_default());
    }

    #[test]
    fn mat_cycle_scales_with_output_precision() {
        let t = DeviceTiming::default();
        assert!(t.mat_cycle_ns(6) > t.mat_cycle_ns(1));
        assert!((t.mat_cycle_ns(6) - (30.0 + 5.0 * 6.0)).abs() < 1e-12);
    }

    #[test]
    fn matrix_programming_scales_with_rows() {
        let t = DeviceTiming::default();
        assert!((t.program_matrix_ns(256) - 256.0 * 200.0).abs() < 1e-9);
    }
}
