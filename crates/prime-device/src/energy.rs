//! Device-level energy parameters.
//!
//! ReRAM analog computation is the root of PRIME's energy advantage: one
//! crossbar evaluation performs `rows x cols` multiply-accumulates in a
//! single current-summation step, at a cost dominated by the read voltage
//! driving the array and the ADC/SA conversion. The constants here are the
//! per-operation energies consumed by the system-level energy model; they
//! follow the dot-product-engine / ISAAC-era literature the paper cites.

use serde::{Deserialize, Serialize};

/// Energies of elementary ReRAM device operations, in picojoules.
///
/// # Examples
///
/// ```
/// use prime_device::DeviceEnergy;
///
/// let e = DeviceEnergy::default();
/// let per_mac = e.mat_compute_pj(6) / (256.0 * 256.0);
/// assert!(per_mac < 0.1); // analog MACs are far below a pJ each
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceEnergy {
    /// Memory-mode row read energy (sense + restore).
    pub read_row_pj: f64,
    /// Memory-mode row write energy.
    pub write_row_pj: f64,
    /// MLC program-verify energy per cell.
    pub mlc_program_per_cell_pj: f64,
    /// One analog evaluation of a full 256x256 crossbar (array biasing).
    pub crossbar_eval_pj: f64,
    /// One reconfigurable-SA conversion, per output bit, per bitline.
    pub sense_per_bit_pj: f64,
    /// Peripheral analog units (subtraction + sigmoid) per bitline evaluation.
    pub analog_peripheral_pj: f64,
}

impl DeviceEnergy {
    /// Default energy profile for the PRIME 256x256 mat.
    pub fn prime_default() -> Self {
        DeviceEnergy {
            read_row_pj: 50.0,
            write_row_pj: 250.0,
            mlc_program_per_cell_pj: 10.0,
            crossbar_eval_pj: 300.0,
            sense_per_bit_pj: 0.5,
            analog_peripheral_pj: 0.4,
        }
    }

    /// Energy of one full FF-mat computation cycle with `out_bits`-bit
    /// outputs over `cols` active bitlines: array evaluation + per-bitline
    /// analog periphery + SA conversions.
    pub fn mat_compute_with_cols_pj(&self, out_bits: u8, cols: usize) -> f64 {
        self.crossbar_eval_pj
            + (self.analog_peripheral_pj + self.sense_per_bit_pj * f64::from(out_bits))
                * cols as f64
    }

    /// Energy of one full-width (256-bitline) FF-mat computation cycle.
    pub fn mat_compute_pj(&self, out_bits: u8) -> f64 {
        self.mat_compute_with_cols_pj(out_bits, crate::crossbar::MAT_DIM)
    }

    /// Energy to program an `rows x cols` weight matrix into MLC cells.
    pub fn program_matrix_pj(&self, rows: usize, cols: usize) -> f64 {
        self.mlc_program_per_cell_pj * (rows * cols) as f64
    }
}

impl Default for DeviceEnergy {
    fn default() -> Self {
        DeviceEnergy::prime_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_prime_profile() {
        assert_eq!(DeviceEnergy::default(), DeviceEnergy::prime_default());
    }

    #[test]
    fn compute_energy_grows_with_precision_and_width() {
        let e = DeviceEnergy::default();
        assert!(e.mat_compute_pj(6) > e.mat_compute_pj(3));
        assert!(e.mat_compute_with_cols_pj(6, 256) > e.mat_compute_with_cols_pj(6, 16));
    }

    #[test]
    fn program_energy_scales_with_cells() {
        let e = DeviceEnergy::default();
        assert!((e.program_matrix_pj(256, 256) - 10.0 * 65536.0).abs() < 1e-9);
    }
}
