//! Behavioural model of a single metal-oxide ReRAM cell.
//!
//! A cell is a metal-insulator-metal stack whose resistance is switched by
//! applying voltages across it: a positive SET pulse moves it towards the
//! low-resistance state (LRS, logic `1`), a negative RESET pulse towards
//! the high-resistance state (HRS, logic `0`). With a feedback write
//! algorithm the resistance can be tuned to one of `2^bits` levels
//! ([`MlcSpec`]). Reported ReRAM endurance is up to `10^12` cycles
//! (paper §II-A), which this model tracks per cell.

use serde::{Deserialize, Serialize};

use crate::error::DeviceError;
use crate::mlc::MlcSpec;

/// Reported write endurance of ReRAM devices (paper §II-A, \[21\]\[22\]).
pub const DEFAULT_ENDURANCE_WRITES: u64 = 1_000_000_000_000;

/// SET voltage for the modelled Pt/TiO2-x/Pt device, in volts (paper §V-A).
pub const SET_VOLTAGE_V: f64 = 2.0;
/// RESET voltage magnitude for the modelled device, in volts (paper §V-A).
pub const RESET_VOLTAGE_V: f64 = 2.0;

/// A single ReRAM cell holding one of `2^bits` resistance levels.
///
/// # Examples
///
/// ```
/// use prime_device::{MlcSpec, ReramCell};
///
/// let mut cell = ReramCell::new(MlcSpec::new(4)?);
/// cell.program(9)?;
/// assert_eq!(cell.level(), 9);
/// # Ok::<(), prime_device::DeviceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReramCell {
    spec: MlcSpec,
    level: u16,
    writes: u64,
    endurance: u64,
}

impl ReramCell {
    /// Creates a fresh cell in the HRS (level 0, logic `0`) state.
    pub fn new(spec: MlcSpec) -> Self {
        ReramCell { spec, level: 0, writes: 0, endurance: DEFAULT_ENDURANCE_WRITES }
    }

    /// Creates a cell with an explicit endurance budget, for wear studies.
    pub fn with_endurance(spec: MlcSpec, endurance: u64) -> Self {
        ReramCell { spec, level: 0, writes: 0, endurance }
    }

    /// The cell's multi-level specification.
    pub fn spec(&self) -> MlcSpec {
        self.spec
    }

    /// Current stored level.
    pub fn level(&self) -> u16 {
        self.level
    }

    /// Number of write (SET/RESET/program) operations performed so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Remaining write budget before the cell wears out.
    pub fn remaining_endurance(&self) -> u64 {
        self.endurance.saturating_sub(self.writes)
    }

    /// Current cell conductance in siemens.
    pub fn conductance(&self) -> f64 {
        self.spec.conductance(self.level)
    }

    /// Current cell resistance in ohms.
    pub fn resistance_ohm(&self) -> f64 {
        1.0 / self.conductance()
    }

    /// SET operation: drives the cell to the LRS (maximum level, logic `1`).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::EnduranceExhausted`] when the write budget is
    /// spent.
    pub fn set(&mut self) -> Result<(), DeviceError> {
        self.program(self.spec.max_level())
    }

    /// RESET operation: drives the cell to the HRS (level 0, logic `0`).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::EnduranceExhausted`] when the write budget is
    /// spent.
    pub fn reset(&mut self) -> Result<(), DeviceError> {
        self.program(0)
    }

    /// Programs the cell to an arbitrary MLC `level` using the feedback
    /// write algorithm (repeated partial SET/RESET pulses with verify).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::LevelOutOfRange`] if `level` is not
    /// representable, or [`DeviceError::EnduranceExhausted`] when the write
    /// budget is spent. A worn-out cell retains its previous level.
    pub fn program(&mut self, level: u16) -> Result<(), DeviceError> {
        if level > self.spec.max_level() {
            return Err(DeviceError::LevelOutOfRange {
                requested: level,
                levels: self.spec.levels(),
            });
        }
        if self.writes >= self.endurance {
            return Err(DeviceError::EnduranceExhausted { row: 0, col: 0 });
        }
        self.writes += 1;
        self.level = level;
        Ok(())
    }

    /// Reads the cell as a single bit, the memory-mode view: any level above
    /// the HRS/LRS midpoint reads as `1`.
    pub fn read_bit(&self) -> bool {
        u32::from(self.level) * 2 > u32::from(self.spec.max_level())
    }

    /// Re-interprets the cell under a different MLC spec, as happens when an
    /// FF subarray morphs between memory mode (SLC) and computation mode
    /// (multi-bit). The stored level is clamped to the new range.
    pub fn morph(&mut self, spec: MlcSpec) {
        self.level = self.level.min(spec.max_level());
        self.spec = spec;
    }
}

impl Default for ReramCell {
    fn default() -> Self {
        ReramCell::new(MlcSpec::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cell_is_hrs() {
        let cell = ReramCell::default();
        assert_eq!(cell.level(), 0);
        assert!(!cell.read_bit());
        assert!((cell.resistance_ohm() - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn set_reaches_lrs_and_reset_returns_to_hrs() {
        let mut cell = ReramCell::default();
        cell.set().unwrap();
        assert_eq!(cell.level(), 15);
        assert!(cell.read_bit());
        assert!((cell.resistance_ohm() - 1_000.0).abs() < 1e-9);
        cell.reset().unwrap();
        assert_eq!(cell.level(), 0);
    }

    #[test]
    fn program_rejects_out_of_range_level() {
        let mut cell = ReramCell::default();
        assert!(cell.program(16).is_err());
        assert_eq!(cell.level(), 0);
    }

    #[test]
    fn writes_are_counted() {
        let mut cell = ReramCell::default();
        cell.set().unwrap();
        cell.reset().unwrap();
        cell.program(7).unwrap();
        assert_eq!(cell.writes(), 3);
    }

    #[test]
    fn endurance_exhaustion_blocks_writes_and_preserves_state() {
        let mut cell = ReramCell::with_endurance(MlcSpec::default(), 2);
        cell.program(5).unwrap();
        cell.program(9).unwrap();
        assert_eq!(cell.remaining_endurance(), 0);
        assert_eq!(cell.program(1), Err(DeviceError::EnduranceExhausted { row: 0, col: 0 }));
        assert_eq!(cell.level(), 9);
    }

    #[test]
    fn morph_clamps_level_to_new_range() {
        let mut cell = ReramCell::default();
        cell.program(15).unwrap();
        cell.morph(MlcSpec::slc());
        assert_eq!(cell.level(), 1);
        assert!(cell.read_bit());
        cell.morph(MlcSpec::new(4).unwrap());
        assert_eq!(cell.level(), 1);
    }

    #[test]
    fn read_bit_uses_midpoint_threshold() {
        let mut cell = ReramCell::default();
        cell.program(7).unwrap();
        assert!(!cell.read_bit());
        cell.program(8).unwrap();
        assert!(cell.read_bit());
    }
}
