//! Conductance retention (drift) model.
//!
//! ReRAM is non-volatile, but programmed conductances relax slowly over
//! time — a second non-ideality (besides programming noise) that matters
//! for PRIME because synaptic weights stay resident in FF mats for
//! "tens of thousands" of inferences between reconfigurations (§V-B).
//! The standard empirical model is power-law drift,
//! `g(t) = g(t0) * (t / t0)^(-nu)`, with drift exponents around 0.005 to
//! 0.05 for metal-oxide devices. The model also provides the standard
//! countermeasure: periodic refresh (reprogramming), whose period can be
//! chosen from an error budget.

use serde::{Deserialize, Serialize};

use crate::crossbar::Crossbar;

/// Power-law conductance drift.
///
/// # Examples
///
/// ```
/// use prime_device::RetentionModel;
///
/// let drift = RetentionModel::typical();
/// // After a day the conductance has sagged by a few percent.
/// let factor = drift.decay_factor(86_400.0);
/// assert!(factor < 1.0 && factor > 0.85);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionModel {
    /// Drift exponent `nu` (dimensionless).
    pub nu: f64,
    /// Reference time `t0` in seconds (drift is measured from here).
    pub t0_s: f64,
}

impl RetentionModel {
    /// A typical metal-oxide profile: `nu = 0.01` from one second.
    pub fn typical() -> Self {
        RetentionModel { nu: 0.01, t0_s: 1.0 }
    }

    /// A drift-free device.
    pub fn ideal() -> Self {
        RetentionModel { nu: 0.0, t0_s: 1.0 }
    }

    /// Multiplicative conductance decay after `elapsed_s` seconds
    /// (1.0 at or before the reference time).
    pub fn decay_factor(&self, elapsed_s: f64) -> f64 {
        if elapsed_s <= self.t0_s || self.nu == 0.0 {
            1.0
        } else {
            (elapsed_s / self.t0_s).powf(-self.nu)
        }
    }

    /// Applies `elapsed_s` of drift to every programmed conductance of a
    /// crossbar (nominal digital levels are untouched; only the analog
    /// path sees the drift).
    pub fn apply(&self, xbar: &mut Crossbar, elapsed_s: f64) {
        let factor = self.decay_factor(elapsed_s);
        xbar.scale_conductances(factor);
    }

    /// The longest time the array can drift before the worst-case level
    /// error reaches half an MLC step (the re-verify criterion), for
    /// `levels` distinguishable levels.
    ///
    /// Solving `1 - (t/t0)^-nu = 1 / (2 * levels)` for `t`.
    pub fn refresh_period_s(&self, levels: u16) -> f64 {
        if self.nu == 0.0 {
            return f64::INFINITY;
        }
        let budget = 1.0 - 1.0 / (2.0 * f64::from(levels));
        self.t0_s * budget.powf(-1.0 / self.nu)
    }
}

impl Default for RetentionModel {
    fn default() -> Self {
        RetentionModel::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlc::MlcSpec;
    use crate::noise::NoiseModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn decay_is_monotonic_in_time() {
        let m = RetentionModel::typical();
        assert_eq!(m.decay_factor(0.5), 1.0);
        assert!(m.decay_factor(3600.0) > m.decay_factor(86_400.0));
        assert!(m.decay_factor(86_400.0) > 0.0);
    }

    #[test]
    fn ideal_model_never_drifts() {
        let m = RetentionModel::ideal();
        assert_eq!(m.decay_factor(1e12), 1.0);
        assert_eq!(m.refresh_period_s(16), f64::INFINITY);
    }

    #[test]
    fn drift_shrinks_analog_results_but_not_digital() {
        let mut xbar = Crossbar::new(8, 4, MlcSpec::new(4).unwrap());
        let weights: Vec<u16> = (0..32).map(|i| ((i % 15) + 1) as u16).collect();
        xbar.program_matrix(&weights).unwrap();
        let input = vec![7u16; 8];
        let digital_before = xbar.dot(&input).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let fresh = xbar.dot_analog(&input, 3, &NoiseModel::ideal(), &mut rng).unwrap();
        RetentionModel::typical().apply(&mut xbar, 30.0 * 86_400.0); // a month
        let aged = xbar.dot_analog(&input, 3, &NoiseModel::ideal(), &mut rng).unwrap();
        for (f, a) in fresh.iter().zip(&aged) {
            assert!(a < f, "drift must reduce currents: {a} vs {f}");
        }
        assert_eq!(xbar.dot(&input).unwrap(), digital_before, "digital view unchanged");
    }

    #[test]
    fn refresh_period_scales_with_precision() {
        let m = RetentionModel::typical();
        // Finer levels tolerate less drift: shorter refresh period.
        assert!(m.refresh_period_s(128) < m.refresh_period_s(16));
        assert!(m.refresh_period_s(16) < m.refresh_period_s(2));
        // At the refresh deadline the decay equals the half-step budget.
        let t = m.refresh_period_s(16);
        let decay = m.decay_factor(t);
        assert!((decay - (1.0 - 1.0 / 32.0)).abs() < 1e-9);
    }
}
