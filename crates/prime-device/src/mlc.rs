//! Multi-level-cell (MLC) specification.
//!
//! A metal-oxide ReRAM cell stores information as a resistance between a
//! low-resistance state (LRS, logic `1`) and a high-resistance state
//! (HRS, logic `0`). With finer write control the resistance can be tuned
//! to intermediate values, giving `2^bits` distinguishable levels per cell
//! (7-bit MLC has been demonstrated; PRIME assumes 4-bit cells for
//! computation and SLC cells for normal memory).

use serde::{Deserialize, Serialize};

use crate::error::DeviceError;

/// Default LRS ("on") resistance in ohms, Pt/TiO2-x/Pt device (paper §V-A).
pub const DEFAULT_R_ON_OHM: f64 = 1_000.0;
/// Default HRS ("off") resistance in ohms, Pt/TiO2-x/Pt device (paper §V-A).
pub const DEFAULT_R_OFF_OHM: f64 = 20_000.0;

/// Specification of a multi-level ReRAM cell.
///
/// Maps digital levels `0..2^bits` onto conductances spaced linearly between
/// the HRS conductance (level 0) and the LRS conductance (maximum level).
/// Linear-in-conductance spacing is what makes the crossbar's current
/// summation compute a dot product of the stored levels.
///
/// # Examples
///
/// ```
/// use prime_device::MlcSpec;
///
/// let spec = MlcSpec::new(4).unwrap(); // PRIME's 4-bit computation cell
/// assert_eq!(spec.levels(), 16);
/// assert!(spec.conductance(15) > spec.conductance(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlcSpec {
    bits: u8,
    r_on_ohm: f64,
    r_off_ohm: f64,
}

impl MlcSpec {
    /// Creates a spec with `bits` of storage per cell and the default
    /// Pt/TiO2-x/Pt resistance range (1 kΩ LRS, 20 kΩ HRS).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::LevelOutOfRange`] if `bits` is 0 or greater
    /// than 8 (beyond demonstrated MLC precision).
    pub fn new(bits: u8) -> Result<Self, DeviceError> {
        Self::with_resistance(bits, DEFAULT_R_ON_OHM, DEFAULT_R_OFF_OHM)
    }

    /// Creates a spec with an explicit resistance range.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::LevelOutOfRange`] if `bits` is 0 or greater
    /// than 8.
    ///
    /// # Panics
    ///
    /// Panics if `r_on_ohm <= 0`, `r_off_ohm <= 0`, or `r_on_ohm >= r_off_ohm`
    /// (a physically meaningless device).
    pub fn with_resistance(bits: u8, r_on_ohm: f64, r_off_ohm: f64) -> Result<Self, DeviceError> {
        if bits == 0 || bits > 8 {
            return Err(DeviceError::LevelOutOfRange {
                requested: u16::from(bits),
                levels: 0,
            });
        }
        assert!(r_on_ohm > 0.0, "LRS resistance must be positive");
        assert!(r_off_ohm > 0.0, "HRS resistance must be positive");
        assert!(r_on_ohm < r_off_ohm, "LRS resistance must be below HRS resistance");
        Ok(MlcSpec { bits, r_on_ohm, r_off_ohm })
    }

    /// Single-level-cell spec (1 bit), used when an FF subarray operates as
    /// normal memory.
    pub const fn slc() -> Self {
        // Constructed directly: 1 bit with the default resistances always
        // satisfies the `with_resistance` invariants.
        MlcSpec { bits: 1, r_on_ohm: DEFAULT_R_ON_OHM, r_off_ohm: DEFAULT_R_OFF_OHM }
    }

    /// Bits of storage per cell.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of representable levels (`2^bits`).
    pub fn levels(&self) -> u16 {
        1u16 << self.bits
    }

    /// Maximum representable level (`2^bits - 1`).
    pub fn max_level(&self) -> u16 {
        self.levels() - 1
    }

    /// Static value interval of one programmed cell: `[0, max_level]`.
    /// Interval hook for the precision-propagation analysis: every bound
    /// the abstract interpreter assumes about cell contents derives from
    /// this range, not from hard-coded constants.
    pub fn level_interval(&self) -> (i64, i64) {
        (0, i64::from(self.max_level()))
    }

    /// Largest weight magnitude two composed cells of this spec can hold
    /// (`high * levels + low`, both at `max_level` — e.g. 255 for the
    /// paper's 4-bit MLC pair). The static counterpart of the composing
    /// scheme's quantizer clamp.
    pub fn composed_weight_magnitude(&self) -> i64 {
        let m = i64::from(self.max_level());
        m * i64::from(self.levels()) + m
    }

    /// LRS ("on") resistance in ohms.
    pub fn r_on_ohm(&self) -> f64 {
        self.r_on_ohm
    }

    /// HRS ("off") resistance in ohms.
    pub fn r_off_ohm(&self) -> f64 {
        self.r_off_ohm
    }

    /// LRS conductance in siemens.
    pub fn g_on(&self) -> f64 {
        1.0 / self.r_on_ohm
    }

    /// HRS conductance in siemens.
    pub fn g_off(&self) -> f64 {
        1.0 / self.r_off_ohm
    }

    /// Conductance of a digital `level`, spaced linearly between
    /// [`g_off`](Self::g_off) (level 0) and [`g_on`](Self::g_on) (max level).
    ///
    /// Out-of-range levels clamp to the maximum: physically a cell cannot
    /// be programmed past the LRS. Use
    /// [`try_conductance`](Self::try_conductance) to reject out-of-range
    /// levels instead.
    pub fn conductance(&self, level: u16) -> f64 {
        let level = level.min(self.max_level());
        let span = self.g_on() - self.g_off();
        let frac = f64::from(level) / f64::from(self.max_level());
        self.g_off() + span * frac
    }

    /// Fallible variant of [`conductance`](Self::conductance).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::LevelOutOfRange`] if `level > max_level`.
    pub fn try_conductance(&self, level: u16) -> Result<f64, DeviceError> {
        if level > self.max_level() {
            return Err(DeviceError::LevelOutOfRange { requested: level, levels: self.levels() });
        }
        let span = self.g_on() - self.g_off();
        let frac = f64::from(level) / f64::from(self.max_level());
        Ok(self.g_off() + span * frac)
    }

    /// Inverse of [`conductance`](Self::conductance): quantizes an analog
    /// conductance (possibly perturbed by programming noise) back to the
    /// nearest digital level, clamping to the representable range.
    pub fn quantize_conductance(&self, g: f64) -> u16 {
        let span = self.g_on() - self.g_off();
        let frac = ((g - self.g_off()) / span).clamp(0.0, 1.0);
        let level = (frac * f64::from(self.max_level())).round();
        // `frac` is clamped to [0, 1], so the rounded level is within
        // [0, max_level] and the conversion is exact.
        u16::try_from(level as u64).unwrap_or(self.max_level())
    }
}

impl Default for MlcSpec {
    /// The PRIME computation-mode default: a 4-bit cell.
    fn default() -> Self {
        // Constructed directly: 4 bits with the default resistances always
        // satisfies the `with_resistance` invariants.
        MlcSpec { bits: 4, r_on_ohm: DEFAULT_R_ON_OHM, r_off_ohm: DEFAULT_R_OFF_OHM }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_follow_bits() {
        for bits in 1..=8u8 {
            let spec = MlcSpec::new(bits).unwrap();
            assert_eq!(spec.levels(), 1 << bits);
            assert_eq!(spec.max_level(), (1 << bits) - 1);
        }
    }

    #[test]
    fn rejects_invalid_bits() {
        assert!(MlcSpec::new(0).is_err());
        assert!(MlcSpec::new(9).is_err());
    }

    #[test]
    fn conductance_endpoints_match_resistances() {
        let spec = MlcSpec::default();
        assert!((spec.conductance(0) - 1.0 / 20_000.0).abs() < 1e-12);
        assert!((spec.conductance(15) - 1.0 / 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn conductance_is_monotonic_in_level() {
        let spec = MlcSpec::new(4).unwrap();
        for l in 0..spec.max_level() {
            assert!(spec.conductance(l) < spec.conductance(l + 1));
        }
    }

    #[test]
    fn conductance_rejects_out_of_range_level() {
        let spec = MlcSpec::new(2).unwrap();
        assert_eq!(
            spec.try_conductance(4),
            Err(DeviceError::LevelOutOfRange { requested: 4, levels: 4 })
        );
    }

    #[test]
    fn quantize_round_trips_every_level() {
        for bits in 1..=7u8 {
            let spec = MlcSpec::new(bits).unwrap();
            for l in 0..=spec.max_level() {
                assert_eq!(spec.quantize_conductance(spec.conductance(l)), l);
            }
        }
    }

    #[test]
    fn quantize_clamps_out_of_range_conductances() {
        let spec = MlcSpec::default();
        assert_eq!(spec.quantize_conductance(0.0), 0);
        assert_eq!(spec.quantize_conductance(1.0), spec.max_level());
    }

    #[test]
    fn slc_has_two_levels() {
        assert_eq!(MlcSpec::slc().levels(), 2);
    }
}
