//! Error types for the device layer.

use std::fmt;

/// Errors raised by ReRAM device-level operations.
///
/// Every public fallible function in this crate returns this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// A resistance level outside the cell's multi-level-cell range was requested.
    LevelOutOfRange {
        /// The requested level.
        requested: u16,
        /// The number of representable levels (`2^bits`).
        levels: u16,
    },
    /// A row or column index fell outside a crossbar array.
    IndexOutOfBounds {
        /// Requested row.
        row: usize,
        /// Requested column.
        col: usize,
        /// Array rows.
        rows: usize,
        /// Array columns.
        cols: usize,
    },
    /// The input vector length does not match the crossbar row count.
    InputLengthMismatch {
        /// Supplied input length.
        got: usize,
        /// Expected input length (crossbar rows).
        expected: usize,
    },
    /// The weight matrix shape does not match the crossbar dimensions.
    ShapeMismatch {
        /// Supplied rows, cols.
        got: (usize, usize),
        /// Expected rows, cols.
        expected: (usize, usize),
    },
    /// A cell exceeded its write endurance budget.
    EnduranceExhausted {
        /// Row of the worn-out cell.
        row: usize,
        /// Column of the worn-out cell.
        col: usize,
    },
    /// An input voltage level beyond the driver's DAC resolution was requested.
    InputLevelOutOfRange {
        /// Requested input level.
        requested: u16,
        /// Number of representable input levels.
        levels: u16,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::LevelOutOfRange { requested, levels } => {
                write!(f, "resistance level {requested} out of range (cell has {levels} levels)")
            }
            DeviceError::IndexOutOfBounds { row, col, rows, cols } => {
                write!(f, "cell index ({row}, {col}) out of bounds for {rows}x{cols} array")
            }
            DeviceError::InputLengthMismatch { got, expected } => {
                write!(f, "input vector length {got} does not match crossbar rows {expected}")
            }
            DeviceError::ShapeMismatch { got, expected } => {
                write!(
                    f,
                    "weight matrix shape {}x{} does not match crossbar {}x{}",
                    got.0, got.1, expected.0, expected.1
                )
            }
            DeviceError::EnduranceExhausted { row, col } => {
                write!(f, "cell ({row}, {col}) exceeded its write endurance")
            }
            DeviceError::InputLevelOutOfRange { requested, levels } => {
                write!(f, "input level {requested} out of range (driver has {levels} levels)")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = DeviceError::LevelOutOfRange { requested: 99, levels: 16 };
        let s = e.to_string();
        assert!(s.starts_with("resistance level 99"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }

    #[test]
    fn display_shape_mismatch() {
        let e = DeviceError::ShapeMismatch { got: (2, 3), expected: (4, 5) };
        assert_eq!(e.to_string(), "weight matrix shape 2x3 does not match crossbar 4x5");
    }
}
