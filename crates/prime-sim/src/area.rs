//! Area-overhead model (paper §V-D, Fig. 12).
//!
//! PRIME adds no processor — only modified peripheral circuits in the FF
//! subarrays — so its area cost is small: with two FF subarrays and one
//! Buffer subarray per bank the paper reports **5.76 %** total chip
//! overhead. Inside an FF mat the added circuits enlarge the mat by
//! **60 %**: the multi-level voltage driver accounts for 23 points, the
//! subtraction + sigmoid circuits for 29, and the control/multiplexers
//! etc. for 8 (all relative to the original mat area).

use serde::{Deserialize, Serialize};

use prime_compiler::{map_network, CompileOptions, HwTarget};
use prime_nn::MlBench;

/// The FF-mat area overhead decomposition, as fractions of the original
/// mat area.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatAreaBreakdown {
    /// Multi-level voltage wordline driver (Fig. 4 A).
    pub driver: f64,
    /// Subtraction and sigmoid circuits (Fig. 4 B).
    pub subtraction_sigmoid: f64,
    /// Control, multiplexers, and miscellaneous (Fig. 4 C/E).
    pub control_mux: f64,
}

impl MatAreaBreakdown {
    /// The paper's figures: 23 % + 29 % + 8 % = 60 % mat-area increase.
    pub fn paper() -> Self {
        MatAreaBreakdown { driver: 0.23, subtraction_sigmoid: 0.29, control_mux: 0.08 }
    }

    /// Total mat-area increase.
    pub fn total(&self) -> f64 {
        self.driver + self.subtraction_sigmoid + self.control_mux
    }
}

/// The chip-level area model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Mat-level overhead decomposition.
    pub mat: MatAreaBreakdown,
    /// Fraction of each bank's area occupied by FF subarrays in the
    /// paper's floorplan (the paper's 5.76 % total implies roughly 9.6 %
    /// of the bank is FF at a 60 % mat increase).
    pub ff_bank_fraction: f64,
}

impl AreaModel {
    /// The paper's model: 5.76 % chip overhead from the 60 % mat increase.
    pub fn paper() -> Self {
        AreaModel { mat: MatAreaBreakdown::paper(), ff_bank_fraction: 0.096 }
    }

    /// Total chip-area overhead fraction.
    pub fn chip_overhead(&self) -> f64 {
        self.ff_bank_fraction * self.mat.total()
    }
}

/// FF-subarray utilization for one workload, before and after the
/// replication optimization (paper §V-D: 39.8 % -> 75.9 % averaged over
/// MlBench without VGG-D; 53.9 % -> 73.6 % for VGG-D).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationRow {
    /// Workload name.
    pub benchmark: String,
    /// Utilization with `CompileOptions { replicate: false }`.
    pub before: f64,
    /// Utilization with replication enabled.
    pub after: f64,
}

/// Measures FF utilization before/after replication for every MlBench
/// workload on the default target. A workload that fails to map (it
/// cannot on the paper's target, but a shrunken one could overflow) is
/// omitted from the table rather than aborting the report.
pub fn utilization_table() -> Vec<UtilizationRow> {
    let hw = HwTarget::prime_default();
    MlBench::ALL
        .iter()
        .filter_map(|bench| {
            let spec = bench.spec();
            let before = map_network(&spec, &hw, CompileOptions { replicate: false, ..CompileOptions::default() })
                .ok()?
                .utilization_before;
            let after = map_network(&spec, &hw, CompileOptions { replicate: true, ..CompileOptions::default() })
                .ok()?
                .utilization_after;
            Some(UtilizationRow { benchmark: bench.name().to_string(), before, after })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_breakdown_sums_to_sixty_percent() {
        let m = MatAreaBreakdown::paper();
        assert!((m.total() - 0.60).abs() < 1e-12);
    }

    #[test]
    fn chip_overhead_matches_paper() {
        let a = AreaModel::paper();
        assert!((a.chip_overhead() - 0.0576).abs() < 1e-4);
    }

    #[test]
    fn replication_raises_utilization_everywhere() {
        for row in utilization_table() {
            assert!(row.after >= row.before, "{}: {} -> {}", row.benchmark, row.before, row.after);
            assert!(row.before > 0.0 && row.after <= 1.0);
        }
    }

    #[test]
    fn vgg_utilization_is_in_the_paper_band() {
        let rows = utilization_table();
        let vgg = rows.iter().find(|r| r.benchmark == "VGG-D").unwrap();
        // Paper: 53.9 % before, 73.6 % after. Our mapping lands close.
        assert!(vgg.before > 0.35 && vgg.before < 0.70, "before {}", vgg.before);
        assert!(vgg.after > vgg.before, "after {}", vgg.after);
    }
}
