//! Result types shared by all machine models.

use serde::{Deserialize, Serialize};

/// A compute/buffer/memory split of time or energy — the axes of the
/// paper's Fig. 9 (execution-time breakdown) and Fig. 11 (energy
/// breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Arithmetic (CPU/NPU datapath or ReRAM crossbar evaluation).
    pub compute: f64,
    /// On-chip buffers (NPU SRAM buffers or PRIME's Buffer subarrays).
    pub buffer: f64,
    /// Main-memory access (off-chip bus, in-stack path, or GDL traffic).
    pub memory: f64,
}

impl Breakdown {
    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.compute + self.buffer + self.memory
    }

    /// Component-wise addition.
    pub fn add(&self, other: &Breakdown) -> Breakdown {
        Breakdown {
            compute: self.compute + other.compute,
            buffer: self.buffer + other.buffer,
            memory: self.memory + other.memory,
        }
    }

    /// Component-wise scaling.
    pub fn scale(&self, factor: f64) -> Breakdown {
        Breakdown {
            compute: self.compute * factor,
            buffer: self.buffer * factor,
            memory: self.memory * factor,
        }
    }

    /// Fraction of the total in each component (zeros when empty).
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t == 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (self.compute / t, self.buffer / t, self.memory / t)
        }
    }
}

/// The outcome of running one benchmark on one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Machine name (as it appears in the figures).
    pub machine: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Images in the batch.
    pub batch: u32,
    /// Wall-clock latency for the whole batch, ns (parallel hardware
    /// overlaps images; serial components accumulate).
    pub latency_ns: f64,
    /// Serial time decomposition for the whole batch, ns. `time.total()`
    /// can exceed `latency_ns` on parallel machines.
    pub time_ns: Breakdown,
    /// Energy for the whole batch, pJ.
    pub energy_pj: Breakdown,
}

impl RunResult {
    /// Total energy in pJ.
    pub fn total_energy_pj(&self) -> f64 {
        self.energy_pj.total()
    }

    /// Per-image latency in ns.
    pub fn latency_per_image_ns(&self) -> f64 {
        self.latency_ns / f64::from(self.batch.max(1))
    }

    /// Speedup of this run relative to a baseline run of the same
    /// benchmark and batch.
    pub fn speedup_vs(&self, baseline: &RunResult) -> f64 {
        baseline.latency_ns / self.latency_ns
    }

    /// Energy saving factor relative to a baseline run.
    pub fn energy_saving_vs(&self, baseline: &RunResult) -> f64 {
        baseline.total_energy_pj() / self.total_energy_pj()
    }
}

/// Geometric mean of a non-empty slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_arithmetic() {
        let a = Breakdown { compute: 1.0, buffer: 2.0, memory: 3.0 };
        let b = a.add(&a).scale(0.5);
        assert_eq!(b, a);
        assert_eq!(a.total(), 6.0);
        let (c, bu, m) = a.fractions();
        assert!((c - 1.0 / 6.0).abs() < 1e-12);
        assert!((bu - 2.0 / 6.0).abs() < 1e-12);
        assert!((m - 0.5).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_energy_saving() {
        let base = RunResult {
            machine: "cpu".into(),
            benchmark: "x".into(),
            batch: 1,
            latency_ns: 100.0,
            time_ns: Breakdown::default(),
            energy_pj: Breakdown { compute: 1000.0, buffer: 0.0, memory: 0.0 },
        };
        let fast = RunResult {
            machine: "prime".into(),
            benchmark: "x".into(),
            batch: 1,
            latency_ns: 2.0,
            time_ns: Breakdown::default(),
            energy_pj: Breakdown { compute: 10.0, buffer: 0.0, memory: 0.0 },
        };
        assert_eq!(fast.speedup_vs(&base), 50.0);
        assert_eq!(fast.energy_saving_vs(&base), 100.0);
    }

    #[test]
    fn geomean_matches_definition() {
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geomean(&[8.0]) - 8.0).abs() < 1e-12);
    }
}
