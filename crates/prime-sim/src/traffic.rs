//! Per-layer data-traffic accounting derived from a network's shape.
//!
//! Every machine model consumes the same per-inference quantities: MAC
//! operations, weight bytes, and activation bytes, at the machine's own
//! element width. This module derives them from `NetworkSpec`s so VGG-D
//! never needs materialized weights.

use prime_nn::{LayerSpec, NetworkSpec};

/// Traffic of one layer for one inference, in elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerTraffic {
    /// MAC operations.
    pub macs: u64,
    /// Synaptic weights read.
    pub weights: u64,
    /// Input activations read.
    pub inputs: u64,
    /// Output activations written.
    pub outputs: u64,
}

/// Computes the per-layer traffic of one inference.
pub fn layer_traffic(layer: &LayerSpec) -> LayerTraffic {
    LayerTraffic {
        macs: layer.mac_ops(),
        weights: layer.synapses(),
        inputs: layer.inputs() as u64,
        outputs: layer.outputs() as u64,
    }
}

/// Whole-network traffic summary for one inference, in elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkTraffic {
    /// Total MACs.
    pub macs: u64,
    /// Total weights (the model size).
    pub weights: u64,
    /// Network input elements.
    pub network_inputs: u64,
    /// Network output elements.
    pub network_outputs: u64,
    /// Inter-layer activation elements (written by one layer, read by the
    /// next; spills to memory when buffers are too small).
    pub intermediate: u64,
}

/// Computes whole-network traffic for one inference.
pub fn network_traffic(spec: &NetworkSpec) -> NetworkTraffic {
    let layers = spec.layers();
    let macs = layers.iter().map(|l| l.mac_ops()).sum();
    let weights = layers.iter().map(|l| l.synapses()).sum();
    let network_inputs = spec.inputs() as u64;
    let network_outputs = spec.outputs() as u64;
    let intermediate: u64 =
        layers.iter().take(layers.len().saturating_sub(1)).map(|l| l.outputs() as u64).sum();
    NetworkTraffic { macs, weights, network_inputs, network_outputs, intermediate }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prime_nn::MlBench;

    #[test]
    fn mlp_s_traffic_matches_topology() {
        let t = network_traffic(&MlBench::MlpS.spec());
        assert_eq!(t.macs, 784 * 500 + 500 * 250 + 250 * 10);
        assert_eq!(t.weights, t.macs); // every FC weight is used once
        assert_eq!(t.network_inputs, 784);
        assert_eq!(t.network_outputs, 10);
        assert_eq!(t.intermediate, 500 + 250);
    }

    #[test]
    fn conv_reuses_weights_across_positions() {
        let spec = MlBench::Cnn1.spec();
        let conv = layer_traffic(&spec.layers()[0]);
        // 24x24 output positions reuse the same 125 kernel weights.
        assert_eq!(conv.weights, 5 * 25);
        assert_eq!(conv.macs, 5 * 24 * 24 * 25);
        assert!(conv.macs > conv.weights * 100);
    }

    #[test]
    fn vgg_model_size_matches_paper() {
        let t = network_traffic(&MlBench::VggD.spec());
        assert!((t.weights as f64 / 1.38e8 - 1.0).abs() < 0.02);
    }
}
