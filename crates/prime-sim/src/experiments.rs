//! The paper's evaluation experiments: one submodule per figure.
//!
//! Each submodule produces a serializable result struct that the
//! `prime-bench` binaries print as the same rows/series the paper
//! reports; EXPERIMENTS.md records paper-vs-measured for every one.

use serde::{Deserialize, Serialize};

use prime_nn::MlBench;

use crate::machines::{CpuMachine, Machine, NpuMachine, PrimeMachine};
use crate::params::EVAL_BATCH;
use crate::result::{geomean, Breakdown, RunResult};

/// Runs every machine on one benchmark at the evaluation batch size.
fn run_all(bench: MlBench) -> (RunResult, RunResult, RunResult, RunResult, RunResult) {
    let spec = bench.spec();
    (
        CpuMachine::new().run(&spec, EVAL_BATCH),
        NpuMachine::co_processor().run(&spec, EVAL_BATCH),
        NpuMachine::pim(1).run(&spec, EVAL_BATCH),
        NpuMachine::pim(64).run(&spec, EVAL_BATCH),
        PrimeMachine::new().run(&spec, EVAL_BATCH),
    )
}

/// Figure 6: classification accuracy vs input/weight precision.
pub mod fig6 {
    use super::*;
    use prime_nn::{
        evaluate, evaluate_quantized, train_sgd, Activation, DigitGenerator, FullyConnected,
        Layer, Network, TrainConfig, IMAGE_PIXELS, NUM_CLASSES,
    };
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Sweep configuration.
    #[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
    pub struct Config {
        /// Training samples.
        pub train_samples: usize,
        /// Test samples.
        pub test_samples: usize,
        /// Hidden-layer width of the classifier.
        pub hidden: usize,
        /// Training epochs.
        pub epochs: usize,
        /// RNG seed (data + init + shuffling).
        pub seed: u64,
        /// Highest precision swept (1..=max_bits for inputs and weights).
        pub max_bits: u8,
    }

    impl Config {
        /// The full sweep used by the figure binary.
        pub fn full() -> Self {
            Config {
                train_samples: 1500,
                test_samples: 500,
                hidden: 48,
                epochs: 6,
                seed: 20160618,
                max_bits: 8,
            }
        }

        /// A reduced sweep that keeps unit tests fast.
        pub fn quick() -> Self {
            Config {
                train_samples: 600,
                test_samples: 200,
                hidden: 32,
                epochs: 4,
                seed: 11,
                max_bits: 4,
            }
        }
    }

    /// The sweep result: `accuracy[weight_bits - 1][input_bits - 1]`.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct Result {
        /// Configuration used.
        pub config: Config,
        /// Floating-point test accuracy (the paper's "float" reference).
        pub float_accuracy: f64,
        /// Quantized accuracy grid, indexed `[weight_bits-1][input_bits-1]`.
        pub accuracy: Vec<Vec<f64>>,
    }

    impl Result {
        /// Accuracy at a precision point.
        pub fn at(&self, input_bits: u8, weight_bits: u8) -> f64 {
            self.accuracy[usize::from(weight_bits) - 1][usize::from(input_bits) - 1]
        }
    }

    /// Trains the classifier on synthetic digits and sweeps dynamic
    /// fixed-point input/weight precision (paper Fig. 6; MNIST is
    /// substituted per DESIGN.md §4).
    ///
    /// # Errors
    ///
    /// Propagates [`prime_nn::NnError`] from training or evaluation —
    /// only possible if the generated classifier itself is broken.
    pub fn run(config: Config) -> std::result::Result<Result, prime_nn::NnError> {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let gen = DigitGenerator::default();
        let train = gen.dataset(config.train_samples, &mut rng);
        let test = gen.dataset(config.test_samples, &mut rng);
        let mut net = Network::new(vec![
            Layer::Fc(FullyConnected::new(IMAGE_PIXELS, config.hidden, Activation::Sigmoid)),
            Layer::Fc(FullyConnected::new(config.hidden, NUM_CLASSES, Activation::Identity)),
        ])?;
        net.init_random(&mut rng);
        let tc = TrainConfig { epochs: config.epochs, ..TrainConfig::quick() };
        train_sgd(&mut net, &train, tc, &mut rng)?;
        let float_accuracy = evaluate(&net, &test)?;
        let mut accuracy = Vec::new();
        for wbits in 1..=config.max_bits {
            let mut row = Vec::new();
            for ibits in 1..=config.max_bits {
                row.push(evaluate_quantized(&net, &test, ibits, wbits)?);
            }
            accuracy.push(row);
        }
        Ok(Result { config, float_accuracy, accuracy })
    }
}

/// Figure 8: performance speedups over the CPU-only baseline.
pub mod fig8 {
    use super::*;

    /// One benchmark's speedups (vs CPU).
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct Row {
        /// Benchmark name.
        pub benchmark: String,
        /// pNPU-co speedup.
        pub pnpu_co: f64,
        /// pNPU-pim-x1 speedup.
        pub pnpu_pim_x1: f64,
        /// pNPU-pim-x64 speedup.
        pub pnpu_pim_x64: f64,
        /// PRIME speedup.
        pub prime: f64,
    }

    /// The full figure: per-benchmark rows plus the geometric mean.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct Result {
        /// Per-benchmark speedups.
        pub rows: Vec<Row>,
        /// Geometric-mean row ("gmean" in the figure).
        pub gmean: Row,
    }

    /// Runs all machines on all benchmarks at batch 64.
    pub fn run() -> Result {
        let mut rows = Vec::new();
        for bench in MlBench::ALL {
            let (cpu, co, p1, p64, prime) = run_all(bench);
            rows.push(Row {
                benchmark: bench.name().to_string(),
                pnpu_co: co.speedup_vs(&cpu),
                pnpu_pim_x1: p1.speedup_vs(&cpu),
                pnpu_pim_x64: p64.speedup_vs(&cpu),
                prime: prime.speedup_vs(&cpu),
            });
        }
        let gmean = Row {
            benchmark: "gmean".to_string(),
            pnpu_co: geomean(&rows.iter().map(|r| r.pnpu_co).collect::<Vec<_>>()),
            pnpu_pim_x1: geomean(&rows.iter().map(|r| r.pnpu_pim_x1).collect::<Vec<_>>()),
            pnpu_pim_x64: geomean(&rows.iter().map(|r| r.pnpu_pim_x64).collect::<Vec<_>>()),
            prime: geomean(&rows.iter().map(|r| r.prime).collect::<Vec<_>>()),
        };
        Result { rows, gmean }
    }
}

/// Figure 9: execution-time breakdown normalized to pNPU-co.
pub mod fig9 {
    use super::*;

    /// One (machine, benchmark) bar: compute+buffer vs memory time,
    /// normalized to the pNPU-co total for that benchmark.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct Bar {
        /// Machine name.
        pub machine: String,
        /// Benchmark name.
        pub benchmark: String,
        /// Computation share (includes buffer time, as in the paper).
        pub compute: f64,
        /// Memory-access share.
        pub memory: f64,
    }

    /// The full figure.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct Result {
        /// Bars for pNPU-co, pNPU-pim-x1, and PRIME (single copy, as in
        /// the paper's breakdown), per benchmark.
        pub bars: Vec<Bar>,
    }

    /// Runs the breakdown comparison (pim with one NPU, PRIME without
    /// bank parallelism, per the paper's method).
    pub fn run() -> Result {
        let mut bars = Vec::new();
        for bench in MlBench::ALL {
            let spec = bench.spec();
            let co = NpuMachine::co_processor().run(&spec, 1);
            let pim = NpuMachine::pim(1).run(&spec, 1);
            let prime = PrimeMachine::without_bank_parallelism().run(&spec, 1);
            let norm = co.time_ns.total();
            for r in [co, pim, prime] {
                bars.push(Bar {
                    machine: r.machine.clone(),
                    benchmark: bench.name().to_string(),
                    compute: (r.time_ns.compute + r.time_ns.buffer) / norm,
                    memory: r.time_ns.memory / norm,
                });
            }
        }
        Result { bars }
    }
}

/// Figure 10: energy savings over the CPU-only baseline.
pub mod fig10 {
    use super::*;

    /// One benchmark's energy-saving factors (vs CPU).
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct Row {
        /// Benchmark name.
        pub benchmark: String,
        /// pNPU-co saving.
        pub pnpu_co: f64,
        /// pNPU-pim-x64 saving (x1 is identical: same work, same energy).
        pub pnpu_pim_x64: f64,
        /// PRIME saving.
        pub prime: f64,
    }

    /// The full figure.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct Result {
        /// Per-benchmark savings.
        pub rows: Vec<Row>,
        /// Geometric-mean row.
        pub gmean: Row,
    }

    /// Runs the energy comparison.
    pub fn run() -> Result {
        let mut rows = Vec::new();
        for bench in MlBench::ALL {
            let (cpu, co, _p1, p64, prime) = run_all(bench);
            rows.push(Row {
                benchmark: bench.name().to_string(),
                pnpu_co: co.energy_saving_vs(&cpu),
                pnpu_pim_x64: p64.energy_saving_vs(&cpu),
                prime: prime.energy_saving_vs(&cpu),
            });
        }
        let gmean = Row {
            benchmark: "gmean".to_string(),
            pnpu_co: geomean(&rows.iter().map(|r| r.pnpu_co).collect::<Vec<_>>()),
            pnpu_pim_x64: geomean(&rows.iter().map(|r| r.pnpu_pim_x64).collect::<Vec<_>>()),
            prime: geomean(&rows.iter().map(|r| r.prime).collect::<Vec<_>>()),
        };
        Result { rows, gmean }
    }
}

/// Figure 11: energy breakdown normalized to pNPU-co.
pub mod fig11 {
    use super::*;

    /// One (machine, benchmark) bar, normalized to the pNPU-co total.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct Bar {
        /// Machine name.
        pub machine: String,
        /// Benchmark name.
        pub benchmark: String,
        /// Computation energy share.
        pub compute: f64,
        /// Buffer energy share.
        pub buffer: f64,
        /// Memory energy share.
        pub memory: f64,
    }

    /// The full figure.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct Result {
        /// Bars for pNPU-co, pNPU-pim-x64, and PRIME per benchmark.
        pub bars: Vec<Bar>,
    }

    /// Runs the energy-breakdown comparison.
    pub fn run() -> Result {
        let mut bars = Vec::new();
        for bench in MlBench::ALL {
            let spec = bench.spec();
            let co = NpuMachine::co_processor().run(&spec, EVAL_BATCH);
            let pim = NpuMachine::pim(64).run(&spec, EVAL_BATCH);
            let prime = PrimeMachine::new().run(&spec, EVAL_BATCH);
            let norm = co.energy_pj.total();
            for r in [co, pim, prime] {
                bars.push(Bar {
                    machine: r.machine.clone(),
                    benchmark: bench.name().to_string(),
                    compute: r.energy_pj.compute / norm,
                    buffer: r.energy_pj.buffer / norm,
                    memory: r.energy_pj.memory / norm,
                });
            }
        }
        Result { bars }
    }
}

/// Figure 12: area overhead and FF utilization.
pub mod fig12 {
    use super::*;
    use crate::area::{utilization_table, AreaModel, UtilizationRow};

    /// The full figure.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct Result {
        /// The chip-level area model (5.76 % overhead; mat-level 60 %
        /// split into driver / subtraction+sigmoid / control).
        pub model: AreaModel,
        /// Per-benchmark FF utilization before/after replication.
        pub utilization: Vec<UtilizationRow>,
    }

    /// Computes the area figure.
    pub fn run() -> Result {
        Result { model: AreaModel::paper(), utilization: utilization_table() }
    }
}

/// Ablation studies of PRIME's design choices (DESIGN.md experiment
/// index): the replication optimization, bank-level parallelism scaling,
/// and device-noise sensitivity of the functional pipeline.
pub mod ablation {
    use super::*;
    use crate::machines::PrimeMachine;

    /// Effect of the §IV-B1 replication optimization on one benchmark.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct ReplicationRow {
        /// Benchmark name.
        pub benchmark: String,
        /// Batch latency with replication, ns.
        pub with_replication_ns: f64,
        /// Batch latency without replication, ns.
        pub without_replication_ns: f64,
        /// FF utilization with replication.
        pub utilization_with: f64,
        /// FF utilization without replication.
        pub utilization_without: f64,
    }

    impl ReplicationRow {
        /// Speedup contributed by replication alone.
        pub fn replication_speedup(&self) -> f64 {
            self.without_replication_ns / self.with_replication_ns
        }
    }

    /// Runs the replication on/off comparison over MlBench.
    pub fn replication() -> Vec<ReplicationRow> {
        let with = PrimeMachine::new();
        let without = PrimeMachine::without_replication();
        MlBench::ALL
            .iter()
            .map(|bench| {
                let spec = bench.spec();
                ReplicationRow {
                    benchmark: bench.name().to_string(),
                    with_replication_ns: with.run(&spec, EVAL_BATCH).latency_ns,
                    without_replication_ns: without.run(&spec, EVAL_BATCH).latency_ns,
                    utilization_with: with.mapping(&spec).map_or(0.0, |m| m.utilization_after),
                    utilization_without: without
                        .mapping(&spec)
                        .map_or(0.0, |m| m.utilization_before),
                }
            })
            .collect()
    }

    /// One point of the bank-parallelism scaling sweep.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct BankScalingRow {
        /// Banks in the memory.
        pub banks: u32,
        /// Batch latency, ns.
        pub latency_ns: f64,
        /// Speedup relative to the 1-bank point.
        pub speedup_vs_one_bank: f64,
    }

    /// Sweeps the bank count for one benchmark (PRIME's "NPU count").
    pub fn bank_scaling(bench: MlBench) -> Vec<BankScalingRow> {
        let mut rows = Vec::new();
        let mut base = None;
        for banks in [1u32, 2, 4, 8, 16, 32, 64] {
            let machine = PrimeMachine::with_banks(banks);
            let latency = machine.run(&bench.spec(), EVAL_BATCH).latency_ns;
            let base_latency = *base.get_or_insert(latency);
            rows.push(BankScalingRow {
                banks,
                latency_ns: latency,
                speedup_vs_one_bank: base_latency / latency,
            });
        }
        rows
    }
}

/// Cost of the CPU fallback for layers PRIME has no hardware for
/// (paper §III-E: LRN layers are delegated to the CPU; state-of-the-art
/// CNNs dropped them, so PRIME adds no LRN circuitry).
pub mod lrn_fallback {
    use super::*;
    use crate::machines::PrimeMachine;
    use prime_nn::cnn1_with_lrn;

    /// The comparison result.
    #[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
    pub struct Result {
        /// CNN-1 batch latency, ns.
        pub cnn1_ns: f64,
        /// CNN-1 + LRN batch latency, ns.
        pub cnn1_lrn_ns: f64,
    }

    impl Result {
        /// Slowdown factor caused by the LRN fallback.
        pub fn penalty(&self) -> f64 {
            self.cnn1_lrn_ns / self.cnn1_ns
        }
    }

    /// Measures CNN-1 with and without an LRN layer on PRIME.
    pub fn run() -> Result {
        let prime = PrimeMachine::new();
        Result {
            cnn1_ns: prime.run(&MlBench::Cnn1.spec(), EVAL_BATCH).latency_ns,
            cnn1_lrn_ns: prime.run(&cnn1_with_lrn(), EVAL_BATCH).latency_ns,
        }
    }
}

/// The FF-subarray-count tradeoff the paper calls out in §V-D: "The
/// choice of the number of FF subarrays is a tradeoff between peak GOPS
/// and area overhead."
pub mod ff_tradeoff {
    use super::*;
    use crate::area::MatAreaBreakdown;
    use crate::params::PrimeParams;
    use prime_compiler::HwTarget;

    /// One point of the tradeoff curve.
    #[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
    pub struct Row {
        /// FF subarrays per bank.
        pub ff_subarrays: usize,
        /// Peak throughput in GOPS (two ops per MAC, all mats busy).
        pub peak_gops: f64,
        /// Chip-area overhead fraction.
        pub area_overhead: f64,
    }

    /// Sweeps the FF-subarray count per bank.
    pub fn run(max_ff: usize) -> Vec<Row> {
        let base = HwTarget::prime_default();
        let params = PrimeParams::prime_default();
        let mat_overhead = MatAreaBreakdown::paper().total();
        // The paper's floorplan: 2 FF subarrays cost 5.76 % of the chip,
        // so each contributes half of that.
        let per_ff_fraction = 0.0576 / mat_overhead / 2.0;
        (1..=max_ff)
            .map(|ff| {
                let mats = base.mats_per_ff_subarray * ff * base.banks;
                // One pass evaluates every active mat: 256x128 composed
                // MACs (x2 ops) per pass time.
                let ops_per_pass = (base.mat_rows * base.mat_cols * 2) as f64;
                let gops = mats as f64 * ops_per_pass / params.pass_ns(128);
                Row {
                    ff_subarrays: ff,
                    peak_gops: gops,
                    area_overhead: per_ff_fraction * ff as f64 * mat_overhead,
                }
            })
            .collect()
    }
}

/// Throughput vs batch size: bank-level parallelism saturates at one
/// image per bank (the knee at 64 the §IV-B2 placement is built around).
pub mod batch_sweep {
    use super::*;
    use crate::machines::PrimeMachine;

    /// One point of the sweep.
    #[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
    pub struct Row {
        /// Batch size.
        pub batch: u32,
        /// Batch latency, ns.
        pub latency_ns: f64,
        /// Throughput in images per millisecond.
        pub images_per_ms: f64,
    }

    /// Sweeps batch sizes for one benchmark on PRIME.
    pub fn run(bench: MlBench, batches: &[u32]) -> Vec<Row> {
        let prime = PrimeMachine::new();
        let spec = bench.spec();
        batches
            .iter()
            .map(|&batch| {
                let latency_ns = prime.run(&spec, batch).latency_ns;
                Row {
                    batch,
                    latency_ns,
                    images_per_ms: f64::from(batch) / (latency_ns / 1e6),
                }
            })
            .collect()
    }
}

/// Device-noise sensitivity of the functional FF-mat pipeline: how
/// classification accuracy degrades as the cell-programming precision
/// worsens (paper §III-D: ~1 % single-cell, ~3 % in-crossbar tuning).
pub mod noise {
    use super::*;
    use prime_core::FfExecutor;
    use prime_device::NoiseModel;
    use prime_nn::{
        evaluate, train_sgd, Activation, DigitGenerator, FullyConnected, Layer, Network,
        TrainConfig, IMAGE_PIXELS, NUM_CLASSES,
    };
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// One point of the noise sweep.
    #[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
    pub struct NoiseRow {
        /// Relative programming-noise sigma.
        pub program_sigma: f64,
        /// Hardware-pipeline accuracy at this noise level.
        pub accuracy: f64,
    }

    /// The sweep result.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct Result {
        /// Software (noise-free, full-precision) reference accuracy.
        pub software_accuracy: f64,
        /// Accuracy per noise level.
        pub rows: Vec<NoiseRow>,
    }

    /// Trains a digit classifier and evaluates it on the functional
    /// FF-mat pipeline at each programming-noise level.
    ///
    /// # Errors
    ///
    /// Propagates [`prime_core::PrimeError`] from training, evaluation,
    /// or the hardware pipeline — only possible if the generated
    /// classifier or the executor itself is broken.
    pub fn run(
        test_samples: usize,
        sigmas: &[f64],
    ) -> std::result::Result<Result, prime_core::PrimeError> {
        let mut rng = SmallRng::seed_from_u64(31);
        let generator = DigitGenerator::default();
        let train_set = generator.dataset(600, &mut rng);
        let test_set = generator.dataset(test_samples, &mut rng);
        let mut net = Network::new(vec![
            Layer::Fc(FullyConnected::new(IMAGE_PIXELS, 32, Activation::Sigmoid)),
            Layer::Fc(FullyConnected::new(32, NUM_CLASSES, Activation::Identity)),
        ])
        .map_err(prime_core::PrimeError::from)?;
        net.init_random(&mut rng);
        train_sgd(&mut net, &train_set, TrainConfig::quick(), &mut rng)
            .map_err(prime_core::PrimeError::from)?;
        let software_accuracy =
            evaluate(&net, &test_set).map_err(prime_core::PrimeError::from)?;
        let mut rows = Vec::with_capacity(sigmas.len());
        for &sigma in sigmas {
            let model = NoiseModel { program_sigma: sigma, read_sigma: 0.0 };
            let mut exec = FfExecutor::with_noise(model, 77);
            let mut correct = 0usize;
            for sample in &test_set {
                let (out, _) = exec.run(&net, &sample.pixels)?;
                let mut best = 0;
                for (i, &v) in out.iter().enumerate() {
                    if v > out[best] {
                        best = i;
                    }
                }
                if best == sample.label {
                    correct += 1;
                }
            }
            rows.push(NoiseRow {
                program_sigma: sigma,
                accuracy: correct as f64 / test_set.len().max(1) as f64,
            });
        }
        Ok(Result { software_accuracy, rows })
    }
}

/// ReRAM endurance analysis: FF mats are reprogrammed on every NN
/// reconfiguration; with 10^12 write endurance (paper §II-A) the
/// morphable design outlives any realistic reconfiguration schedule.
pub mod endurance {
    use super::*;
    use prime_device::DEFAULT_ENDURANCE_WRITES;

    /// Lifetime at one reconfiguration rate.
    #[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
    pub struct EnduranceRow {
        /// FF reconfigurations (weight reprogram cycles) per second.
        pub reconfigs_per_second: f64,
        /// Cell lifetime in years at that rate.
        pub lifetime_years: f64,
    }

    /// Computes lifetimes across a sweep of reconfiguration rates. Each
    /// reconfiguration writes every cell once (program-verify).
    pub fn run(rates_per_second: &[f64]) -> Vec<EnduranceRow> {
        const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;
        rates_per_second
            .iter()
            .map(|&rate| EnduranceRow {
                reconfigs_per_second: rate,
                lifetime_years: DEFAULT_ENDURANCE_WRITES as f64 / rate / SECONDS_PER_YEAR,
            })
            .collect()
    }
}

/// Normalized memory-time share of a run (helper shared by tests).
pub fn memory_share(b: &Breakdown) -> f64 {
    let (_, _, m) = b.fractions();
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_reproduces_the_paper_shape() {
        let fig = fig8::run();
        // Ordering on every benchmark.
        for row in &fig.rows {
            assert!(row.pnpu_co > 1.0, "{}: co must beat CPU", row.benchmark);
            assert!(row.pnpu_pim_x1 > row.pnpu_co, "{}: pim-x1 > co", row.benchmark);
            assert!(row.pnpu_pim_x64 >= row.pnpu_pim_x1, "{}: x64 >= x1", row.benchmark);
            assert!(row.prime > row.pnpu_pim_x64, "{}: PRIME > pim-x64", row.benchmark);
        }
        // pim-x1 beats co by roughly an order of magnitude (paper: 9.1x).
        let pim_over_co = fig.gmean.pnpu_pim_x1 / fig.gmean.pnpu_co;
        assert!((3.0..20.0).contains(&pim_over_co), "pim-x1/co gmean {pim_over_co}");
        // PRIME beats co by thousands (paper: ~2360x).
        let prime_over_co = fig.gmean.prime / fig.gmean.pnpu_co;
        assert!((800.0..8000.0).contains(&prime_over_co), "PRIME/co gmean {prime_over_co}");
        // PRIME is a small factor above pim-x64 (paper: ~4.1x).
        let prime_over_pim = fig.gmean.prime / fig.gmean.pnpu_pim_x64;
        assert!((2.0..12.0).contains(&prime_over_pim), "PRIME/pim-x64 gmean {prime_over_pim}");
        // VGG-D shows the smallest PRIME speedup (inter-bank traffic).
        let vgg = fig.rows.iter().find(|r| r.benchmark == "VGG-D").unwrap().prime;
        for row in &fig.rows {
            if row.benchmark != "VGG-D" {
                assert!(row.prime > vgg, "{} should outpace VGG-D", row.benchmark);
            }
        }
    }

    #[test]
    fn fig9_prime_memory_time_is_zero() {
        let fig = fig9::run();
        for bar in fig.bars.iter().filter(|b| b.machine.starts_with("PRIME")) {
            assert_eq!(bar.memory, 0.0, "{}", bar.benchmark);
            // And the PRIME bar is a small fraction of pNPU-co.
            assert!(bar.compute < 0.2, "{}: PRIME share {}", bar.benchmark, bar.compute);
        }
        // pim reduces memory time substantially vs co.
        for bench in MlBench::ALL {
            let co = fig
                .bars
                .iter()
                .find(|b| b.machine == "pNPU-co" && b.benchmark == bench.name())
                .unwrap();
            let pim = fig
                .bars
                .iter()
                .find(|b| b.machine == "pNPU-pim-x1" && b.benchmark == bench.name())
                .unwrap();
            assert!(pim.memory < co.memory * 0.3, "{}", bench.name());
        }
    }

    #[test]
    fn fig10_reproduces_the_paper_shape() {
        let fig = fig10::run();
        for row in &fig.rows {
            assert!(row.pnpu_co > 1.0);
            assert!(row.pnpu_pim_x64 > row.pnpu_co, "{}", row.benchmark);
            assert!(row.prime > row.pnpu_pim_x64, "{}", row.benchmark);
        }
        // PRIME saves energy vs co by hundreds (paper: ~895x).
        let prime_over_co = fig.gmean.prime / fig.gmean.pnpu_co;
        assert!((200.0..3000.0).contains(&prime_over_co), "PRIME/co energy gmean {prime_over_co}");
    }

    #[test]
    fn fig11_memory_energy_collapses_under_pim() {
        let fig = fig11::run();
        for bench in MlBench::ALL {
            let co = fig
                .bars
                .iter()
                .find(|b| b.machine == "pNPU-co" && b.benchmark == bench.name())
                .unwrap();
            let pim = fig
                .bars
                .iter()
                .find(|b| b.machine == "pNPU-pim-x64" && b.benchmark == bench.name())
                .unwrap();
            // Paper: pim saves ~93.9 % of memory energy on average.
            assert!(pim.memory < co.memory * 0.12, "{}", bench.name());
        }
        // CNNs are buffer-heavy relative to MLPs on PRIME (paper §V-C).
        let share = |name: &str| {
            let b = fig
                .bars
                .iter()
                .find(|b| b.machine == "PRIME" && b.benchmark == name)
                .unwrap();
            b.buffer / (b.compute + b.buffer + b.memory)
        };
        assert!(share("CNN-1") > share("MLP-L"));
    }

    #[test]
    fn fig6_precision_saturates_quickly() {
        let r = fig6::run(fig6::Config::quick()).expect("sweep runs");
        assert!(r.float_accuracy > 0.9, "float accuracy {}", r.float_accuracy);
        // 3-bit inputs + 3-bit weights reach ~99 % of float accuracy
        // (paper: "3-bit ... adequate to achieve 99% accuracy").
        assert!(
            r.at(3, 3) >= 0.95 * r.float_accuracy,
            "3/3-bit accuracy {} vs float {}",
            r.at(3, 3),
            r.float_accuracy
        );
        // 1-bit weights are far worse than 4-bit weights at 4-bit inputs.
        assert!(r.at(4, 1) < r.at(4, 4));
    }

    #[test]
    fn replication_never_hurts() {
        for row in ablation::replication() {
            assert!(
                row.replication_speedup() >= 1.0 - 1e-9,
                "{}: replication slowed things down",
                row.benchmark
            );
            assert!(row.utilization_with >= row.utilization_without, "{}", row.benchmark);
        }
        // The conv benchmarks gain the most (many sequential windows).
        let rows = ablation::replication();
        let speedup = |name: &str| {
            rows.iter().find(|r| r.benchmark == name).unwrap().replication_speedup()
        };
        assert!(speedup("CNN-1") > speedup("MLP-S"));
    }

    #[test]
    fn bank_scaling_is_monotonic_and_near_linear() {
        let rows = ablation::bank_scaling(MlBench::MlpM);
        for pair in rows.windows(2) {
            assert!(pair[1].latency_ns <= pair[0].latency_ns + 1e-9);
        }
        let last = rows.last().unwrap();
        assert_eq!(last.banks, 64);
        // Medium-scale NNs replicate per bank: near-linear scaling.
        assert!(last.speedup_vs_one_bank > 32.0, "got {}", last.speedup_vs_one_bank);
    }

    #[test]
    fn ff_tradeoff_matches_the_paper_narrative() {
        let rows = ff_tradeoff::run(8);
        // GOPS grows linearly with FF subarrays; so does area.
        for pair in rows.windows(2) {
            assert!(pair[1].peak_gops > pair[0].peak_gops);
            assert!(pair[1].area_overhead > pair[0].area_overhead);
        }
        // The paper's configuration (2 FF) costs 5.76 %.
        let two = rows.iter().find(|r| r.ff_subarrays == 2).unwrap();
        assert!((two.area_overhead - 0.0576).abs() < 1e-3, "got {}", two.area_overhead);
        // Peak throughput is in the many-TOPS range — the whole point of
        // in-memory analog computation.
        assert!(two.peak_gops > 10_000.0, "got {} GOPS", two.peak_gops);
    }

    #[test]
    fn batch_throughput_saturates_at_the_bank_count() {
        let rows = batch_sweep::run(MlBench::MlpM, &[1, 8, 32, 64, 128, 256]);
        // Throughput rises until one image per bank...
        let at = |b: u32| rows.iter().find(|r| r.batch == b).unwrap().images_per_ms;
        assert!(at(64) > 8.0 * at(1), "bank parallelism should pay off");
        // ...and flattens beyond it (within 30 %).
        let ratio = at(256) / at(64);
        assert!((0.7..=1.3).contains(&ratio), "past-knee ratio {ratio}");
    }

    #[test]
    fn lrn_fallback_is_expensive() {
        let r = lrn_fallback::run();
        // Delegating one layer to the CPU costs PRIME dearly — the reason
        // the paper cites modern CNNs dropping LRN for omitting hardware.
        assert!(r.penalty() > 2.0, "penalty {}", r.penalty());
        assert!(r.cnn1_lrn_ns > r.cnn1_ns);
    }

    #[test]
    fn endurance_outlives_realistic_schedules() {
        let rows = endurance::run(&[1.0, 1000.0]);
        // Even reconfiguring every millisecond lasts decades.
        assert!(rows[1].lifetime_years > 10.0, "{:?}", rows[1]);
        assert!(rows[0].lifetime_years > rows[1].lifetime_years);
    }

    #[test]
    fn noise_sweep_degrades_gracefully() {
        let result = noise::run(30, &[0.0, 0.03, 0.5]).expect("sweep runs");
        assert!(result.software_accuracy > 0.9);
        // Realistic 3% noise keeps accuracy close to noise-free.
        assert!(
            result.rows[1].accuracy >= result.rows[0].accuracy - 0.15,
            "3% noise collapsed accuracy: {:?}",
            result.rows
        );
        // Absurd 50% noise is clearly worse than noise-free.
        assert!(result.rows[2].accuracy <= result.rows[0].accuracy + 1e-9);
    }

    #[test]
    fn fig12_matches_paper_constants() {
        let r = fig12::run();
        assert!((r.model.chip_overhead() - 0.0576).abs() < 1e-3);
        assert_eq!(r.utilization.len(), 6);
    }
}
