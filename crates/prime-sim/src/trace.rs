//! Trace-driven cross-validation of the analytic memory model.
//!
//! The figure experiments use analytic bandwidth/latency arithmetic, as
//! the paper's in-house simulator did. This module generates the actual
//! cache-line access stream a CPU inference produces (streaming the
//! weights layer by layer, reading inputs, writing outputs) and replays
//! it through the stateful [`Rank`](prime_mem::Rank)/bank/row-buffer model — an
//! independent estimate that keeps the analytic constants honest. The
//! two models measure different quantities (closed-bank latency vs
//! sustained bandwidth), so agreement is expected within a small factor,
//! not to the nanosecond.

use serde::{Deserialize, Serialize};

use prime_mem::{MemGeometry, MemTiming, Rank};
use prime_nn::NetworkSpec;

use crate::params::{CpuParams, MemPathParams};

/// Cache-line size used by the trace generator.
pub const LINE_BYTES: u64 = 64;

/// Outcome of one trace-vs-analytic comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceValidation {
    /// Memory time from the analytic model (bytes / bandwidth), ns.
    pub analytic_ns: f64,
    /// Memory time from replaying the trace through the rank model, ns.
    pub replayed_ns: f64,
    /// Cache-line accesses replayed.
    pub accesses: u64,
    /// Row-buffer hit rate observed during the replay.
    pub row_hit_rate: f64,
}

impl TraceValidation {
    /// Ratio of replayed to analytic time (1.0 = identical).
    pub fn ratio(&self) -> f64 {
        self.replayed_ns / self.analytic_ns
    }
}

/// Generates the cache-line address stream of one CPU inference: each
/// layer streams its weights sequentially from its region of memory and
/// touches its activations. Addresses are bank-interleaved by the
/// geometry's decode, just as real consecutive lines are.
pub fn cpu_inference_trace(spec: &NetworkSpec, element_bytes: u64) -> Vec<u64> {
    let mut trace = Vec::new();
    let mut weight_base: u64 = 0;
    // Activations live past the weights.
    let total_weight_bytes: u64 = spec.synapses() * element_bytes;
    let mut act_base = total_weight_bytes.next_multiple_of(LINE_BYTES);
    for layer in spec.layers() {
        let w_bytes = layer.synapses() * element_bytes;
        let mut offset = 0;
        while offset < w_bytes {
            trace.push(weight_base + offset);
            offset += LINE_BYTES;
        }
        weight_base += w_bytes.next_multiple_of(LINE_BYTES);
        // Layer input + output activations.
        let io_bytes = (layer.inputs() + layer.outputs()) as u64 * element_bytes;
        let mut offset = 0;
        while offset < io_bytes {
            trace.push(act_base + offset);
            offset += LINE_BYTES;
        }
        act_base += io_bytes.next_multiple_of(LINE_BYTES);
    }
    trace
}

/// Replays one CPU inference trace through the rank model and compares
/// it with the analytic memory time for the same traffic.
///
/// # Errors
///
/// Returns [`prime_mem::MemError`] if the workload's trace exceeds the
/// installed capacity (never for the MlBench workloads on the default
/// 16 GB geometry).
pub fn validate_cpu_memory_model(
    spec: &NetworkSpec,
) -> Result<TraceValidation, prime_mem::MemError> {
    let cpu = CpuParams::table_iv();
    let mem = MemPathParams::prime_default();
    let trace = cpu_inference_trace(spec, cpu.element_bytes);
    let mut rank = Rank::new(MemGeometry::prime_default(), MemTiming::prime_default());
    let replayed_ns = rank.run_stream(&trace, false)?;
    let bytes = trace.len() as u64 * LINE_BYTES;
    let analytic_ns = bytes as f64 / mem.external_gbps;
    // Aggregate hit rate across the banks the trace touched.
    let mut hits = 0u64;
    let mut total = 0u64;
    for bank in 0..rank.geometry().total_banks() {
        let stats = rank.bank_stats(bank);
        hits += stats.row_hits;
        total += stats.row_hits + stats.row_misses;
    }
    Ok(TraceValidation {
        analytic_ns,
        replayed_ns,
        accesses: trace.len() as u64,
        row_hit_rate: if total == 0 { 0.0 } else { hits as f64 / total as f64 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::network_traffic;
    use prime_nn::MlBench;

    #[test]
    fn trace_covers_all_weights_and_activations() {
        let spec = MlBench::MlpS.spec();
        let trace = cpu_inference_trace(&spec, 4);
        let t = network_traffic(&spec);
        let expected_lines = spec
            .layers()
            .iter()
            .map(|l| {
                (l.synapses() * 4).div_ceil(LINE_BYTES)
                    + ((l.inputs() + l.outputs()) as u64 * 4).div_ceil(LINE_BYTES)
            })
            .sum::<u64>();
        assert_eq!(trace.len() as u64, expected_lines);
        // Roughly weights + activations bytes, line-rounded.
        assert!(trace.len() as u64 * LINE_BYTES >= t.weights * 4);
    }

    #[test]
    fn trace_addresses_are_line_aligned_and_increasing_per_region() {
        let trace = cpu_inference_trace(&MlBench::Cnn1.spec(), 4);
        assert!(trace.iter().all(|a| a % LINE_BYTES == 0));
    }

    #[test]
    fn replay_agrees_with_analytic_within_a_small_factor() {
        let v = validate_cpu_memory_model(&MlBench::MlpS.spec()).expect("trace fits");
        assert!(v.accesses > 10_000, "trace too small to be meaningful");
        assert!(
            (0.2..6.0).contains(&v.ratio()),
            "trace-replayed {} ns vs analytic {} ns (ratio {})",
            v.replayed_ns,
            v.analytic_ns,
            v.ratio()
        );
    }

    #[test]
    fn sequential_streams_open_fresh_rows() {
        // With row-granularity bank interleaving, one mat row holds
        // exactly one cache line, so a sequential stream activates a
        // fresh row on every access — the structural reason the replayed
        // closed-bank latency sits above the analytic bandwidth bound.
        let v = validate_cpu_memory_model(&MlBench::MlpM.spec()).expect("trace fits");
        assert_eq!(v.row_hit_rate, 0.0, "hit rate {}", v.row_hit_rate);
        assert!(v.ratio() > 1.0, "closed-bank replay should cost more than peak bandwidth");
    }
}
