//! Plain-text and JSON reporting helpers for the figure binaries.

use serde::Serialize;

/// Formats a table: a header row plus data rows, columns padded to the
/// widest cell, separated by two spaces. The first column is
/// left-aligned, the rest right-aligned (numeric convention).
pub fn format_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |row: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            if i == 0 {
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            } else {
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
        }
        line
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a speedup/factor value the way the paper's figures label bars:
/// one decimal below 100, whole numbers above.
pub fn format_factor(value: f64) -> String {
    if value < 100.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.0}")
    }
}

/// Serializes any experiment result to pretty JSON for machine-readable
/// archiving next to the printed table.
///
/// # Errors
///
/// Returns a `serde_json::Error` if serialization fails (never for the
/// plain data types used by the experiments).
pub fn to_json<T: Serialize>(value: &T) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = format_table(
            &["bench".into(), "speedup".into()],
            &[
                vec!["CNN-1".into(), "8.2".into()],
                vec!["MLP-L".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("bench"));
        assert!(lines[2].ends_with("8.2"));
        assert!(lines[3].ends_with("12345"));
        // All data lines are equally wide.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn factor_formatting_matches_figures() {
        assert_eq!(format_factor(8.26), "8.3");
        assert_eq!(format_factor(2360.4), "2360");
    }

    #[test]
    fn json_round_trips() {
        #[derive(serde::Serialize)]
        struct S {
            x: u32,
        }
        let json = to_json(&S { x: 7 }).unwrap();
        assert!(json.contains("\"x\": 7"));
    }
}
