//! Trace-based performance/energy/area simulator for the PRIME
//! evaluation (paper §V).
//!
//! Reproduces the paper's methodology: machine models for the CPU-only
//! baseline, the pNPU co-processor/PIM comparatives (Table V), and PRIME
//! itself, driven by per-operation constants (Table IV + literature) and
//! the compile-time mapping from `prime-compiler`. The [`experiments`]
//! module regenerates every evaluation figure; the [`area`] module covers
//! Fig. 12.
//!
//! # Examples
//!
//! ```
//! use prime_nn::MlBench;
//! use prime_sim::{CpuMachine, Machine, PrimeMachine, EVAL_BATCH};
//!
//! let spec = MlBench::MlpS.spec();
//! let cpu = CpuMachine::new().run(&spec, EVAL_BATCH);
//! let prime = PrimeMachine::new().run(&spec, EVAL_BATCH);
//! assert!(prime.speedup_vs(&cpu) > 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Area-overhead model (Fig. 12).
pub mod area;
/// Simulator-backed cost model for the mapping search.
pub mod cost;
/// Figure-regeneration experiments.
pub mod experiments;
/// Machine models.
pub mod machines;
/// Text/JSON reporting helpers.
pub mod report;
/// Trace-driven memory-model validation.
pub mod trace;
/// Model constants.
pub mod params;
/// Result types.
pub mod result;
/// Traffic accounting.
pub mod traffic;

pub use cost::SimCostModel;
pub use machines::{CpuMachine, Machine, NpuMachine, NpuPlacement, PrimeMachine};
pub use params::{CpuParams, MemPathParams, NpuParams, PrimeParams, EVAL_BATCH};
pub use result::{geomean, Breakdown, RunResult};
