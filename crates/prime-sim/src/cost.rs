//! The simulator-backed cost model for the mapping search.
//!
//! `prime-core`'s [`search_mapping`](prime_core::search_mapping) scores
//! candidate mappings through the [`MappingCostModel`] trait; this
//! module supplies the reference implementation on top of
//! [`PrimeMachine`]'s analytical latency/energy model. Each candidate is
//! priced with [`PrimeMachine::run_mapped`] — the exact model the §V
//! evaluation figures use — so the search optimizes the same quantity
//! the simulator would later report.
//!
//! [`MappingCostModel`]: prime_core::MappingCostModel

use prime_compiler::{CompileOptions, HwTarget, NetworkMapping};
use prime_core::{CandidateCost, MappingCostModel};
use prime_nn::NetworkSpec;

use crate::machines::PrimeMachine;

/// Scores candidate mappings with the analytical PRIME machine model.
///
/// * `image_ns` — batch-1 latency: a single image through the mapping
///   (pipeline fill included for large-scale NNs);
/// * `interval_ns` — per-image latency at an amortizing batch
///   (`4 x copies` images, so every copy sees several rounds and the
///   pipeline interval dominates the fill);
/// * `energy_pj` — one image's total energy.
///
/// # Examples
///
/// ```
/// use prime_compiler::Objective;
/// use prime_core::search_mapping;
/// use prime_nn::MlBench;
/// use prime_sim::SimCostModel;
///
/// let target = prime_analyze::Target::prime_default();
/// let search = search_mapping(
///     &MlBench::MlpM.spec(),
///     &target,
///     Objective::Latency,
///     &SimCostModel,
/// );
/// assert!(search.chosen().is_some());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SimCostModel;

impl SimCostModel {
    /// The batch size that amortizes pipeline fill for `mapping`: four
    /// rounds through every whole-network copy.
    fn amortizing_batch(mapping: &NetworkMapping) -> u32 {
        let copies = mapping.copies_across_memory.max(1);
        u32::try_from(4 * copies).unwrap_or(u32::MAX)
    }
}

impl MappingCostModel for SimCostModel {
    fn score(&self, spec: &NetworkSpec, hw: &HwTarget, mapping: &NetworkMapping) -> CandidateCost {
        // The machine is only a parameter carrier here: `run_mapped`
        // never re-compiles, it prices the candidate mapping as given.
        let machine = PrimeMachine::with_target(*hw, CompileOptions::default());
        let single = machine.run_mapped(spec, mapping, 1);
        let batch = Self::amortizing_batch(mapping);
        let steady = machine.run_mapped(spec, mapping, batch);
        CandidateCost {
            image_ns: single.latency_ns,
            interval_ns: steady.latency_ns / f64::from(batch),
            energy_pj: single.total_energy_pj(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prime_analyze::Target;
    use prime_compiler::{map_network, Objective};
    use prime_core::search_mapping;
    use prime_nn::MlBench;

    #[test]
    fn scores_are_finite_and_positive_for_every_paper_workload() {
        let target = Target::prime_default();
        for bench in MlBench::ALL {
            let spec = bench.spec();
            let options = CompileOptions { replicate: false, ..CompileOptions::default() };
            let mapping = map_network(&spec, &target.hw, options).expect("paper workloads fit");
            let cost = SimCostModel.score(&spec, &target.hw, &mapping);
            for (name, v) in [
                ("image_ns", cost.image_ns),
                ("interval_ns", cost.interval_ns),
                ("energy_pj", cost.energy_pj),
            ] {
                assert!(v.is_finite() && v > 0.0, "{}: {name}={v}", bench.name());
            }
            // Steady-state throughput cannot be worse than cold batch-1
            // latency: copies and pipelining only help.
            assert!(
                cost.interval_ns <= cost.image_ns * 1.000_001,
                "{}: interval {} > image {}",
                bench.name(),
                cost.interval_ns,
                cost.image_ns
            );
        }
    }

    #[test]
    fn capping_copies_raises_the_interval() {
        let target = Target::prime_default();
        let spec = MlBench::MlpM.spec();
        let full = map_network(
            &spec,
            &target.hw,
            CompileOptions { replicate: false, ..CompileOptions::default() },
        )
        .expect("fits");
        let capped = map_network(
            &spec,
            &target.hw,
            CompileOptions { replicate: false, max_copies: 1, ..CompileOptions::default() },
        )
        .expect("fits");
        assert!(full.copies_across_memory > capped.copies_across_memory);
        let full_cost = SimCostModel.score(&spec, &target.hw, &full);
        let capped_cost = SimCostModel.score(&spec, &target.hw, &capped);
        assert!(
            full_cost.interval_ns < capped_cost.interval_ns,
            "full copies {} vs capped {}",
            full_cost.interval_ns,
            capped_cost.interval_ns
        );
    }

    #[test]
    fn searched_latency_never_loses_to_the_fixed_default() {
        let target = Target::prime_default();
        for bench in MlBench::ALL {
            let spec = bench.spec();
            let fixed = search_mapping(
                &spec,
                &target,
                Objective::Fixed(prime_compiler::MappingStrategy::ReplicateDense),
                &SimCostModel,
            );
            let searched = search_mapping(&spec, &target, Objective::Latency, &SimCostModel);
            let fixed_cost = fixed.chosen().and_then(|c| c.cost).expect("fixed survives");
            let best_cost = searched.chosen().and_then(|c| c.cost).expect("search survives");
            assert!(
                best_cost.interval_ns <= fixed_cost.interval_ns,
                "{}: searched {} > fixed {}\n{}",
                bench.name(),
                best_cost.interval_ns,
                fixed_cost.interval_ns,
                searched.describe()
            );
        }
    }
}
