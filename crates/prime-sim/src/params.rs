//! Machine-model constants with provenance.
//!
//! The paper's evaluation (Table IV/V) modelled the NPUs with Synopsys
//! tools on 65 nm TSMC and the memory with NVSim/CACTI-3DD/CACTI-IO; the
//! trace-based in-house simulator then consumed per-operation constants.
//! We reproduce that methodology: every constant below is a documented
//! per-operation figure, either taken directly from the paper's
//! configuration tables or from the DianNao/ISAAC-era literature the
//! paper builds on. EXPERIMENTS.md records how the resulting *shapes*
//! compare against the paper's figures.

use serde::{Deserialize, Serialize};

/// CPU configuration (paper Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuParams {
    /// Cores.
    pub cores: u32,
    /// Clock in GHz.
    pub ghz: f64,
    /// Sustained MACs per core per cycle on NN kernels (SIMD f32 with
    /// load/store overheads; conservative general-purpose figure).
    pub macs_per_core_cycle: f64,
    /// Energy per CPU MAC including pipeline overheads, pJ (scalar f32 on
    /// an OoO core costs ~two orders of magnitude more than the FP op
    /// itself, paper §I ref \[1\]).
    pub mac_energy_pj: f64,
    /// Bytes per weight/activation element (f32).
    pub element_bytes: u64,
    /// Time multiplier on convolution MACs (im2col data reshaping and the
    /// cache-unfriendly access patterns of CPU convolution).
    pub conv_penalty: f64,
    /// Per-layer framework overhead (kernel launch, im2col staging,
    /// scheduling), ns — dominant for small layers on 2016-era stacks.
    pub layer_overhead_ns: f64,
    /// Last-level cache capacity per core, bytes (2 MB L2, Table IV).
    pub llc_bytes: u64,
    /// Energy per byte moved over the off-chip bus + DRAM access, pJ/B
    /// (~20 pJ/bit for DDR3-class interfaces).
    pub mem_energy_pj_per_byte: f64,
    /// Energy per byte touched in the cache hierarchy, pJ/B.
    pub cache_energy_pj_per_byte: f64,
}

impl CpuParams {
    /// Table IV: 4 cores at 3 GHz, 32 KB L1, 2 MB L2.
    pub fn table_iv() -> Self {
        CpuParams {
            cores: 4,
            ghz: 3.0,
            macs_per_core_cycle: 0.5,
            mac_energy_pj: 400.0,
            element_bytes: 4,
            conv_penalty: 3.0,
            layer_overhead_ns: 50_000.0,
            llc_bytes: 2 * 1024 * 1024,
            mem_energy_pj_per_byte: 160.0,
            cache_energy_pj_per_byte: 6.0,
        }
    }

    /// Aggregate MAC throughput in MACs/ns.
    pub fn macs_per_ns(&self) -> f64 {
        f64::from(self.cores) * self.ghz * self.macs_per_core_cycle
    }
}

/// The parallel NPU of Table V (DianNao-class \[17\]): a 16x16 multiplier
/// array with a 256-1 adder tree, 2 KB input/output buffers and a 32 KB
/// weight buffer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NpuParams {
    /// Multipliers (16 x 16).
    pub macs: u32,
    /// Clock in GHz (65 nm synthesis, ~1 GHz as in DianNao).
    pub ghz: f64,
    /// Bytes per element (16-bit fixed point, as DianNao).
    pub element_bytes: u64,
    /// Input/output buffer bytes (2 KB each).
    pub io_buffer_bytes: u64,
    /// Weight buffer bytes (32 KB).
    pub weight_buffer_bytes: u64,
    /// Energy per 16-bit MAC in the array, pJ (DianNao-class 65 nm).
    pub mac_energy_pj: f64,
    /// Energy per byte through the NPU buffers, pJ/B.
    pub buffer_energy_pj_per_byte: f64,
    /// Fixed per-layer control/DMA overhead (tile scheduling, buffer
    /// double-buffering turnaround), ns.
    pub layer_overhead_ns: f64,
}

impl NpuParams {
    /// Table V values.
    pub fn table_v() -> Self {
        NpuParams {
            macs: 256,
            ghz: 1.0,
            element_bytes: 2,
            io_buffer_bytes: 2 * 1024,
            weight_buffer_bytes: 32 * 1024,
            mac_energy_pj: 1.0,
            buffer_energy_pj_per_byte: 1.2,
            layer_overhead_ns: 1000.0,
        }
    }

    /// Peak MAC throughput in MACs/ns.
    pub fn macs_per_ns(&self) -> f64 {
        f64::from(self.macs) * self.ghz
    }

    /// Cycles for one layer on the 16x16 array: the array consumes 16
    /// inputs x 16 outputs per cycle, so narrow layers underutilize it
    /// (e.g. a 1-channel 5x5 convolution uses 25 of 256 lanes).
    pub fn layer_cycles(&self, reduce_dim: u64, output_dim: u64, positions: u64) -> u64 {
        let side = (self.macs as f64).sqrt() as u64; // 16
        positions * reduce_dim.div_ceil(side) * output_dim.div_ceil(side)
    }
}

/// Off-chip and in-stack memory-path parameters shared by the machines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemPathParams {
    /// Off-chip bus bandwidth, GB/s (533 MHz DDR x64, Table IV).
    pub external_gbps: f64,
    /// Energy per byte over the off-chip path (bus + array access), pJ/B.
    pub external_pj_per_byte: f64,
    /// Internal (3D-stacked, per-bank) bandwidth for pNPU-pim, GB/s —
    /// an order of magnitude above the external bus (HMC-class TSVs).
    pub internal_gbps: f64,
    /// Energy per byte over the internal path, pJ/B (the paper reports
    /// pim saves ~93.9 % of memory energy vs the external path).
    pub internal_pj_per_byte: f64,
}

impl MemPathParams {
    /// Defaults derived from Table IV plus HMC-class internal figures.
    pub fn prime_default() -> Self {
        MemPathParams {
            external_gbps: 8.528,
            external_pj_per_byte: 160.0,
            internal_gbps: 120.0,
            internal_pj_per_byte: 9.8,
        }
    }
}

/// PRIME's FF-subarray execution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrimeParams {
    /// One analog crossbar evaluation (drive + integrate), ns.
    pub mat_evaluate_ns: f64,
    /// Reconfigurable-SA conversion per output bit, ns.
    pub sa_per_bit_ns: f64,
    /// Output precision (6-bit SA).
    pub output_bits: u8,
    /// Sequential composing-part evaluations per pass (HH, HL, LH; LL is
    /// dropped under the default scheme).
    pub parts_per_pass: u32,
    /// Reconfigurable 6-bit SAs per mat (paper §V-A: eight per mat);
    /// bitline groups share them sequentially.
    pub sas_per_mat: u32,
    /// Digital merge add, ns (the precision-control adder).
    pub merge_add_ns: f64,
    /// Width of the Buffer subarray's private data port, bytes per beat.
    pub buffer_beat_bytes: u64,
    /// One beat of the Buffer subarray's private port, ns.
    pub buffer_beat_ns: f64,
    /// Inter-bank transfer bandwidth over the shared internal bus, GB/s
    /// (RowClone-style in-chip moves, shared by all banks).
    pub interbank_gbps: f64,
    /// Energy of one full-mat analog evaluation incl. periphery, pJ.
    pub mat_evaluate_pj: f64,
    /// Energy per SA conversion per bitline per bit, pJ.
    pub sa_pj_per_bit: f64,
    /// Energy per merge add, pJ.
    pub merge_add_pj: f64,
    /// Energy per byte through the Buffer subarray, pJ/B.
    pub buffer_pj_per_byte: f64,
    /// Energy per byte of inter-bank communication, pJ/B.
    pub interbank_pj_per_byte: f64,
    /// Banks (NPUs) available for bank-level parallelism.
    pub banks: u32,
}

impl PrimeParams {
    /// Defaults: device timings from `prime-device`, dot-product-engine
    /// energy figures, 64 banks (8 chips x 8 banks, Table IV).
    pub fn prime_default() -> Self {
        PrimeParams {
            mat_evaluate_ns: 30.0,
            sa_per_bit_ns: 2.0,
            output_bits: 6,
            parts_per_pass: 3,
            sas_per_mat: 8,
            merge_add_ns: 1.0,
            buffer_beat_bytes: 64,
            buffer_beat_ns: 2.0,
            interbank_gbps: 20.0,
            mat_evaluate_pj: 300.0,
            sa_pj_per_bit: 0.5,
            merge_add_pj: 0.1,
            buffer_pj_per_byte: 1.5,
            interbank_pj_per_byte: 4.0,
            banks: 64,
        }
    }

    /// Latency of one composed pass over one mat with `active_cols`
    /// composed columns to sense: the sequential part evaluations, each
    /// followed by SA conversion of the column groups sharing the mat's
    /// eight SAs.
    pub fn pass_ns(&self, active_cols: u64) -> f64 {
        let sa_rounds = active_cols.max(1).div_ceil(u64::from(self.sas_per_mat)) as f64;
        f64::from(self.parts_per_pass)
            * (self.mat_evaluate_ns
                + sa_rounds * self.sa_per_bit_ns * f64::from(self.output_bits))
    }

    /// Energy of one composed pass over one mat: array biasing scales with
    /// the active-row fraction, sensing with the active columns.
    pub fn pass_pj(&self, active_rows: u64, active_cols: u64) -> f64 {
        let row_frac = (active_rows as f64 / 256.0).min(1.0);
        f64::from(self.parts_per_pass)
            * (self.mat_evaluate_pj * row_frac
                + self.sa_pj_per_bit * f64::from(self.output_bits) * active_cols as f64)
    }
}

/// The evaluation batch: one image per bank (the OS places images to
/// exploit bank-level parallelism, §IV-B2).
pub const EVAL_BATCH: u32 = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_throughput_is_modest() {
        let cpu = CpuParams::table_iv();
        // 4 cores x 3 GHz x 0.5 = 6 MACs/ns.
        assert!((cpu.macs_per_ns() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn npu_is_much_faster_than_cpu_at_compute() {
        let cpu = CpuParams::table_iv();
        let npu = NpuParams::table_v();
        assert!(npu.macs_per_ns() > 40.0 * cpu.macs_per_ns() / 10.0);
        assert_eq!(npu.macs, 256);
    }

    #[test]
    fn internal_path_beats_external_in_both_time_and_energy() {
        let m = MemPathParams::prime_default();
        assert!(m.internal_gbps > 10.0 * m.external_gbps);
        // pim memory-energy saving ~94 % (paper Fig. 11).
        assert!(m.internal_pj_per_byte / m.external_pj_per_byte < 0.08);
    }

    #[test]
    fn prime_pass_costs_compose() {
        let p = PrimeParams::prime_default();
        // 8 active columns = one SA round: 3 parts x (30 + 6 x 2) ns.
        assert!((p.pass_ns(8) - 3.0 * (30.0 + 12.0)).abs() < 1e-9);
        // 128 columns = 16 SA rounds.
        assert!((p.pass_ns(128) - 3.0 * (30.0 + 16.0 * 12.0)).abs() < 1e-9);
        assert!(p.pass_pj(256, 128) > p.pass_pj(26, 5));
    }

    #[test]
    fn npu_cycles_penalize_narrow_layers() {
        let p = NpuParams::table_v();
        // A 1-channel 5x5 conv with 5 maps uses 2x1 tiles per position.
        assert_eq!(p.layer_cycles(25, 5, 576), 2 * 576);
        // A dense 256x256 FC uses the full array.
        assert_eq!(p.layer_cycles(256, 256, 1), 16 * 16);
    }
}
