//! The four evaluated machines (paper §V-A, Tables IV/V):
//!
//! * **CPU-only** — the Table IV baseline: a 4-core 3 GHz out-of-order
//!   processor in front of the ReRAM main memory;
//! * **pNPU-co** — the Table V parallel NPU attached as a co-processor:
//!   all weights and activations cross the off-chip memory bus;
//! * **pNPU-pim** — the same NPU 3D-stacked on top of each bank, riding
//!   the internal bandwidth; evaluated as one unit (x1) and one per bank
//!   (x64);
//! * **PRIME** — FF subarrays computing in place: weights never move,
//!   inputs/outputs stage through the Buffer subarrays, banks provide
//!   64-way image parallelism, and large NNs pipeline across banks.

use prime_compiler::{map_network, CompileError, CompileOptions, HwTarget, NetworkMapping, NnScale};
use prime_nn::{LayerSpec, NetworkSpec};

use crate::params::{CpuParams, MemPathParams, NpuParams, PrimeParams};
use crate::result::{Breakdown, RunResult};
use crate::traffic::{layer_traffic, network_traffic};

/// A machine model that can run an inference workload.
pub trait Machine {
    /// Display name matching the paper's figures.
    fn name(&self) -> &str;

    /// Runs `batch` independent inferences of `spec`.
    fn run(&self, spec: &NetworkSpec, batch: u32) -> RunResult;
}

/// The CPU-only baseline.
#[derive(Debug, Clone)]
pub struct CpuMachine {
    params: CpuParams,
    mem: MemPathParams,
}

impl CpuMachine {
    /// Creates the Table IV CPU over the default memory path.
    pub fn new() -> Self {
        CpuMachine { params: CpuParams::table_iv(), mem: MemPathParams::prime_default() }
    }
}

impl Default for CpuMachine {
    fn default() -> Self {
        CpuMachine::new()
    }
}

impl Machine for CpuMachine {
    fn name(&self) -> &str {
        "CPU"
    }

    fn run(&self, spec: &NetworkSpec, batch: u32) -> RunResult {
        let t = network_traffic(spec);
        let p = &self.params;
        let mut compute_ns = 0.0;
        for layer in spec.layers() {
            let macs = layer.mac_ops() as f64;
            let penalty = match layer {
                LayerSpec::Conv { .. } => p.conv_penalty,
                _ => 1.0,
            };
            compute_ns += macs * penalty / p.macs_per_ns() + p.layer_overhead_ns;
        }
        // NN inference streams the full model every image (weight reuse
        // within an image is already counted in `macs`; across layers the
        // working set exceeds the LLC for all but toy networks). Models
        // that fit the LLC stay resident across the batch.
        let weight_bytes = t.weights * p.element_bytes;
        // The LLC is shared with the OS and activation working set;
        // roughly half is available to hold model weights.
        let streamed_weights = if weight_bytes > p.llc_bytes / 2 { weight_bytes } else { 0 };
        let activation_bytes =
            (t.network_inputs + t.network_outputs + 2 * t.intermediate) * p.element_bytes;
        let mem_bytes = streamed_weights + activation_bytes;
        let memory_ns = mem_bytes as f64 / self.mem.external_gbps;
        // Cache-hierarchy traffic: each MAC touches one weight element.
        let cache_bytes = t.macs * p.element_bytes;
        let per_image = Breakdown {
            compute: compute_ns,
            buffer: 0.0, // cache time is overlapped with compute on OoO cores
            memory: memory_ns,
        };
        let energy = Breakdown {
            compute: t.macs as f64 * p.mac_energy_pj,
            buffer: cache_bytes as f64 * p.cache_energy_pj_per_byte,
            memory: mem_bytes as f64 * p.mem_energy_pj_per_byte
                + if streamed_weights == 0 {
                    // Cached models still pay one memory fill per batch.
                    weight_bytes as f64 * p.mem_energy_pj_per_byte / f64::from(batch.max(1))
                } else {
                    0.0
                },
        };
        let b = f64::from(batch);
        RunResult {
            machine: self.name().to_string(),
            benchmark: spec.name().to_string(),
            batch,
            latency_ns: per_image.total() * b,
            time_ns: per_image.scale(b),
            energy_pj: energy.scale(b),
        }
    }
}

/// Where the pNPU sits relative to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NpuPlacement {
    /// Co-processor behind the off-chip bus (pNPU-co).
    CoProcessor,
    /// 3D-stacked PIM processor on the internal path (pNPU-pim).
    Pim {
        /// Parallel NPU instances (1 or 64 in the paper).
        units: u32,
    },
}

/// The DianNao-class parallel NPU in either placement.
#[derive(Debug, Clone)]
pub struct NpuMachine {
    params: NpuParams,
    mem: MemPathParams,
    placement: NpuPlacement,
    name: String,
}

impl NpuMachine {
    /// The pNPU-co configuration.
    pub fn co_processor() -> Self {
        NpuMachine {
            params: NpuParams::table_v(),
            mem: MemPathParams::prime_default(),
            placement: NpuPlacement::CoProcessor,
            name: "pNPU-co".to_string(),
        }
    }

    /// The pNPU-pim configuration with `units` stacked NPUs.
    pub fn pim(units: u32) -> Self {
        NpuMachine {
            params: NpuParams::table_v(),
            mem: MemPathParams::prime_default(),
            placement: NpuPlacement::Pim { units },
            name: format!("pNPU-pim-x{units}"),
        }
    }

    fn bandwidth_gbps(&self) -> f64 {
        match self.placement {
            NpuPlacement::CoProcessor => self.mem.external_gbps,
            NpuPlacement::Pim { .. } => self.mem.internal_gbps,
        }
    }

    fn mem_pj_per_byte(&self) -> f64 {
        match self.placement {
            NpuPlacement::CoProcessor => self.mem.external_pj_per_byte,
            NpuPlacement::Pim { .. } => self.mem.internal_pj_per_byte,
        }
    }
}

impl Machine for NpuMachine {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, spec: &NetworkSpec, batch: u32) -> RunResult {
        let p = &self.params;
        let mut compute_ns = 0.0;
        let mut mem_bytes = 0u64;
        let mut buffer_bytes = 0u64;
        for layer in spec.layers() {
            let t = layer_traffic(layer);
            // Array-utilization-aware cycle count plus per-layer control
            // overhead (16x16 lanes; narrow layers underutilize).
            let cycles = match *layer {
                LayerSpec::FullyConnected { inputs, outputs } => {
                    p.layer_cycles(inputs as u64, outputs as u64, 1)
                }
                LayerSpec::Conv { in_ch, out_ch, kernel, .. } => {
                    let positions = (layer.outputs() / out_ch) as u64;
                    p.layer_cycles((in_ch * kernel * kernel) as u64, out_ch as u64, positions)
                }
                LayerSpec::Pool { .. } => layer.outputs() as u64 / 16 + 1,
                // LRN runs on the NPU's nonlinear units at element rate.
                LayerSpec::Lrn { .. } => layer.mac_ops() / 16 + 1,
            };
            compute_ns += cycles as f64 / p.ghz + p.layer_overhead_ns;
            // Weights stream from memory whenever the layer exceeds the
            // 32 KB weight buffer; inside the buffer they are fetched once
            // per image (no batch reuse: images are processed one by one).
            let w_bytes = t.weights * p.element_bytes;
            mem_bytes += w_bytes;
            // Activations spill to memory when they exceed the 2 KB
            // input/output buffers (write + read back).
            let in_bytes = t.inputs * p.element_bytes;
            let out_bytes = t.outputs * p.element_bytes;
            if in_bytes > p.io_buffer_bytes {
                mem_bytes += in_bytes;
            }
            if out_bytes > p.io_buffer_bytes {
                mem_bytes += out_bytes;
            }
            // Every operand passes the on-chip buffers regardless.
            buffer_bytes += w_bytes + in_bytes + out_bytes;
        }
        let memory_ns = mem_bytes as f64 / self.bandwidth_gbps();
        let per_image = Breakdown { compute: compute_ns, buffer: 0.0, memory: memory_ns };
        let energy = Breakdown {
            compute: {
                let t = network_traffic(spec);
                t.macs as f64 * p.mac_energy_pj
            },
            buffer: buffer_bytes as f64 * p.buffer_energy_pj_per_byte,
            memory: mem_bytes as f64 * self.mem_pj_per_byte(),
        };
        let units = match self.placement {
            NpuPlacement::CoProcessor => 1,
            NpuPlacement::Pim { units } => units,
        };
        let rounds = batch.div_ceil(units).max(1);
        let b = f64::from(batch);
        RunResult {
            machine: self.name.clone(),
            benchmark: spec.name().to_string(),
            batch,
            latency_ns: per_image.total() * f64::from(rounds),
            time_ns: per_image.scale(b),
            energy_pj: energy.scale(b),
        }
    }
}

/// The PRIME machine: computation in the FF subarrays, driven by the
/// compile-time mapping.
#[derive(Debug, Clone)]
pub struct PrimeMachine {
    params: PrimeParams,
    target: HwTarget,
    options: CompileOptions,
    /// Disable bank-level parallelism (the Fig. 9 breakdown variant).
    single_bank: bool,
    name: String,
}

impl PrimeMachine {
    /// The full PRIME configuration (64-way bank parallelism).
    pub fn new() -> Self {
        PrimeMachine {
            params: PrimeParams::prime_default(),
            target: HwTarget::prime_default(),
            options: CompileOptions::default(),
            single_bank: false,
            name: "PRIME".to_string(),
        }
    }

    /// PRIME restricted to one copy of the NN (no bank-level image
    /// parallelism), used by the Fig. 9 time-breakdown comparison.
    pub fn without_bank_parallelism() -> Self {
        PrimeMachine { single_bank: true, name: "PRIME-1bank".to_string(), ..Self::new() }
    }

    /// PRIME with the compile-time replication optimization disabled —
    /// the §IV-B1 ablation.
    pub fn without_replication() -> Self {
        PrimeMachine {
            options: CompileOptions { replicate: false, ..CompileOptions::default() },
            name: "PRIME-no-repl".to_string(),
            ..Self::new()
        }
    }

    /// PRIME scaled to a memory with `banks` banks (bank-parallelism
    /// ablation).
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn with_banks(banks: u32) -> Self {
        assert!(banks > 0, "at least one bank required");
        let mut target = HwTarget::prime_default();
        target.banks = banks as usize;
        let mut params = PrimeParams::prime_default();
        params.banks = banks;
        PrimeMachine {
            params,
            target,
            options: CompileOptions::default(),
            single_bank: false,
            name: format!("PRIME-{banks}bank"),
        }
    }

    /// PRIME over an explicit compiler target and options — used by the
    /// cross-stack tests that pin the simulator to the functional
    /// engine's geometry.
    pub fn with_target(target: HwTarget, options: CompileOptions) -> Self {
        let mut params = PrimeParams::prime_default();
        params.banks = target.banks as u32;
        PrimeMachine {
            params,
            target,
            options,
            single_bank: false,
            name: "PRIME-custom".to_string(),
        }
    }

    /// The compiled mapping for a workload (exposed for the experiments).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] when the workload does not fit the
    /// machine's target (the paper's own workloads always do).
    pub fn mapping(&self, spec: &NetworkSpec) -> Result<NetworkMapping, CompileError> {
        map_network(spec, &self.target, self.options)
    }

    /// Inter-bank pipeline stages the latency model charges for `spec`
    /// (1 when the mapping has no pipeline, or when the workload does not
    /// fit at all). The functional engine executes this same stage list,
    /// so its `CommandRunner::stage_count` must agree.
    pub fn pipeline_stage_count(&self, spec: &NetworkSpec) -> usize {
        self.mapping(spec).map_or(1, |m| m.pipeline.len().max(1))
    }

    /// Serial compute time of one layer for one image.
    fn layer_compute_ns(
        &self,
        layer: &LayerSpec,
        lm: &prime_compiler::LayerMapping,
    ) -> f64 {
        let p = &self.params;
        match layer {
            LayerSpec::Lrn { .. } => {
                // CPU fallback (paper §III-E): the activations round-trip
                // over the external bus and the CPU computes the
                // normalization.
                let cpu = CpuParams::table_iv();
                let mem = MemPathParams::prime_default();
                let bytes = (layer.inputs() + layer.outputs()) as u64; // 6-bit codes
                layer.mac_ops() as f64 / cpu.macs_per_ns()
                    + bytes as f64 / mem.external_gbps
            }
            LayerSpec::Pool { .. } => {
                let steps =
                    (lm.vectors_per_inference as u64).div_ceil(u64::from(p.sas_per_mat));
                steps as f64 * p.merge_add_ns
            }
            _ => {
                let cols_per_mat =
                    lm.cols_needed.div_ceil(lm.col_tiles.max(1)) * lm.in_mat_replication;
                lm.passes_per_inference() as f64 * p.pass_ns(cols_per_mat as u64)
                    + (lm.row_tiles.saturating_sub(1)) as f64 * p.merge_add_ns
            }
        }
    }

    /// Latency of the slowest pipeline stage (large-scale NNs): the
    /// pipeline interval is the maximum over `mapping.pipeline` stages of
    /// the stage's summed layer times — the same stage list the
    /// functional `CommandRunner` executes, so the latency model and the
    /// execution engine count identical stages. Falls back to the
    /// slowest single layer if the mapping carries no pipeline.
    fn bottleneck_stage_ns(&self, spec: &NetworkSpec, mapping: &NetworkMapping) -> f64 {
        let per_layer: Vec<f64> = spec
            .layers()
            .iter()
            .zip(&mapping.layers)
            .map(|(l, lm)| self.layer_compute_ns(l, lm))
            .collect();
        if mapping.pipeline.is_empty() {
            return per_layer.iter().copied().fold(1.0f64, f64::max);
        }
        mapping
            .pipeline
            .iter()
            .map(|stage| stage.layers.iter().map(|&i| per_layer[i]).sum::<f64>())
            .fold(1.0f64, f64::max)
    }

    /// Per-image latency decomposition (compute, buffer, memory-visible),
    /// plus the inter-bank bytes for large-scale NNs.
    fn per_image(&self, spec: &NetworkSpec, mapping: &NetworkMapping) -> (Breakdown, u64) {
        let p = &self.params;
        let mut compute_ns = 0.0;
        let mut buffer_bytes = 0u64;
        for (layer, lm) in spec.layers().iter().zip(&mapping.layers) {
            // All tiles of a copy operate in parallel; passes are the
            // vector-sequential count after replication, each sensing its
            // active columns through the mat's eight shared SAs.
            compute_ns += self.layer_compute_ns(layer, lm);
            // 6-bit activations: one byte per element through the Buffer
            // subarray, both directions.
            buffer_bytes += (layer.inputs() + layer.outputs()) as u64;
        }
        let buffer_ns = buffer_bytes.div_ceil(p.buffer_beat_bytes) as f64 * p.buffer_beat_ns;
        // Input fetch from Mem subarrays overlaps with computation via the
        // Buffer subarrays (paper Fig. 9 reports zero visible memory
        // time); the traffic still costs energy.
        let memory_visible_ns = 0.0;
        // Large-scale NNs move activations between banks at stage
        // boundaries; in the worst case every inter-layer transfer crosses
        // a bank (one byte per 6-bit activation).
        let interbank_bytes = if mapping.scale == NnScale::Large {
            network_traffic(spec).intermediate
        } else {
            0
        };
        let interbank_ns = interbank_bytes as f64 / p.interbank_gbps;
        (
            Breakdown {
                compute: compute_ns + interbank_ns,
                buffer: buffer_ns,
                memory: memory_visible_ns,
            },
            interbank_bytes,
        )
    }

    /// Per-image energy decomposition.
    fn per_image_energy(
        &self,
        spec: &NetworkSpec,
        mapping: &NetworkMapping,
        interbank_bytes: u64,
    ) -> Breakdown {
        let p = &self.params;
        let mem = MemPathParams::prime_default();
        let mut compute_pj = 0.0;
        let mut buffer_bytes = 0u64;
        for (layer, lm) in spec.layers().iter().zip(&mapping.layers) {
            match layer {
                LayerSpec::Lrn { .. } => {
                    // CPU fallback: CPU MAC energy plus the bus round trip.
                    let cpu = CpuParams::table_iv();
                    compute_pj += layer.mac_ops() as f64 * cpu.mac_energy_pj;
                    let bytes = (layer.inputs() + layer.outputs()) as u64;
                    compute_pj += bytes as f64 * mem.external_pj_per_byte;
                }
                LayerSpec::Pool { .. } => {
                    compute_pj += lm.vectors_per_inference as f64 * p.merge_add_pj;
                    buffer_bytes += (layer.inputs() + layer.outputs()) as u64;
                }
                _ => {
                    // Every input vector excites every tile of one copy;
                    // energy scales with each tile's active rows/columns.
                    let evaluations = lm.vectors_per_inference as f64 * lm.base_mats as f64;
                    let rows_per_mat = lm.rows_needed.div_ceil(lm.row_tiles.max(1));
                    let cols_per_mat = lm.cols_needed.div_ceil(lm.col_tiles.max(1));
                    compute_pj +=
                        evaluations * p.pass_pj(rows_per_mat as u64, cols_per_mat as u64);
                    compute_pj += lm.merge_adds as f64 * p.merge_add_pj;
                    buffer_bytes += (layer.inputs() + layer.outputs()) as u64;
                }
            }
        }
        // Network input fetch / output commit through the in-bank path.
        let t = network_traffic(spec);
        let mem_bytes = t.network_inputs + t.network_outputs + interbank_bytes;
        Breakdown {
            compute: compute_pj,
            buffer: buffer_bytes as f64 * p.buffer_pj_per_byte,
            memory: mem_bytes as f64 * mem.internal_pj_per_byte
                + interbank_bytes as f64 * p.interbank_pj_per_byte,
        }
    }
}

impl Default for PrimeMachine {
    fn default() -> Self {
        PrimeMachine::new()
    }
}

impl Machine for PrimeMachine {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, spec: &NetworkSpec, batch: u32) -> RunResult {
        let Ok(mapping) = self.mapping(spec) else {
            // The workload does not fit this PRIME configuration at all:
            // report infinite latency rather than aborting the sweep.
            let zero = Breakdown { compute: 0.0, buffer: 0.0, memory: 0.0 };
            return RunResult {
                machine: self.name.clone(),
                benchmark: spec.name().to_string(),
                batch,
                latency_ns: f64::INFINITY,
                time_ns: zero,
                energy_pj: zero,
            };
        };
        self.run_mapped(spec, &mapping, batch)
    }
}

impl PrimeMachine {
    /// Runs `batch` inferences under an externally supplied `mapping`
    /// instead of the machine's own compile: the scoring hook the
    /// cost-model-driven mapping search uses to price each enumerated
    /// candidate with the same latency/energy model
    /// [`Machine::run`] applies to the machine's default compile.
    pub fn run_mapped(
        &self,
        spec: &NetworkSpec,
        mapping: &NetworkMapping,
        batch: u32,
    ) -> RunResult {
        let (per_image, interbank_bytes) = self.per_image(spec, mapping);
        let energy = self.per_image_energy(spec, mapping, interbank_bytes);
        let copies = if self.single_bank { 1 } else { mapping.copies_across_memory as u32 };
        let latency_ns = match mapping.scale {
            NnScale::Large => {
                // Inter-bank pipeline: after the fill, one image completes
                // per interval, where the interval is the slower of the
                // bottleneck stage and the image's share of the internal
                // bus (shared by all banks, so transfers serialize).
                let stage = self.bottleneck_stage_ns(spec, mapping);
                let bus = interbank_bytes as f64 / self.params.interbank_gbps;
                let interval = stage.max(bus);
                let rounds = batch.div_ceil(copies).max(1) as f64;
                per_image.total() + interval * (rounds - 1.0)
            }
            _ => {
                let rounds = batch.div_ceil(copies).max(1) as f64;
                per_image.total() * rounds
            }
        };
        let b = f64::from(batch);
        RunResult {
            machine: self.name.clone(),
            benchmark: spec.name().to_string(),
            batch,
            latency_ns,
            time_ns: per_image.scale(b),
            energy_pj: energy.scale(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EVAL_BATCH;
    use prime_nn::MlBench;

    #[test]
    fn machines_report_names_from_the_paper() {
        assert_eq!(CpuMachine::new().name(), "CPU");
        assert_eq!(NpuMachine::co_processor().name(), "pNPU-co");
        assert_eq!(NpuMachine::pim(64).name(), "pNPU-pim-x64");
        assert_eq!(PrimeMachine::new().name(), "PRIME");
    }

    #[test]
    fn ordering_holds_on_every_benchmark() {
        let cpu = CpuMachine::new();
        let co = NpuMachine::co_processor();
        let pim1 = NpuMachine::pim(1);
        let pim64 = NpuMachine::pim(64);
        let prime = PrimeMachine::new();
        for bench in MlBench::ALL {
            let spec = bench.spec();
            let l_cpu = cpu.run(&spec, EVAL_BATCH).latency_ns;
            let l_co = co.run(&spec, EVAL_BATCH).latency_ns;
            let l_p1 = pim1.run(&spec, EVAL_BATCH).latency_ns;
            let l_p64 = pim64.run(&spec, EVAL_BATCH).latency_ns;
            let l_prime = prime.run(&spec, EVAL_BATCH).latency_ns;
            assert!(l_cpu > l_co, "{}: CPU vs co", bench.name());
            assert!(l_co > l_p1, "{}: co vs pim-x1", bench.name());
            assert!(l_p1 >= l_p64, "{}: pim-x1 vs pim-x64", bench.name());
            assert!(l_p64 > l_prime, "{}: pim-x64 vs PRIME", bench.name());
        }
    }

    #[test]
    fn prime_memory_time_is_hidden() {
        let prime = PrimeMachine::new();
        let r = prime.run(&MlBench::MlpM.spec(), EVAL_BATCH);
        assert_eq!(r.time_ns.memory, 0.0);
        assert!(r.time_ns.compute > 0.0);
        assert!(r.time_ns.buffer > 0.0);
    }

    #[test]
    fn pim_reduces_memory_share_vs_co() {
        let co = NpuMachine::co_processor();
        let pim = NpuMachine::pim(1);
        for bench in MlBench::ALL {
            let spec = bench.spec();
            let r_co = co.run(&spec, 1);
            let r_pim = pim.run(&spec, 1);
            let (_, _, m_co) = r_co.time_ns.fractions();
            let (_, _, m_pim) = r_pim.time_ns.fractions();
            assert!(m_pim < m_co, "{}: pim memory share must shrink", bench.name());
        }
    }

    #[test]
    fn vgg_prime_speedup_is_smallest() {
        let cpu = CpuMachine::new();
        let prime = PrimeMachine::new();
        let speedup = |bench: MlBench| {
            let spec = bench.spec();
            cpu.run(&spec, EVAL_BATCH).latency_ns / prime.run(&spec, EVAL_BATCH).latency_ns
        };
        let vgg = speedup(MlBench::VggD);
        for bench in [MlBench::Cnn1, MlBench::Cnn2, MlBench::MlpS, MlBench::MlpM, MlBench::MlpL] {
            assert!(speedup(bench) > vgg, "{} should outpace VGG-D", bench.name());
        }
    }

    #[test]
    fn single_bank_variant_is_slower_on_batches() {
        let full = PrimeMachine::new();
        let single = PrimeMachine::without_bank_parallelism();
        let spec = MlBench::MlpS.spec();
        assert!(
            single.run(&spec, EVAL_BATCH).latency_ns > full.run(&spec, EVAL_BATCH).latency_ns
        );
    }
}
