//! Property-based tests for the PRIME core: the hardware pipeline must
//! track software semantics for arbitrary small networks, and the FF mat
//! must honour the composing scheme for arbitrary weights.

use proptest::prelude::*;

use prime_circuits::{part_sums, ComposingScheme};
use prime_core::{FfExecutor, FfMat};
use prime_mem::MatFunction;
use prime_nn::{Activation, FullyConnected, Layer, Network, Tensor};

/// Small random FC networks with non-negative inputs.
fn small_net_case() -> impl Strategy<Value = (Vec<f32>, Vec<f32>, Vec<f32>, usize, usize)> {
    (2usize..12, 1usize..6).prop_flat_map(|(inputs, outputs)| {
        (
            proptest::collection::vec(-1.0f32..1.0, inputs * outputs),
            proptest::collection::vec(-0.5f32..0.5, outputs),
            proptest::collection::vec(0.0f32..1.0, inputs),
            Just(inputs),
            Just(outputs),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One FC layer through the full FF-mat pipeline tracks software
    /// within the composing scheme's quantization budget.
    #[test]
    fn executor_tracks_software_for_random_fc_layers(
        (weights, bias, input, inputs, outputs) in small_net_case()
    ) {
        let w = Tensor::from_vec(vec![outputs, inputs], weights).unwrap();
        let fc = FullyConnected::from_params(w, bias, Activation::Identity).unwrap();
        let net = Network::new(vec![Layer::Fc(fc.clone())]).unwrap();
        let sw = fc.forward(&input).unwrap();
        let mut exec = FfExecutor::new();
        let (hw, _) = exec.run(&net, &input).unwrap();
        // Tolerance: the 6-bit output window of the calibrated SA plus
        // input/weight quantization, relative to the output range.
        let range = sw.iter().fold(0.1f32, |m, &v| m.max(v.abs()));
        for (a, b) in hw.iter().zip(&sw) {
            prop_assert!((a - b).abs() <= range * 0.2 + 0.06, "hw {a} vs sw {b}");
        }
    }

    /// The FF mat's composed computation equals the circuit-level
    /// composing reference for arbitrary weights and inputs.
    #[test]
    fn ff_mat_equals_composing_reference(
        rows in 1usize..40,
        cols in 1usize..10,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let weights: Vec<i32> = (0..rows * cols).map(|_| rng.gen_range(-255..=255)).collect();
        let inputs: Vec<u16> = (0..rows).map(|_| rng.gen_range(0..64)).collect();
        let mut mat = FfMat::new();
        mat.set_function(MatFunction::Program);
        mat.program_composed(&weights, rows, cols).unwrap();
        mat.set_function(MatFunction::Compute);
        let shift = mat.output_shift();
        let got = mat.compute(&inputs).unwrap();
        // Reference: part sums composed with the mat's scheme and shift.
        let scheme = mat.scheme();
        let parts = part_sums(&scheme, &inputs, &weights, cols).unwrap();
        for (c, &v) in got.iter().enumerate() {
            let reference = compose_with_shift(&scheme, parts[c], shift);
            let sat = (1i64 << scheme.output_bits()) - 1;
            prop_assert_eq!(v, reference.clamp(-sat, sat), "column {}", c);
        }
    }

    /// Morphing an FF mat between functions never panics and always
    /// lands in the requested function.
    #[test]
    fn function_switching_is_total(sequence in proptest::collection::vec(0u8..3, 1..12)) {
        let mut mat = FfMat::new();
        for &code in &sequence {
            let function = match code {
                0 => MatFunction::Program,
                1 => MatFunction::Compute,
                _ => MatFunction::Memory,
            };
            mat.set_function(function);
            prop_assert_eq!(mat.function(), function);
        }
    }
}

/// Reference composition at an explicit SA shift (mirrors the hardware
/// accumulation in `FfMat::compute`).
fn compose_with_shift(scheme: &ComposingScheme, parts: prime_circuits::PartSums, shift: u8) -> i64 {
    use prime_circuits::Part;
    let mut acc = 0i64;
    for part in scheme.included_parts() {
        let value = match part {
            Part::Hh => parts.hh,
            Part::Hl => parts.hl,
            Part::Lh => parts.lh,
            Part::Ll => parts.ll,
        };
        let scale = scheme.part_scale(part);
        if shift >= scale {
            acc += value >> (shift - scale);
        } else {
            acc += value << (scale - shift);
        }
    }
    acc
}
