//! Error type for the PRIME core architecture.

use std::fmt;

use prime_circuits::CircuitError;
use prime_device::DeviceError;
use prime_mem::MemError;
use prime_nn::NnError;

/// Errors raised by FF-subarray, controller, and executor operations.
#[derive(Debug, Clone, PartialEq)]
pub enum PrimeError {
    /// A device-layer failure.
    Device(DeviceError),
    /// A peripheral-circuit failure.
    Circuit(CircuitError),
    /// A memory-system failure.
    Mem(MemError),
    /// An NN-substrate failure.
    Nn(NnError),
    /// An operation was issued to a mat in the wrong function mode.
    WrongMode {
        /// What the operation required.
        expected: &'static str,
        /// The mat's current mode.
        found: &'static str,
    },
    /// The mapped weights do not fit the target mat.
    MatOverflow {
        /// Rows requested.
        rows: usize,
        /// Composed columns requested.
        cols: usize,
    },
    /// The buffer subarray ran out of space.
    BufferOverflow {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        capacity: u64,
    },
    /// The executor was given a network/mapping pair that disagrees.
    MappingMismatch {
        /// Human-readable reason.
        reason: String,
    },
    /// The static deployment verifier refused the deployment.
    Rejected {
        /// The `Error`-severity diagnostics that blocked it.
        diagnostics: Vec<prime_analyze::Diagnostic>,
    },
    /// An internal invariant broke (a bug, not a user error).
    Internal {
        /// Human-readable reason.
        reason: String,
    },
    /// A shared system lock was poisoned: some thread panicked while
    /// holding exclusive access, so the system may have been left
    /// mid-operation. The model must be treated as unservable until it
    /// is redeployed; requests must not silently run against the
    /// possibly half-written state.
    Poisoned,
}

impl fmt::Display for PrimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimeError::Device(e) => write!(f, "device error: {e}"),
            PrimeError::Circuit(e) => write!(f, "circuit error: {e}"),
            PrimeError::Mem(e) => write!(f, "memory error: {e}"),
            PrimeError::Nn(e) => write!(f, "nn error: {e}"),
            PrimeError::WrongMode { expected, found } => {
                write!(
                    f,
                    "mat is in {found} mode but the operation requires {expected}"
                )
            }
            PrimeError::MatOverflow { rows, cols } => {
                write!(f, "{rows}x{cols} weights do not fit one FF mat")
            }
            PrimeError::BufferOverflow {
                requested,
                capacity,
            } => {
                write!(f, "buffer needs {requested} bytes but holds {capacity}")
            }
            PrimeError::MappingMismatch { reason } => write!(f, "mapping mismatch: {reason}"),
            PrimeError::Rejected { diagnostics } => {
                write!(f, "deployment rejected by the static verifier:")?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            PrimeError::Internal { reason } => write!(f, "internal invariant broke: {reason}"),
            PrimeError::Poisoned => write!(
                f,
                "system lock poisoned by a thread that panicked mid-operation; \
                 redeploy before serving"
            ),
        }
    }
}

impl std::error::Error for PrimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PrimeError::Device(e) => Some(e),
            PrimeError::Circuit(e) => Some(e),
            PrimeError::Mem(e) => Some(e),
            PrimeError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for PrimeError {
    fn from(e: DeviceError) -> Self {
        PrimeError::Device(e)
    }
}

impl From<CircuitError> for PrimeError {
    fn from(e: CircuitError) -> Self {
        PrimeError::Circuit(e)
    }
}

impl From<MemError> for PrimeError {
    fn from(e: MemError) -> Self {
        PrimeError::Mem(e)
    }
}

impl From<NnError> for PrimeError {
    fn from(e: NnError) -> Self {
        PrimeError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_layer_errors_with_source() {
        let e = PrimeError::from(DeviceError::EnduranceExhausted { row: 0, col: 0 });
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().starts_with("device error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<PrimeError>();
    }
}
