//! The PRIME controller (paper §III-C, Fig. 4 E).
//!
//! Decodes Table I commands and drives the peripheral circuits of one
//! bank's FF subarrays: datapath configuration (function selection,
//! bypass switches, input-source selection) and data-flow control
//! (`fetch`/`commit` between Mem subarrays and the Buffer subarray,
//! `load`/`store` between the Buffer subarray and FF latches/registers).
//! It also sequences the morphing protocol of §III-A2: migrate data out,
//! program weights, reconfigure, compute, wrap up.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use prime_mem::{BufAddr, Command, InputSource, MatAddr, MatFunction};

use crate::buffer::BufferSubarray;
use crate::error::PrimeError;
use crate::ff_mat::{FfMat, MatScratch};

/// Words per memory row modelled by the controller's Mem-subarray space.
const MEM_ROW_WORDS: usize = 32;

/// A snapshot of one mat's memory-mode contents, taken while the mat
/// computes (the §III-A2 data migration).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct MigratedMat {
    rows: Vec<Vec<bool>>,
}

/// Reusable buffers for [`BankController::compute_mat_into`].
///
/// Holds the clamped input codes, the mat-level scratch, and the raw
/// composed outputs. Buffers only grow (the `prime-device` scratch-buffer
/// contract), so after the first compute at a given geometry repeated
/// calls perform zero heap allocation. One scratch serves every mat of a
/// bank.
#[derive(Debug, Default, Clone)]
pub struct BankScratch {
    codes: Vec<u16>,
    mat: MatScratch,
    raw: Vec<i64>,
}

impl BankScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        BankScratch::default()
    }
}

/// The per-bank PRIME controller with its FF subarrays, Buffer subarray,
/// and a modelled Mem-subarray word space.
///
/// # Examples
///
/// Driving the Table I command set end to end:
///
/// ```
/// use prime_core::BankController;
/// use prime_mem::{BufAddr, Command, MemAddr};
///
/// let mut ctrl = BankController::new(1, 2, 256, 1024);
/// ctrl.write_mem(MemAddr(0), &[5, 6, 7]);
/// ctrl.execute(Command::Fetch { from: MemAddr(0), to: BufAddr(0), bytes: 24 })?;
/// assert_eq!(ctrl.buffer_mut().load(BufAddr(0), 3)?, vec![5, 6, 7]);
/// # Ok::<(), prime_core::PrimeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankController {
    /// FF mats, indexed `[subarray][mat]`.
    ff: Vec<Vec<FfMat>>,
    buffer: BufferSubarray,
    /// Modelled Mem-subarray storage, word addressed.
    mem_space: Vec<i64>,
    /// Input latches staged by `load` commands.
    latches: HashMap<(usize, usize), Vec<i64>>,
    /// Output registers filled by mat computation, drained by `store`.
    outputs: HashMap<(usize, usize), Vec<i64>>,
    /// Per-mat input-source selection.
    input_sources: HashMap<(usize, usize), InputSource>,
    /// Data migrated out of FF subarrays during computation.
    migrated: HashMap<(usize, usize), MigratedMat>,
    /// Recycled latch storage: `load` reuses the vector the previous
    /// `compute_mat` consumed, so steady-state staging allocates nothing.
    spare_latch: Vec<i64>,
    /// Every command executed, in order (for inspection and tests).
    log: Vec<Command>,
}

impl BankController {
    /// Creates a controller for `ff_subarrays` FF subarrays of
    /// `mats_per_subarray` mats each, a `buffer_words` Buffer subarray,
    /// and `mem_words` of modelled Mem-subarray space.
    pub fn new(
        ff_subarrays: usize,
        mats_per_subarray: usize,
        buffer_words: usize,
        mem_words: usize,
    ) -> Self {
        let ff = (0..ff_subarrays)
            .map(|_| (0..mats_per_subarray).map(|_| FfMat::new()).collect())
            .collect();
        BankController {
            ff,
            buffer: BufferSubarray::new(buffer_words),
            mem_space: vec![0; mem_words],
            latches: HashMap::new(),
            outputs: HashMap::new(),
            input_sources: HashMap::new(),
            migrated: HashMap::new(),
            spare_latch: Vec::new(),
            log: Vec::new(),
        }
    }

    /// The command log, in execution order.
    pub fn log(&self) -> &[Command] {
        &self.log
    }

    /// Number of FF subarrays this controller manages.
    pub fn ff_subarrays(&self) -> usize {
        self.ff.len()
    }

    /// Mats per FF subarray.
    pub fn mats_per_subarray(&self) -> usize {
        self.ff.first().map_or(0, Vec::len)
    }

    /// The Buffer subarray.
    pub fn buffer(&self) -> &BufferSubarray {
        &self.buffer
    }

    /// Mutable access to the Buffer subarray.
    pub fn buffer_mut(&mut self) -> &mut BufferSubarray {
        &mut self.buffer
    }

    /// Immutable access to a mat.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn mat(&self, addr: MatAddr) -> &FfMat {
        &self.ff[addr.subarray][addr.mat]
    }

    /// Mutable access to a mat.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn mat_mut(&mut self, addr: MatAddr) -> &mut FfMat {
        &mut self.ff[addr.subarray][addr.mat]
    }

    /// Seeds the modelled Mem-subarray space (test/bench harness input).
    pub fn write_mem(&mut self, addr: prime_mem::MemAddr, words: &[i64]) {
        let start = addr.0 as usize / 8;
        self.mem_space[start..start + words.len()].copy_from_slice(words);
    }

    /// Reads back the modelled Mem-subarray space.
    pub fn read_mem(&self, addr: prime_mem::MemAddr, words: usize) -> Vec<i64> {
        let start = addr.0 as usize / 8;
        self.mem_space[start..start + words].to_vec()
    }

    /// Executes one Table I command.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError`] variants for invalid addresses, overflowing
    /// transfers, or wrong-mode operations.
    pub fn execute(&mut self, cmd: Command) -> Result<(), PrimeError> {
        self.log.push(cmd);
        match cmd {
            Command::SetFunction { mat, function } => {
                self.mat_mut(mat).set_function(function);
                Ok(())
            }
            Command::BypassSigmoid { mat, bypass } => {
                let mut dp = self.mat(mat).datapath();
                dp.bypass_sigmoid = bypass;
                self.mat_mut(mat).set_datapath(dp);
                Ok(())
            }
            Command::BypassSa { mat, bypass } => {
                let mut dp = self.mat(mat).datapath();
                dp.bypass_sa = bypass;
                self.mat_mut(mat).set_datapath(dp);
                Ok(())
            }
            Command::SetInputSource { mat, source } => {
                self.input_sources.insert((mat.subarray, mat.mat), source);
                Ok(())
            }
            Command::Fetch { from, to, bytes } => {
                let words = (bytes / 8) as usize;
                let start = from.0 as usize / 8;
                if start + words > self.mem_space.len() {
                    return Err(PrimeError::BufferOverflow {
                        requested: (start + words) as u64,
                        capacity: self.mem_space.len() as u64,
                    });
                }
                let data = self.mem_space[start..start + words].to_vec();
                self.buffer.store(to, &data)
            }
            Command::Commit { from, to, bytes } => {
                let words = (bytes / 8) as usize;
                let data = self.buffer.load(from, words)?;
                let start = to.0 as usize / 8;
                if start + words > self.mem_space.len() {
                    return Err(PrimeError::BufferOverflow {
                        requested: (start + words) as u64,
                        capacity: self.mem_space.len() as u64,
                    });
                }
                self.mem_space[start..start + words].copy_from_slice(&data);
                Ok(())
            }
            Command::Load { from, to, bytes } => {
                let words = (bytes / 8) as usize;
                let key = (to.mat.subarray, to.mat.mat);
                let source = self
                    .input_sources
                    .get(&key)
                    .copied()
                    .unwrap_or(InputSource::Buffer);
                let data = match source {
                    InputSource::Buffer => {
                        // Recycle the latch vector the last compute
                        // consumed: steady-state staging allocates nothing.
                        let mut data = std::mem::take(&mut self.spare_latch);
                        if let Err(e) = self.buffer.load_into(from, words, &mut data) {
                            self.spare_latch = data;
                            return Err(e);
                        }
                        data
                    }
                    InputSource::PreviousLayer => {
                        self.buffer
                            .bypass_take()
                            .ok_or(PrimeError::MappingMismatch {
                                reason:
                                    "input source is previous-layer but bypass register is empty"
                                        .to_string(),
                            })?
                    }
                };
                if let Some(old) = self.latches.insert(key, data) {
                    self.spare_latch = old;
                }
                Ok(())
            }
            Command::Store { from, to, bytes } => {
                let words = (bytes / 8) as usize;
                let data = self
                    .outputs
                    .remove(&(from.mat.subarray, from.mat.mat))
                    .ok_or(PrimeError::MappingMismatch {
                        reason: "store issued before the mat produced output".to_string(),
                    })?;
                if data.len() != words {
                    return Err(PrimeError::MappingMismatch {
                        reason: format!("store of {words} words but mat produced {}", data.len()),
                    });
                }
                self.buffer.store(to, &data)
            }
        }
    }

    /// Runs one mat's computation on its staged latch contents, placing
    /// the result in its output register (drained by `store`).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] if no data was loaded, or
    /// mode errors from the mat.
    pub fn compute_mat(&mut self, addr: MatAddr) -> Result<Vec<i64>, PrimeError> {
        let mut scratch = BankScratch::new();
        let mut out = Vec::new();
        self.compute_mat_into(addr, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`compute_mat`](Self::compute_mat) into caller-owned buffers.
    ///
    /// `out` is cleared and refilled with the mat's post-output-unit
    /// results; the output register kept for `store` reuses its previous
    /// storage, and the consumed latch vector is recycled for the next
    /// `load` — with a reused `scratch`, the whole
    /// load→compute→merge path performs zero steady-state heap
    /// allocation.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] if no data was loaded, or
    /// mode errors from the mat.
    pub fn compute_mat_into(
        &mut self,
        addr: MatAddr,
        scratch: &mut BankScratch,
        out: &mut Vec<i64>,
    ) -> Result<(), PrimeError> {
        self.stage_latch_codes(addr, scratch)?;
        self.ff[addr.subarray][addr.mat].compute_into(
            &scratch.codes,
            &mut scratch.mat,
            &mut scratch.raw,
        )?;
        self.finish_compute(addr, scratch, out);
        Ok(())
    }

    /// Analog variant of [`compute_mat_into`](Self::compute_mat_into):
    /// the mat evaluates through the voltage/conductance domain with read
    /// noise from `noise`, drawing from `rng`. Same scratch contract.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] if no data was loaded, or
    /// mode errors from the mat.
    pub fn compute_mat_analog_into<R: rand::Rng + ?Sized>(
        &mut self,
        addr: MatAddr,
        noise: &prime_device::NoiseModel,
        rng: &mut R,
        scratch: &mut BankScratch,
        out: &mut Vec<i64>,
    ) -> Result<(), PrimeError> {
        self.stage_latch_codes(addr, scratch)?;
        self.ff[addr.subarray][addr.mat].compute_analog_into(
            &scratch.codes,
            noise,
            rng,
            &mut scratch.mat,
            &mut scratch.raw,
        )?;
        self.finish_compute(addr, scratch, out);
        Ok(())
    }

    /// [`compute_mat_into`](Self::compute_mat_into) over caller-provided
    /// input words instead of a staged latch.
    ///
    /// The chunked conv schedule loads a whole tile×chunk block into the
    /// mat latch with one `Command::Load`, then drives the wordlines once
    /// per pixel from a slice of that block; this entry point models the
    /// per-pixel drive without round-tripping each slice through the
    /// `latches` map. The words are clamped to the scheme's input-code
    /// range exactly as a staged latch would be.
    ///
    /// # Errors
    ///
    /// Returns mode errors from the mat.
    pub fn compute_mat_words_into(
        &mut self,
        addr: MatAddr,
        words: &[i64],
        scratch: &mut BankScratch,
        out: &mut Vec<i64>,
    ) -> Result<(), PrimeError> {
        self.stage_word_codes(addr, words, scratch);
        self.ff[addr.subarray][addr.mat].compute_into(
            &scratch.codes,
            &mut scratch.mat,
            &mut scratch.raw,
        )?;
        self.finish_compute(addr, scratch, out);
        Ok(())
    }

    /// Analog variant of
    /// [`compute_mat_words_into`](Self::compute_mat_words_into). Same
    /// scratch contract; draws read noise from `rng`.
    ///
    /// # Errors
    ///
    /// Returns mode errors from the mat.
    pub fn compute_mat_words_analog_into<R: rand::Rng + ?Sized>(
        &mut self,
        addr: MatAddr,
        words: &[i64],
        noise: &prime_device::NoiseModel,
        rng: &mut R,
        scratch: &mut BankScratch,
        out: &mut Vec<i64>,
    ) -> Result<(), PrimeError> {
        self.stage_word_codes(addr, words, scratch);
        self.ff[addr.subarray][addr.mat].compute_analog_into(
            &scratch.codes,
            noise,
            rng,
            &mut scratch.mat,
            &mut scratch.raw,
        )?;
        self.finish_compute(addr, scratch, out);
        Ok(())
    }

    /// Clamps caller-provided input words into `scratch.codes`, mirroring
    /// what [`stage_latch_codes`](Self::stage_latch_codes) does for a
    /// staged latch.
    fn stage_word_codes(&mut self, addr: MatAddr, words: &[i64], scratch: &mut BankScratch) {
        let max_code = i64::from(self.ff[addr.subarray][addr.mat].scheme().input_code_max());
        scratch.codes.clear();
        scratch
            .codes
            .extend(words.iter().map(|&v| v.clamp(0, max_code) as u16));
    }

    /// Consumes the mat's staged latch into `scratch.codes` (clamped to
    /// the scheme's input-code range), recycling the latch vector.
    fn stage_latch_codes(
        &mut self,
        addr: MatAddr,
        scratch: &mut BankScratch,
    ) -> Result<(), PrimeError> {
        let key = (addr.subarray, addr.mat);
        let staged = self
            .latches
            .remove(&key)
            .ok_or(PrimeError::MappingMismatch {
                reason: "compute issued before load".to_string(),
            })?;
        let max_code = i64::from(self.ff[addr.subarray][addr.mat].scheme().input_code_max());
        scratch.codes.clear();
        scratch
            .codes
            .extend(staged.iter().map(|&v| v.clamp(0, max_code) as u16));
        // Hand the consumed latch back to the pool for the next `load`.
        self.spare_latch = staged;
        Ok(())
    }

    /// Routes raw composed results through the output units into `out`
    /// and the mat's output register (for `store`), reusing storage.
    fn finish_compute(&mut self, addr: MatAddr, scratch: &BankScratch, out: &mut Vec<i64>) {
        let key = (addr.subarray, addr.mat);
        self.ff[addr.subarray][addr.mat].apply_output_units_into(&scratch.raw, out);
        let register = self.outputs.entry(key).or_default();
        register.clear();
        register.extend_from_slice(out);
    }

    /// Read half of an inter-bank transfer (paper §IV-B large-scale
    /// mapping): loads `words` data words of a stage's output vector from
    /// this bank's Buffer subarray into `via`, ready to travel over the
    /// memory-internal bus. `via` is cleared and refilled, so a reused
    /// vector incurs no steady-state allocation.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] when the range exceeds the
    /// buffer.
    pub fn transfer_out(
        &mut self,
        from: BufAddr,
        words: usize,
        via: &mut Vec<i64>,
    ) -> Result<(), PrimeError> {
        self.buffer.load_into(from, words, via)
    }

    /// Write half of an inter-bank transfer: stores an arriving stage
    /// input vector into this bank's Buffer subarray at `to` (the next
    /// stage's input address).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] when the range exceeds the
    /// buffer.
    pub fn transfer_in(&mut self, to: BufAddr, data: &[i64]) -> Result<(), PrimeError> {
        self.buffer.store(to, data)
    }

    /// Full inter-bank transfer: moves `words` data words from `src`'s
    /// Buffer subarray at `from` into `dst`'s Buffer subarray at `to`,
    /// staging them through `via` (the modelled memory-internal bus
    /// beat). Composes [`transfer_out`](Self::transfer_out) and
    /// [`transfer_in`](Self::transfer_in), so serial execution and the
    /// split halves used by the overlapped pipeline engine account buffer
    /// traffic identically.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] when either range exceeds
    /// its buffer.
    pub fn transfer(
        src: &mut BankController,
        dst: &mut BankController,
        from: BufAddr,
        to: BufAddr,
        words: usize,
        via: &mut Vec<i64>,
    ) -> Result<(), PrimeError> {
        src.transfer_out(from, words, via)?;
        dst.transfer_in(to, via)
    }

    /// §III-A2 morphing, step 1: migrate the subarray's memory-mode data
    /// to Mem-subarray space (modelled as an internal backup) and switch
    /// every mat to weight-programming mode.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::WrongMode`] if a mat's memory-mode data
    /// cannot be read back during migration.
    pub fn morph_to_compute(&mut self, subarray: usize) -> Result<(), PrimeError> {
        let mats = self.ff[subarray].len();
        for m in 0..mats {
            let mat = &self.ff[subarray][m];
            if mat.function() == MatFunction::Memory {
                let rows = (0..2 * prime_device::MAT_DIM)
                    .map(|r| mat.read_memory_row(r, prime_device::MAT_DIM))
                    .collect::<Result<Vec<_>, _>>()?;
                self.migrated.insert((subarray, m), MigratedMat { rows });
            }
            self.ff[subarray][m].set_function(MatFunction::Program);
        }
        Ok(())
    }

    /// §III-A2 morphing, step 2: after weights are programmed, switch the
    /// subarray to computation mode.
    pub fn start_compute(&mut self, subarray: usize) {
        for mat in &mut self.ff[subarray] {
            mat.set_function(MatFunction::Compute);
        }
    }

    /// §III-A2 wrap-up: reconfigure the subarray back to memory mode and
    /// restore the migrated data.
    ///
    /// # Errors
    ///
    /// Propagates mat write errors.
    pub fn morph_to_memory(&mut self, subarray: usize) -> Result<(), PrimeError> {
        let mats = self.ff[subarray].len();
        for m in 0..mats {
            self.ff[subarray][m].set_function(MatFunction::Memory);
            if let Some(saved) = self.migrated.remove(&(subarray, m)) {
                for (r, bits) in saved.rows.iter().enumerate() {
                    self.ff[subarray][m].write_memory_row(r, bits)?;
                }
            }
        }
        Ok(())
    }

    /// Number of modelled memory rows a mat migration covers.
    pub fn migration_rows() -> usize {
        2 * prime_device::MAT_DIM
    }

    /// Words per modelled memory row.
    pub fn mem_row_words() -> usize {
        MEM_ROW_WORDS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prime_mem::{BufAddr, FfAddr, MemAddr};

    fn small_controller() -> BankController {
        BankController::new(1, 1, 2048, 4096)
    }

    #[test]
    fn fetch_commit_round_trip_through_buffer() {
        let mut ctrl = small_controller();
        ctrl.write_mem(MemAddr(64), &[9, 8, 7, 6]);
        ctrl.execute(Command::Fetch {
            from: MemAddr(64),
            to: BufAddr(10),
            bytes: 32,
        })
        .unwrap();
        ctrl.execute(Command::Commit {
            from: BufAddr(10),
            to: MemAddr(0),
            bytes: 32,
        })
        .unwrap();
        assert_eq!(ctrl.read_mem(MemAddr(0), 4), vec![9, 8, 7, 6]);
    }

    #[test]
    fn load_compute_store_pipeline() {
        let mut ctrl = small_controller();
        let addr = MatAddr {
            subarray: 0,
            mat: 0,
        };
        // Program a 4x2 weight matrix.
        ctrl.execute(Command::SetFunction {
            mat: addr,
            function: MatFunction::Program,
        })
        .unwrap();
        ctrl.mat_mut(addr)
            .program_composed(&[16, -16, 32, 0, 0, 32, -16, 16], 4, 2)
            .unwrap();
        ctrl.execute(Command::SetFunction {
            mat: addr,
            function: MatFunction::Compute,
        })
        .unwrap();
        // Stage inputs through the buffer and run.
        ctrl.buffer_mut()
            .store(BufAddr(0), &[8, 16, 24, 32])
            .unwrap();
        ctrl.execute(Command::Load {
            from: BufAddr(0),
            to: FfAddr {
                mat: addr,
                offset: 0,
            },
            bytes: 32,
        })
        .unwrap();
        let out = ctrl.compute_mat(addr).unwrap();
        assert_eq!(out.len(), 2);
        ctrl.execute(Command::Store {
            from: FfAddr {
                mat: addr,
                offset: 0,
            },
            to: BufAddr(100),
            bytes: 16,
        })
        .unwrap();
        assert_eq!(ctrl.buffer_mut().load(BufAddr(100), 2).unwrap(), out);
    }

    #[test]
    fn store_before_compute_fails() {
        let mut ctrl = small_controller();
        let addr = MatAddr {
            subarray: 0,
            mat: 0,
        };
        let err = ctrl.execute(Command::Store {
            from: FfAddr {
                mat: addr,
                offset: 0,
            },
            to: BufAddr(0),
            bytes: 8,
        });
        assert!(matches!(err, Err(PrimeError::MappingMismatch { .. })));
    }

    #[test]
    fn morphing_protocol_preserves_memory_data() {
        let mut ctrl = small_controller();
        let addr = MatAddr {
            subarray: 0,
            mat: 0,
        };
        let bits: Vec<bool> = (0..256).map(|i| i % 7 == 0).collect();
        ctrl.mat_mut(addr).write_memory_row(5, &bits).unwrap();
        ctrl.mat_mut(addr).write_memory_row(400, &bits).unwrap();
        // Morph to compute, run something, morph back.
        ctrl.morph_to_compute(0).unwrap();
        ctrl.mat_mut(addr)
            .program_composed(&[100, -100], 2, 1)
            .unwrap();
        ctrl.start_compute(0);
        assert_eq!(ctrl.mat(addr).function(), MatFunction::Compute);
        ctrl.morph_to_memory(0).unwrap();
        assert_eq!(ctrl.mat(addr).read_memory_row(5, 256).unwrap(), bits);
        assert_eq!(ctrl.mat(addr).read_memory_row(400, 256).unwrap(), bits);
    }

    #[test]
    fn input_source_previous_layer_uses_bypass_register() {
        let mut ctrl = small_controller();
        let addr = MatAddr {
            subarray: 0,
            mat: 0,
        };
        ctrl.execute(Command::SetInputSource {
            mat: addr,
            source: InputSource::PreviousLayer,
        })
        .unwrap();
        // Without the bypass register filled, load fails.
        let err = ctrl.execute(Command::Load {
            from: BufAddr(0),
            to: FfAddr {
                mat: addr,
                offset: 0,
            },
            bytes: 16,
        });
        assert!(err.is_err());
        ctrl.buffer_mut().bypass_store(vec![1, 2]);
        ctrl.execute(Command::Load {
            from: BufAddr(0),
            to: FfAddr {
                mat: addr,
                offset: 0,
            },
            bytes: 16,
        })
        .unwrap();
    }

    #[test]
    fn interbank_transfer_moves_buffer_contents() {
        let mut src = small_controller();
        let mut dst = small_controller();
        src.buffer_mut().store(BufAddr(5), &[3, 1, 4, 1, 5]).unwrap();
        let mut via = Vec::new();
        BankController::transfer(&mut src, &mut dst, BufAddr(5), BufAddr(9), 5, &mut via)
            .unwrap();
        assert_eq!(
            dst.buffer_mut().load(BufAddr(9), 5).unwrap(),
            vec![3, 1, 4, 1, 5]
        );
        // Out-of-range transfers fail on either half.
        assert!(src.transfer_out(BufAddr(2047), 5, &mut via).is_err());
        assert!(dst.transfer_in(BufAddr(2046), &[1, 2, 3]).is_err());
    }

    #[test]
    fn command_log_records_execution_order() {
        let mut ctrl = small_controller();
        let addr = MatAddr {
            subarray: 0,
            mat: 0,
        };
        ctrl.execute(Command::SetFunction {
            mat: addr,
            function: MatFunction::Program,
        })
        .unwrap();
        ctrl.execute(Command::BypassSigmoid {
            mat: addr,
            bypass: true,
        })
        .unwrap();
        assert_eq!(ctrl.log().len(), 2);
        assert!(ctrl.log()[0].is_datapath_configure());
    }
}
