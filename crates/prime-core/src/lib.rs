//! The PRIME core architecture (paper §III-§IV).
//!
//! Ties the substrates together into the paper's contribution: ReRAM
//! main-memory banks whose *full-function (FF) subarrays* morph between
//! normal storage and NN acceleration. The crate provides:
//!
//! * [`FfMat`] — a functional FF mat: positive/negative crossbar pair,
//!   multi-level wordline drivers, the composing scheme, reconfigurable
//!   sensing, and the ReLU/sigmoid/pooling output units;
//! * [`BufferSubarray`] — the FF-adjacent data buffer with its
//!   random-access connection unit and mat-to-mat bypass register;
//! * [`BankController`] — the Table I command interpreter and the
//!   §III-A2 morphing protocol (migrate -> program -> compute -> wrap up);
//! * [`FfExecutor`] — whole-network inference through the functional
//!   hardware pipeline, the fidelity reference for the simulator;
//! * [`PrimeProgram`] — the Fig. 7 software/hardware interface
//!   (`Map_Topology`, `Program_Weight`, `Config_Datapath`, `Run`,
//!   `Post_Proc`).
//!
//! # Examples
//!
//! ```
//! use prime_core::FfMat;
//! use prime_mem::MatFunction;
//!
//! // One FF mat computing a 3-input, 2-output signed dot product.
//! let mut mat = FfMat::new();
//! mat.set_function(MatFunction::Program);
//! mat.program_composed(&[10, -10, 20, 5, -30, 15], 3, 2)?;
//! mat.set_function(MatFunction::Compute);
//! let out = mat.compute(&[63, 0, 31])?;
//! assert_eq!(out.len(), 2);
//! # Ok::<(), prime_core::PrimeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod buffer;
mod controller;
mod error;
mod executor;
mod ff_mat;
mod insitu;
mod runner;
mod search;
mod service;
mod system;

pub use api::{CompiledProgram, NnParamFile, PrimeProgram};
pub use buffer::BufferSubarray;
pub use controller::{BankController, BankScratch};
pub use error::PrimeError;
pub use executor::{ExecutionStats, FfExecutor};
pub use ff_mat::{FfMat, MatDatapath, MatScratch};
pub use insitu::{InSituEpoch, InSituMlp};
pub use runner::{CommandRunner, ConvPhases, InferScratch};
pub use search::{
    search_mapping, CandidateCost, CandidateReport, CandidateVerdict, MappingCostModel,
    MappingSearch,
};
pub use service::SystemHandle;
pub use system::{DeployStats, PrimeSystem, SystemStats};
