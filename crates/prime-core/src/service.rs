//! A `Send + Sync` service handle over [`PrimeSystem`].
//!
//! [`PrimeSystem`] is a plain owned value: inference takes `&mut self`
//! (scratch buffers, RNG streams, and stats live inside), so a server
//! that fields requests from many connection threads needs one object
//! that serializes access. [`SystemHandle`] is that object — a cheaply
//! cloneable handle whose clones all drive the same deployed system
//! behind a mutex. Lock poisoning is *surfaced*, never absorbed: a
//! thread that panicked while holding the lock may have left the system
//! mid-operation (a batch half-counted, scratch state half-written), so
//! every later access returns [`PrimeError::Poisoned`] until the model
//! is redeployed on a fresh system. Serving layers treat that error as
//! "model unservable" rather than silently running against the
//! possibly inconsistent state.

use std::sync::{Arc, Mutex};

use prime_device::NoiseModel;
use prime_nn::Network;

use crate::error::PrimeError;
use crate::system::{DeployStats, PrimeSystem, SystemStats};

/// A cloneable, thread-safe handle to one shared [`PrimeSystem`].
///
/// # Examples
///
/// ```no_run
/// use prime_core::{PrimeSystem, SystemHandle};
/// use prime_nn::{Activation, FullyConnected, Layer, Network};
///
/// let net = Network::new(vec![
///     Layer::Fc(FullyConnected::new(16, 4, Activation::Identity)),
/// ])?;
/// let mut system = PrimeSystem::new(2, 2, 8, 4096);
/// system.deploy(&net, &[0.5; 16])?;
/// let handle = SystemHandle::new(system);
/// let worker = handle.clone();
/// std::thread::spawn(move || {
///     let _ = worker.infer_batch(&[vec![0.2; 16]]);
/// });
/// let outputs = handle.infer_batch(&[vec![0.8; 16]])?;
/// assert_eq!(outputs.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SystemHandle {
    inner: Arc<Mutex<PrimeSystem>>,
}

impl SystemHandle {
    /// Wraps a system (deployed or not) in a shared handle.
    pub fn new(system: PrimeSystem) -> Self {
        SystemHandle { inner: Arc::new(Mutex::new(system)) }
    }

    /// Runs `f` with exclusive access to the system. The escape hatch
    /// for anything without a dedicated forwarding method.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::Poisoned`] when an earlier holder of the
    /// lock panicked mid-operation: the system may be inconsistent and
    /// must not serve until redeployed.
    pub fn with<R>(&self, f: impl FnOnce(&mut PrimeSystem) -> R) -> Result<R, PrimeError> {
        let mut guard = self.inner.lock().map_err(|_| PrimeError::Poisoned)?;
        Ok(f(&mut guard))
    }

    /// [`PrimeSystem::deploy`] behind the lock.
    ///
    /// # Errors
    ///
    /// As [`PrimeSystem::deploy`], plus [`PrimeError::Poisoned`].
    pub fn deploy(&self, net: &Network, calibration: &[f32]) -> Result<(), PrimeError> {
        self.with(|s| s.deploy(net, calibration))?
    }

    /// [`PrimeSystem::infer_batch`] behind the lock.
    ///
    /// # Errors
    ///
    /// As [`PrimeSystem::infer_batch`], plus [`PrimeError::Poisoned`].
    pub fn infer_batch(&self, inputs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, PrimeError> {
        self.with(|s| s.infer_batch(inputs))?
    }

    /// [`PrimeSystem::infer_batch_noisy`] behind the lock.
    ///
    /// # Errors
    ///
    /// As [`PrimeSystem::infer_batch_noisy`], plus
    /// [`PrimeError::Poisoned`].
    pub fn infer_batch_noisy(
        &self,
        inputs: &[Vec<f32>],
        noise: &NoiseModel,
        seed: u64,
    ) -> Result<Vec<Vec<f32>>, PrimeError> {
        self.with(|s| s.infer_batch_noisy(inputs, noise, seed))?
    }

    /// [`PrimeSystem::stats`] behind the lock.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::Poisoned`] after a mid-operation crash.
    pub fn stats(&self) -> Result<SystemStats, PrimeError> {
        self.with(|s| s.stats())
    }

    /// [`PrimeSystem::deploy_stats`] behind the lock (cloned out).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::Poisoned`] after a mid-operation crash.
    pub fn deploy_stats(&self) -> Result<Option<DeployStats>, PrimeError> {
        self.with(|s| s.deploy_stats().cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prime_nn::{Activation, FullyConnected, Layer};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn deployed_handle() -> SystemHandle {
        let mut net = Network::new(vec![
            Layer::Fc(FullyConnected::new(12, 8, Activation::Relu)),
            Layer::Fc(FullyConnected::new(8, 3, Activation::Identity)),
        ])
        .expect("widths match");
        net.init_random(&mut SmallRng::seed_from_u64(5));
        let mut system = PrimeSystem::new(2, 2, 4, 2048);
        system.deploy(&net, &[0.5; 12]).expect("fits");
        SystemHandle::new(system)
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn check<T: Send + Sync + Clone>() {}
        check::<SystemHandle>();
    }

    #[test]
    fn clones_share_one_system_across_threads() {
        let handle = deployed_handle();
        let input: Vec<f32> = (0..12).map(|j| (j % 7) as f32 / 7.0).collect();
        let expected = handle.infer_batch(std::slice::from_ref(&input)).unwrap();
        let results: Vec<Vec<Vec<f32>>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let h = handle.clone();
                    let input = input.clone();
                    scope.spawn(move || h.infer_batch(&[input]).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|t| t.join().unwrap())
                .collect()
        });
        for got in results {
            assert_eq!(got, expected, "shared system diverged across threads");
        }
        // 1 warm-up + 4 threaded inferences all landed on the same stats.
        assert_eq!(handle.stats().unwrap().inferences, 5);
    }

    #[test]
    fn poisoning_is_surfaced_as_a_typed_error() {
        let handle = deployed_handle();
        let input: Vec<f32> = (0..12).map(|j| (j % 7) as f32 / 7.0).collect();
        assert!(handle.infer_batch(std::slice::from_ref(&input)).is_ok());
        // A thread crashing while it holds the lock poisons the system.
        let crasher = handle.clone();
        let crash = std::thread::spawn(move || {
            let _ = crasher.with(|_system| -> () { panic!("died mid-operation") });
        })
        .join();
        assert!(crash.is_err(), "the crashing thread must have panicked");
        // Every later access reports the poisoning instead of silently
        // running against possibly half-written state.
        assert_eq!(
            handle.infer_batch(std::slice::from_ref(&input)),
            Err(PrimeError::Poisoned)
        );
        assert_eq!(handle.stats(), Err(PrimeError::Poisoned));
        assert_eq!(handle.deploy_stats(), Err(PrimeError::Poisoned));
        assert!(matches!(handle.with(|_| ()), Err(PrimeError::Poisoned)));
    }
}
