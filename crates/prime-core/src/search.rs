//! Cost-model-driven mapping search (ROADMAP item 5).
//!
//! PRIME §IV fixes its replication/split/pipeline choices by heuristic;
//! this module replaces that with a small search. The compiler
//! enumerates (strategy × replication factor × pipeline split)
//! candidates ([`prime_compiler::enumerate_candidates`]); each candidate
//! is compiled, statically verified (Pass 1 deployment invariants and —
//! where an in-memory lowering exists — the Pass 3 abstract
//! interpreter), and scored by a [`MappingCostModel`]; the argmin under
//! the requested [`Objective`] wins. Illegal candidates are *pruned*,
//! never errors: the search degrades to whatever subset the verifiers
//! accept, and deployment fails only when nothing survives.
//!
//! The trait lives here (not in `prime-sim`) because the crate graph
//! points the other way: `prime-sim` depends on `prime-core` and
//! provides the reference implementation (`SimCostModel`) on top of its
//! analytical machine. Candidates are enumerated fixed-default-first and
//! every selection rule breaks ties by keeping the earlier candidate, so
//! a search that finds nothing strictly better keeps the bit-compatible
//! default placement.

use serde::{Deserialize, Serialize};

use prime_compiler::{
    enumerate_candidates, map_network, CompileOptions, HwTarget, MappingStrategy, NetworkMapping,
    Objective,
};
use prime_nn::NetworkSpec;

/// Cost estimate of one verifier-clean candidate mapping, produced by a
/// [`MappingCostModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateCost {
    /// Single-image latency estimate (ns).
    pub image_ns: f64,
    /// Steady-state per-image interval at an amortizing batch (ns): the
    /// throughput-side cost a pipeline split or copy cap trades against.
    pub interval_ns: f64,
    /// Per-image energy estimate (pJ).
    pub energy_pj: f64,
}

/// Scores candidate mappings for the search. Implemented by
/// `prime-sim`'s `SimCostModel` over the analytical PRIME machine;
/// tests may substitute simpler models.
pub trait MappingCostModel {
    /// Estimates the cost of running `spec` under `mapping` on `hw`.
    fn score(&self, spec: &NetworkSpec, hw: &HwTarget, mapping: &NetworkMapping) -> CandidateCost;
}

/// What the search decided about one enumerated candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CandidateVerdict {
    /// Won the argmin: this is the deployed mapping.
    Chosen,
    /// Verifier-clean and scored, but beaten under the objective.
    Beaten,
    /// Failed to compile or was rejected by the static verifiers; never
    /// scored. Pruning is the expected fate of illegal candidates, not
    /// an error.
    Pruned {
        /// The compile error or the rejecting diagnostic codes.
        reason: String,
    },
}

/// One enumerated candidate: its knobs, the shape it compiled to, its
/// score, and the verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateReport {
    /// The compile options that generate this candidate.
    pub options: CompileOptions,
    /// Requested weight-layout strategy.
    pub strategy: MappingStrategy,
    /// Inter-bank pipeline stages (1 when the network fits a bank).
    pub stages: usize,
    /// Whole-network copies across the memory's banks.
    pub copies: usize,
    /// Weight cells resident after deploy, honoring each layer's
    /// selected layout (`NetworkMapping::deploy_cells`).
    pub resident_cells: u64,
    /// FF mats reserved at bank granularity.
    pub allocated_mats: usize,
    /// Cost-model score (`None` for pruned candidates).
    pub cost: Option<CandidateCost>,
    /// The search's decision for this candidate.
    pub verdict: CandidateVerdict,
}

impl CandidateReport {
    /// One-line rendering for registration logs and bench reports.
    pub fn describe(&self) -> String {
        let knobs = format!(
            "{} cap={} max_copies={}",
            self.strategy.name(),
            self.options.stage_mats_cap,
            self.options.max_copies
        );
        let shape = format!(
            "stages={} copies={} resident_cells={}",
            self.stages, self.copies, self.resident_cells
        );
        let score = match &self.cost {
            Some(c) => format!(
                "image={:.0}ns interval={:.0}ns energy={:.0}pJ",
                c.image_ns, c.interval_ns, c.energy_pj
            ),
            None => "unscored".to_string(),
        };
        let verdict = match &self.verdict {
            CandidateVerdict::Chosen => "CHOSEN".to_string(),
            CandidateVerdict::Beaten => "beaten".to_string(),
            CandidateVerdict::Pruned { reason } => format!("pruned: {reason}"),
        };
        format!("[{knobs}] {shape} {score} -> {verdict}")
    }
}

/// The complete outcome of one mapping search: every candidate in
/// enumeration order, exactly one of which is
/// [`CandidateVerdict::Chosen`] when the search succeeded. Recorded in
/// [`DeployStats`](crate::DeployStats) and rendered into the serving
/// registration log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingSearch {
    /// The objective the search minimized.
    pub objective: Objective,
    /// Every candidate, in enumeration order (fixed default first).
    pub candidates: Vec<CandidateReport>,
}

impl MappingSearch {
    /// The winning candidate, if any survived the verifiers.
    pub fn chosen(&self) -> Option<&CandidateReport> {
        self.candidates
            .iter()
            .find(|c| c.verdict == CandidateVerdict::Chosen)
    }

    /// Candidates that were enumerated but not chosen (beaten or pruned).
    pub fn rejected(&self) -> impl Iterator<Item = &CandidateReport> {
        self.candidates
            .iter()
            .filter(|c| c.verdict != CandidateVerdict::Chosen)
    }

    /// Multi-line rendering for registration logs: objective, then one
    /// line per candidate.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "mapping search (objective={}, {} candidates):",
            self.objective.name(),
            self.candidates.len()
        );
        for candidate in &self.candidates {
            out.push_str("\n  ");
            out.push_str(&candidate.describe());
        }
        out
    }
}

/// The verification half of candidate evaluation, shared with
/// deployment: compile `options` and run Pass 1 (and Pass 3 where the
/// network has an in-memory lowering). Returns the mapping or the
/// pruning reason.
fn verify_candidate(
    spec: &NetworkSpec,
    target: &prime_analyze::Target,
    options: CompileOptions,
) -> Result<NetworkMapping, String> {
    let mapping = match map_network(spec, &target.hw, options) {
        Ok(mapping) => mapping,
        Err(e) => return Err(format!("compile: {e}")),
    };
    let errors: Vec<String> = prime_analyze::analyze(spec, target, &mapping)
        .into_iter()
        .filter(|d| d.severity == prime_analyze::Severity::Error)
        .map(|d| d.code.as_str().to_string())
        .collect();
    if !errors.is_empty() {
        return Err(format!("pass 1: {}", errors.join(",")));
    }
    // Pass 3 needs a static lowering; networks that fall back to the
    // host for some layer (LRN) have none, and skip it — same rule the
    // deployment path applies.
    if let Ok(plan) = prime_analyze::lower_program(spec, target, &mapping) {
        let errors: Vec<String> = prime_analyze::analyze_program(spec, target, &mapping, &plan)
            .into_iter()
            .filter(|d| d.severity == prime_analyze::Severity::Error)
            .map(|d| d.code.as_str().to_string())
            .collect();
        if !errors.is_empty() {
            return Err(format!("pass 3: {}", errors.join(",")));
        }
    }
    Ok(mapping)
}

/// Is candidate `a` strictly better than `b` under `objective`?
/// (`min_*` are the survivor minima, for `Balanced` normalization.)
fn strictly_better(
    objective: Objective,
    a: (&CandidateReport, CandidateCost),
    b: (&CandidateReport, CandidateCost),
    min_interval: f64,
    min_resident: f64,
) -> bool {
    match objective {
        // `Fixed` never reaches the search, but the total match keeps
        // the selection rule defined for every objective: fall back to
        // latency ordering.
        Objective::Latency | Objective::Fixed(_) => {
            (a.1.interval_ns, a.1.image_ns) < (b.1.interval_ns, b.1.image_ns)
        }
        Objective::Memory => {
            a.0.resident_cells < b.0.resident_cells
                || (a.0.resident_cells == b.0.resident_cells
                    && a.1.interval_ns < b.1.interval_ns)
        }
        Objective::Balanced => {
            let score = |r: &CandidateReport, c: CandidateCost| {
                c.interval_ns / min_interval + r.resident_cells as f64 / min_resident
            };
            score(a.0, a.1) < score(b.0, b.1)
        }
    }
}

/// Runs the mapping search: enumerate, verify, score, argmin.
///
/// Every candidate that compiles and passes the static verifiers is
/// scored with `model`; the best under `objective` is marked
/// [`CandidateVerdict::Chosen`] (ties keep the earliest candidate, i.e.
/// the fixed default when it is involved). A search where nothing
/// survives returns a report whose [`MappingSearch::chosen`] is `None`;
/// the caller decides whether that is fatal.
pub fn search_mapping(
    spec: &NetworkSpec,
    target: &prime_analyze::Target,
    objective: Objective,
    model: &dyn MappingCostModel,
) -> MappingSearch {
    let options_list = match objective {
        Objective::Fixed(strategy) => {
            vec![CompileOptions { replicate: false, ..CompileOptions::fixed(strategy) }]
        }
        _ => enumerate_candidates(spec, &target.hw),
    };
    let mut candidates: Vec<CandidateReport> = Vec::with_capacity(options_list.len());
    let mut costs: Vec<Option<CandidateCost>> = Vec::with_capacity(options_list.len());
    for options in options_list {
        match verify_candidate(spec, target, options) {
            Ok(mapping) => {
                let cost = model.score(spec, &target.hw, &mapping);
                candidates.push(CandidateReport {
                    options,
                    strategy: options.strategy(),
                    stages: mapping.pipeline.len().max(1),
                    copies: mapping.copies_across_memory,
                    resident_cells: mapping.deploy_cells(),
                    allocated_mats: mapping.allocated_mats,
                    cost: Some(cost),
                    verdict: CandidateVerdict::Beaten,
                });
                costs.push(Some(cost));
            }
            Err(reason) => {
                candidates.push(CandidateReport {
                    options,
                    strategy: options.strategy(),
                    stages: 0,
                    copies: 0,
                    resident_cells: 0,
                    allocated_mats: 0,
                    cost: None,
                    verdict: CandidateVerdict::Pruned { reason },
                });
                costs.push(None);
            }
        }
    }
    // Survivor minima for the Balanced normalization (guarded away from
    // zero so the ratios stay finite).
    let mut min_interval = f64::INFINITY;
    let mut min_resident = f64::INFINITY;
    for (candidate, cost) in candidates.iter().zip(&costs) {
        if let Some(cost) = cost {
            min_interval = min_interval.min(cost.interval_ns);
            min_resident = min_resident.min(candidate.resident_cells as f64);
        }
    }
    let min_interval = min_interval.max(f64::MIN_POSITIVE);
    let min_resident = min_resident.max(1.0);
    // First-wins argmin: a later candidate must be *strictly* better to
    // displace the incumbent, so ties keep the fixed default placement.
    let mut best: Option<usize> = None;
    for (idx, cost) in costs.iter().enumerate() {
        let Some(cost) = cost else { continue };
        best = match best {
            None => Some(idx),
            Some(incumbent) => {
                let displaced = match costs[incumbent] {
                    Some(inc_cost) => strictly_better(
                        objective,
                        (&candidates[idx], *cost),
                        (&candidates[incumbent], inc_cost),
                        min_interval,
                        min_resident,
                    ),
                    None => true,
                };
                Some(if displaced { idx } else { incumbent })
            }
        };
    }
    if let Some(idx) = best {
        candidates[idx].verdict = CandidateVerdict::Chosen;
    }
    MappingSearch { objective, candidates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prime_analyze::Target;
    use prime_nn::MlBench;

    /// A deterministic toy model: interval favors more copies, image
    /// favors fewer stages — enough structure to exercise every
    /// objective without dragging prime-sim into the dependency graph.
    struct ToyModel;

    impl MappingCostModel for ToyModel {
        fn score(
            &self,
            _spec: &NetworkSpec,
            _hw: &HwTarget,
            mapping: &NetworkMapping,
        ) -> CandidateCost {
            let stages = mapping.pipeline.len().max(1) as f64;
            let copies = mapping.copies_across_memory.max(1) as f64;
            let passes = mapping.passes_per_inference() as f64;
            CandidateCost {
                image_ns: passes * stages,
                interval_ns: passes / copies,
                energy_pj: passes,
            }
        }
    }

    #[test]
    fn latency_search_keeps_the_fixed_default_on_ties() {
        let target = Target::prime_default();
        for bench in [MlBench::MlpM, MlBench::Cnn1] {
            let spec = bench.spec();
            let search = search_mapping(&spec, &target, Objective::Latency, &ToyModel);
            let chosen = search.chosen().expect("a candidate survives");
            // Full-copy candidates share the minimal interval; the dense
            // fixed default is enumerated first and must keep the win.
            assert_eq!(
                chosen.options,
                CompileOptions { replicate: false, ..CompileOptions::default() },
                "{}: {}",
                bench.name(),
                search.describe()
            );
        }
    }

    #[test]
    fn memory_search_prefers_the_shared_layout() {
        let target = Target::prime_default();
        let spec = MlBench::Cnn1.spec();
        let search = search_mapping(&spec, &target, Objective::Memory, &ToyModel);
        let chosen = search.chosen().expect("a candidate survives");
        assert_eq!(chosen.strategy, MappingStrategy::SharedKernel, "{}", search.describe());
        // Shared layout with full copies has the same resident cells as
        // a single copy but a strictly smaller interval, so it must beat
        // every copy-capped candidate.
        for other in search.rejected() {
            if let Some(_cost) = &other.cost {
                assert!(
                    chosen.resident_cells <= other.resident_cells,
                    "{}",
                    search.describe()
                );
            }
        }
    }

    #[test]
    fn every_candidate_gets_a_verdict_and_exactly_one_wins() {
        let target = Target::prime_default();
        for bench in MlBench::ALL {
            for objective in [Objective::Latency, Objective::Memory, Objective::Balanced] {
                let search = search_mapping(&bench.spec(), &target, objective, &ToyModel);
                let chosen = search
                    .candidates
                    .iter()
                    .filter(|c| c.verdict == CandidateVerdict::Chosen)
                    .count();
                assert_eq!(chosen, 1, "{} {}: {}", bench.name(), objective.name(), search.describe());
                for c in &search.candidates {
                    match &c.verdict {
                        CandidateVerdict::Pruned { .. } => assert!(c.cost.is_none()),
                        _ => assert!(c.cost.is_some()),
                    }
                }
            }
        }
    }

    #[test]
    fn fixed_objective_searches_only_the_pinned_candidate() {
        let target = Target::prime_default();
        let search = search_mapping(
            &MlBench::MlpS.spec(),
            &target,
            Objective::Fixed(MappingStrategy::SharedKernel),
            &ToyModel,
        );
        assert_eq!(search.candidates.len(), 1);
        assert_eq!(
            search.chosen().map(|c| c.strategy),
            Some(MappingStrategy::SharedKernel)
        );
    }

    #[test]
    fn search_reports_render_for_logs() {
        let target = Target::prime_default();
        let search = search_mapping(&MlBench::MlpM.spec(), &target, Objective::Balanced, &ToyModel);
        let text = search.describe();
        assert!(text.contains("objective=balanced"));
        assert!(text.contains("CHOSEN"));
    }
}
