//! Functional execution of whole networks on FF mats (paper §III-E).
//!
//! The executor lowers each layer of an executable [`Network`] onto
//! mat-sized tiles (the same split-merge arithmetic as the compiler),
//! programs composed weights into [`FfMat`]s, and evaluates inference
//! through the actual device/circuit models — quantized 6-bit inputs,
//! 8-bit composed weights, truncated 6-bit outputs, digital merge of
//! split partial sums, hardware max pooling, and ReLU/sigmoid output
//! units. It is the fidelity reference proving that PRIME's hardware
//! pipeline computes what the software NN computes.
//!
//! Two modelling simplifications are documented here (DESIGN.md §5):
//! biases are accumulated by the precision-control adder digitally
//! (capacity-wise the compiler still reserves the bias row), and layer
//! activations run at full precision between layers, mirroring the analog
//! sigmoid/ReLU units which are not quantized internally.

use serde::{Deserialize, Serialize};

use prime_circuits::{mean_pool_weights, ComposingScheme, MaxPoolUnit};
use prime_device::NoiseModel;
use prime_mem::MatFunction;
use prime_nn::{Layer, Network, PoolKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::error::PrimeError;
use crate::ff_mat::FfMat;

/// Work counters accumulated while executing a network on FF mats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionStats {
    /// Full crossbar evaluation passes (each = two driver passes through
    /// the composing scheme).
    pub mat_passes: u64,
    /// Digital adds merging split row tiles and biases.
    pub merge_adds: u64,
    /// 4:1 max-pooling hardware steps.
    pub pool_steps: u64,
    /// Words staged through the Buffer subarray.
    pub buffer_words: u64,
    /// Mats programmed (tiles across all layers).
    pub mats_programmed: u64,
}

/// One weight layer lowered onto FF-mat tiles.
struct TiledLayer {
    /// Mats indexed `[row_tile][col_tile]`.
    tiles: Vec<Vec<FfMat>>,
    /// Rows covered by each row tile.
    row_spans: Vec<(usize, usize)>,
    /// Columns covered by each column tile.
    col_spans: Vec<(usize, usize)>,
    /// Quantized weight codes per tile (kept for SA-window calibration),
    /// same indexing as `tiles`, row-major within a tile.
    code_tiles: Vec<Vec<Vec<i32>>>,
    /// `input_scale * weight_scale`: one composed full-precision unit in
    /// real-value terms. Each tile additionally carries its own SA shift.
    value_scale: f32,
}

/// Executes networks on functional FF mats.
///
/// # Examples
///
/// ```no_run
/// use prime_core::FfExecutor;
/// use prime_nn::{Activation, FullyConnected, Layer, Network};
///
/// let net = Network::new(vec![Layer::Fc(FullyConnected::new(4, 2, Activation::Identity))])?;
/// let mut exec = FfExecutor::new();
/// let (out, stats) = exec.run(&net, &[0.1, 0.2, 0.3, 0.4])?;
/// assert_eq!(out.len(), 2);
/// assert!(stats.mat_passes >= 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FfExecutor {
    scheme: ComposingScheme,
    pool_unit: MaxPoolUnit,
    stats: ExecutionStats,
    /// Device non-ideality model; ideal by default.
    noise: NoiseModel,
    rng: SmallRng,
}

impl Default for FfExecutor {
    fn default() -> Self {
        FfExecutor::new()
    }
}

impl FfExecutor {
    /// Creates an executor with the paper's default composing scheme and
    /// ideal (noise-free) devices.
    pub fn new() -> Self {
        Self::with_noise(NoiseModel::ideal(), 0)
    }

    /// Creates an executor whose mats are programmed and evaluated through
    /// the analog path under `noise` (e.g.
    /// [`NoiseModel::crossbar_default`] for the ~3 % in-crossbar tuning
    /// precision of real devices), seeded deterministically.
    pub fn with_noise(noise: NoiseModel, seed: u64) -> Self {
        FfExecutor {
            scheme: ComposingScheme::prime_default(),
            pool_unit: MaxPoolUnit::new(),
            stats: ExecutionStats::default(),
            noise,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The accumulated work counters.
    pub fn stats(&self) -> ExecutionStats {
        self.stats
    }

    /// Resets the work counters.
    pub fn reset_stats(&mut self) {
        self.stats = ExecutionStats::default();
    }

    /// Quantizes a non-negative activation vector to composed input codes.
    /// PRIME drives inputs as wordline voltages, which are unsigned; the
    /// supported activations (images, sigmoid, ReLU) are all non-negative,
    /// and any numerical noise below zero clamps to the zero code.
    fn quantize_input(&self, values: &[f32]) -> (Vec<u16>, f32) {
        let max_code = ((1u32 << self.scheme.input_bits()) - 1) as f32;
        let abs_max = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if abs_max == 0.0 {
            return (vec![0; values.len()], 1.0);
        }
        let scale = abs_max / max_code;
        let codes = values
            .iter()
            .map(|&v| ((v / scale).round().clamp(0.0, max_code)) as u16)
            .collect();
        (codes, scale)
    }

    /// Quantizes signed weights to composed codes.
    fn quantize_weights(&self, values: &[f32]) -> (Vec<i32>, f32) {
        let max_code = ((1u32 << self.scheme.weight_bits()) - 1) as f32;
        let abs_max = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if abs_max == 0.0 {
            return (vec![0; values.len()], 1.0);
        }
        let scale = abs_max / max_code;
        let codes = values
            .iter()
            .map(|&v| ((v / scale).round().clamp(-max_code, max_code)) as i32)
            .collect();
        (codes, scale)
    }

    /// Lowers a weight matrix (`rows x cols`, row-major) onto tiles of
    /// programmed FF mats.
    fn tile_matrix(
        &mut self,
        weights: &[f32],
        rows: usize,
        cols: usize,
        input_scale: f32,
    ) -> Result<TiledLayer, PrimeError> {
        let (codes, w_scale) = self.quantize_weights(weights);
        let mat_rows = 256;
        let mat_cols = 128;
        let row_spans: Vec<(usize, usize)> = (0..rows.div_ceil(mat_rows))
            .map(|t| (t * mat_rows, ((t + 1) * mat_rows).min(rows)))
            .collect();
        let col_spans: Vec<(usize, usize)> = (0..cols.div_ceil(mat_cols))
            .map(|t| (t * mat_cols, ((t + 1) * mat_cols).min(cols)))
            .collect();
        let mut tiles = Vec::with_capacity(row_spans.len());
        let mut code_tiles = Vec::with_capacity(row_spans.len());
        for &(r0, r1) in &row_spans {
            let mut row_tiles = Vec::with_capacity(col_spans.len());
            let mut row_code_tiles = Vec::with_capacity(col_spans.len());
            for &(c0, c1) in &col_spans {
                let (tr, tc) = (r1 - r0, c1 - c0);
                let mut tile_codes = Vec::with_capacity(tr * tc);
                for r in r0..r1 {
                    for c in c0..c1 {
                        tile_codes.push(codes[r * cols + c]);
                    }
                }
                let mut mat = FfMat::with_scheme(self.scheme);
                mat.set_function(MatFunction::Program);
                mat.program_composed(&tile_codes, tr, tc)?;
                mat.set_function(MatFunction::Compute);
                if self.noise.is_noisy() {
                    mat.apply_program_noise(&self.noise, &mut self.rng);
                }
                self.stats.mats_programmed += 1;
                row_tiles.push(mat);
                row_code_tiles.push(tile_codes);
            }
            tiles.push(row_tiles);
            code_tiles.push(row_code_tiles);
        }
        Ok(TiledLayer {
            tiles,
            row_spans,
            col_spans,
            code_tiles,
            value_scale: input_scale * w_scale,
        })
    }

    /// Calibrates each tile's SA sensing window from representative input
    /// vectors — the dynamic-fixed-point step: the output exponent is
    /// chosen per layer from observed data instead of the worst case
    /// (paper §III-D adopts the dynamic fixed point format \[68\]). One bit
    /// of headroom guards against samples missing the true maximum; the
    /// output register saturates beyond the window.
    fn calibrate_tiles(&self, layer: &mut TiledLayer, samples: &[&[u16]]) {
        for (rt, &(r0, r1)) in layer.row_spans.iter().enumerate() {
            let rows = r1 - r0;
            for (ct, &(c0, c1)) in layer.col_spans.iter().enumerate() {
                let cols = c1 - c0;
                let codes = &layer.code_tiles[rt][ct];
                let mut max_abs = 0i64;
                for sample in samples {
                    let slice = &sample[r0..r1];
                    for c in 0..cols {
                        let mut acc = 0i64;
                        for (r, &x) in slice.iter().enumerate().take(rows) {
                            acc += i64::from(x) * i64::from(codes[r * cols + c]);
                        }
                        max_abs = max_abs.max(acc.abs());
                    }
                }
                layer.tiles[rt][ct].calibrate_output_window(2 * max_abs.max(1));
            }
        }
    }

    /// Evaluates one quantized input vector through a tiled layer,
    /// returning real-valued pre-activations (bias not yet added).
    fn eval_tiles(
        &mut self,
        layer: &mut TiledLayer,
        codes: &[u16],
        cols: usize,
    ) -> Result<Vec<f32>, PrimeError> {
        let mut merged = vec![0.0f32; cols];
        let row_spans = layer.row_spans.clone();
        let col_spans = layer.col_spans.clone();
        for (rt, &(r0, r1)) in row_spans.iter().enumerate() {
            let slice = &codes[r0..r1];
            for (ct, &(c0, c1)) in col_spans.iter().enumerate() {
                let mat = &mut layer.tiles[rt][ct];
                // Each tile's SA window is calibrated independently; align
                // tiles by expanding codes back to full-precision units
                // before the merge adds.
                let tile_unit = (mat.output_shift() as f32).exp2();
                let out = if self.noise.is_noisy() {
                    mat.compute_analog(slice, &self.noise, &mut self.rng)?
                } else {
                    mat.compute(slice)?
                };
                self.stats.mat_passes += 1;
                for (i, &v) in out.iter().enumerate() {
                    merged[c0 + i] += v as f32 * tile_unit;
                    self.stats.merge_adds += 1;
                }
                debug_assert_eq!(out.len(), c1 - c0);
            }
        }
        Ok(merged.into_iter().map(|v| v * layer.value_scale).collect())
    }

    /// Runs a full network on FF mats, returning the output activations
    /// and the accumulated work counters.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError`] for malformed inputs or unsupported layer
    /// configurations.
    pub fn run(
        &mut self,
        net: &Network,
        input: &[f32],
    ) -> Result<(Vec<f32>, ExecutionStats), PrimeError> {
        if input.len() != net.inputs() {
            return Err(PrimeError::MappingMismatch {
                reason: format!(
                    "{} inputs supplied for a {}-input network",
                    input.len(),
                    net.inputs()
                ),
            });
        }
        let mut x = input.to_vec();
        for layer in net.layers() {
            x = match layer {
                Layer::Fc(fc) => {
                    let (codes, in_scale) = self.quantize_input(&x);
                    self.stats.buffer_words += codes.len() as u64;
                    // The executor transposes W ([outputs, inputs]) into
                    // crossbar orientation ([inputs, outputs]).
                    let (outputs, inputs) = (fc.outputs(), fc.inputs());
                    let w = fc.weights().data();
                    let mut wt = vec![0.0f32; inputs * outputs];
                    for o in 0..outputs {
                        for i in 0..inputs {
                            wt[i * outputs + o] = w[o * inputs + i];
                        }
                    }
                    let mut tiled = self.tile_matrix(&wt, inputs, outputs, in_scale)?;
                    self.calibrate_tiles(&mut tiled, &[&codes]);
                    let mut y = self.eval_tiles(&mut tiled, &codes, outputs)?;
                    for (v, b) in y.iter_mut().zip(fc.bias()) {
                        *v += b;
                        self.stats.merge_adds += 1;
                    }
                    self.stats.buffer_words += y.len() as u64;
                    y.iter().map(|&v| fc.activation().apply(v)).collect()
                }
                Layer::Conv(conv) => {
                    let (codes, in_scale) = self.quantize_input(&x);
                    self.stats.buffer_words += codes.len() as u64;
                    let k = conv.kernel();
                    let in_ch = conv.in_channels();
                    let out_ch = conv.out_channels();
                    let rows = in_ch * k * k;
                    // Kernel matrix: one column per output map.
                    let w = conv.weights().data();
                    let mut km = vec![0.0f32; rows * out_ch];
                    for oc in 0..out_ch {
                        for ic in 0..in_ch {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let r = (ic * k + ky) * k + kx;
                                    km[r * out_ch + oc] = w[((oc * in_ch + ic) * k + ky) * k + kx];
                                }
                            }
                        }
                    }
                    let mut tiled = self.tile_matrix(&km, rows, out_ch, in_scale)?;
                    let (oh, ow) = (conv.out_h(), conv.out_w());
                    let (src_h, src_w) = (conv.in_h(), conv.in_w());
                    let padding = conv.padding();
                    // Gather all im2col windows once: used both for
                    // SA-window calibration (on a sample) and for
                    // evaluation. Padded taps stage code 0, the grounded
                    // input line's contribution.
                    let mut windows: Vec<Vec<u16>> = Vec::with_capacity(oh * ow);
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut window = vec![0u16; rows];
                            for ic in 0..in_ch {
                                for ky in 0..k {
                                    for kx in 0..k {
                                        // Out-of-range taps wrap past
                                        // src_h/src_w and read 0.
                                        let iy = (oy + ky).wrapping_sub(padding);
                                        let ix = (ox + kx).wrapping_sub(padding);
                                        if iy < src_h && ix < src_w {
                                            window[(ic * k + ky) * k + kx] =
                                                codes[(ic * src_h + iy) * src_w + ix];
                                        }
                                    }
                                }
                            }
                            windows.push(window);
                        }
                    }
                    let sample_stride = (windows.len() / 32).max(1);
                    let samples: Vec<&[u16]> = windows
                        .iter()
                        .step_by(sample_stride)
                        .map(|w| w.as_slice())
                        .collect();
                    self.calibrate_tiles(&mut tiled, &samples);
                    let mut out = vec![0.0f32; out_ch * oh * ow];
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let window = &windows[oy * ow + ox];
                            self.stats.buffer_words += window.len() as u64;
                            let y = self.eval_tiles(&mut tiled, window, out_ch)?;
                            for (oc, &v) in y.iter().enumerate() {
                                let val = v + conv.bias()[oc];
                                out[(oc * oh + oy) * ow + ox] = conv.activation().apply(val);
                            }
                        }
                    }
                    self.stats.buffer_words += out.len() as u64;
                    out
                }
                Layer::Pool(pool) => match pool.kind() {
                    PoolKind::Max => {
                        // Hardware path: quantize, run the 4:1 winner-code
                        // unit, dequantize. Max pooling commutes with the
                        // monotonic quantization, so fidelity is exact up
                        // to input quantization.
                        let (codes, scale) = self.quantize_input(&x);
                        let win = pool.window();
                        let (oh, ow) = (pool.out_h(), pool.out_w());
                        let channels = pool.outputs() / (oh * ow);
                        let in_w = ow * win;
                        let mut out = vec![0.0f32; pool.outputs()];
                        for c in 0..channels {
                            for oy in 0..oh {
                                for ox in 0..ow {
                                    let mut vals = Vec::with_capacity(win * win);
                                    for wy in 0..win {
                                        for wx in 0..win {
                                            vals.push(i64::from(
                                                codes[(c * oh * win + oy * win + wy) * in_w
                                                    + ox * win
                                                    + wx],
                                            ));
                                        }
                                    }
                                    self.stats.pool_steps +=
                                        self.pool_unit.steps_for(vals.len()) as u64;
                                    let m = self.pool_unit.pool(&vals)?;
                                    out[(c * oh + oy) * ow + ox] = m as f32 * scale;
                                }
                            }
                        }
                        out
                    }
                    PoolKind::Mean => {
                        // Hardware path: the 1/n weight row pre-programmed
                        // into ReRAM cells. One dot product per window
                        // computes `level * sum(codes)` with the quantized
                        // reciprocal level; the periphery rescales by
                        // `scale / (level * n)` to recover the mean.
                        let (codes, scale) = self.quantize_input(&x);
                        self.stats.buffer_words += codes.len() as u64;
                        let win = pool.window();
                        let n = win * win;
                        let level =
                            i64::from(mean_pool_weights(n, self.scheme.weight_half_bits())?[0]);
                        let (oh, ow) = (pool.out_h(), pool.out_w());
                        let channels = pool.outputs() / (oh * ow);
                        let in_w = ow * win;
                        let unit = scale / (level * n as i64) as f32;
                        let mut out = vec![0.0f32; pool.outputs()];
                        for c in 0..channels {
                            for oy in 0..oh {
                                for ox in 0..ow {
                                    let mut acc = 0i64;
                                    for wy in 0..win {
                                        for wx in 0..win {
                                            acc += level
                                                * i64::from(
                                                    codes[(c * oh * win + oy * win + wy) * in_w
                                                        + ox * win
                                                        + wx],
                                                );
                                        }
                                    }
                                    self.stats.merge_adds += n as u64;
                                    out[(c * oh + oy) * ow + ox] = acc as f32 * unit;
                                }
                            }
                        }
                        out
                    }
                },
            };
        }
        Ok((x, self.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prime_nn::{Activation, FullyConnected, Pool2d, Tensor};

    #[test]
    fn fc_layer_matches_software_within_quantization_error() {
        let weights = Tensor::from_vec(
            vec![3, 4],
            vec![
                0.5, -0.25, 0.125, 0.75, -0.5, 0.3, 0.2, -0.1, 0.05, 0.6, -0.7, 0.45,
            ],
        )
        .unwrap();
        let fc = FullyConnected::from_params(weights, vec![0.1, -0.2, 0.0], Activation::Identity)
            .unwrap();
        let net = Network::new(vec![Layer::Fc(fc.clone())]).unwrap();
        let input = [0.9f32, 0.1, 0.5, 0.7];
        let sw = fc.forward(&input).unwrap();
        let mut exec = FfExecutor::new();
        let (hw, stats) = exec.run(&net, &input).unwrap();
        for (a, b) in hw.iter().zip(&sw) {
            assert!((a - b).abs() < 0.12, "hw {a} vs sw {b}");
        }
        assert!(stats.mat_passes >= 1);
        assert!(stats.mats_programmed >= 1);
    }

    #[test]
    fn split_merge_matches_single_tile_semantics() {
        // 600 inputs force 3 row tiles; results must match software.
        let inputs = 600;
        let outputs = 5;
        let w: Vec<f32> = (0..inputs * outputs)
            .map(|i| (((i * 17) % 41) as f32 - 20.0) / 40.0)
            .collect();
        let weights = Tensor::from_vec(vec![outputs, inputs], {
            // transpose into [outputs, inputs]
            let mut t = vec![0.0f32; inputs * outputs];
            for o in 0..outputs {
                for i in 0..inputs {
                    t[o * inputs + i] = w[i * outputs + o];
                }
            }
            t
        })
        .unwrap();
        let fc =
            FullyConnected::from_params(weights, vec![0.0; outputs], Activation::Identity).unwrap();
        let net = Network::new(vec![Layer::Fc(fc.clone())]).unwrap();
        let input: Vec<f32> = (0..inputs).map(|i| ((i % 10) as f32) / 10.0).collect();
        let sw = fc.forward(&input).unwrap();
        let mut exec = FfExecutor::new();
        let (hw, stats) = exec.run(&net, &input).unwrap();
        // Zero-mean random weights with 600-wide fan-in are the scheme's
        // worst case: each of the 3 row tiles quantizes its large,
        // mutually-cancelling partial sum into a 6-bit window, so the
        // merged output carries ~3 tile-LSBs of error. Check the result
        // tracks software tightly in shape and within that bound.
        for (a, b) in hw.iter().zip(&sw) {
            assert!((a - b).abs() < 0.6, "hw {a} vs sw {b}");
        }
        let corr = correlation(&hw, &sw);
        assert!(corr > 0.9, "hardware/software correlation too low: {corr}");
        // 600 rows -> 3 row tiles of 1 col tile each.
        assert_eq!(stats.mat_passes, 3);
    }

    #[test]
    fn run_rejects_wrong_sized_input() {
        let fc = FullyConnected::new(8, 4, Activation::Identity);
        let net = Network::new(vec![Layer::Fc(fc)]).unwrap();
        let mut exec = FfExecutor::new();
        let err = exec.run(&net, &[0.5; 10]);
        assert!(
            matches!(err, Err(PrimeError::MappingMismatch { .. })),
            "wrong-sized input must error, not panic: {err:?}"
        );
    }

    #[test]
    fn max_pool_hardware_path_matches_software() {
        let pool = Pool2d::new(PoolKind::Max, 2, 4, 4, 2);
        let net = Network::new(vec![Layer::Pool(pool)]).unwrap();
        let input: Vec<f32> = (0..32).map(|i| ((i * 13 % 32) as f32) / 32.0).collect();
        let sw = net.forward(&input).unwrap();
        let mut exec = FfExecutor::new();
        let (hw, stats) = exec.run(&net, &input).unwrap();
        for (a, b) in hw.iter().zip(&sw) {
            assert!((a - b).abs() < 0.02, "hw {a} vs sw {b}");
        }
        assert!(stats.pool_steps > 0);
    }

    #[test]
    fn conv_layer_matches_software_within_quantization_error() {
        let mut conv = prime_nn::Conv2d::new(1, 2, 3, 6, 6, 0, Activation::Relu);
        for (i, w) in conv.weights_mut().data_mut().iter_mut().enumerate() {
            *w = (((i * 23) % 19) as f32 - 9.0) / 18.0;
        }
        conv.bias_mut()[0] = 0.05;
        conv.bias_mut()[1] = -0.05;
        let net = Network::new(vec![Layer::Conv(conv.clone())]).unwrap();
        let input: Vec<f32> = (0..36).map(|i| ((i * 7 % 13) as f32) / 13.0).collect();
        let sw = conv.forward(&input).unwrap();
        let mut exec = FfExecutor::new();
        let (hw, _) = exec.run(&net, &input).unwrap();
        let max = sw.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(0.5);
        for (a, b) in hw.iter().zip(&sw) {
            assert!((a - b).abs() / max < 0.25, "hw {a} vs sw {b}");
        }
        let corr = correlation(&hw, &sw);
        assert!(corr > 0.95, "hardware/software correlation too low: {corr}");
    }

    #[test]
    fn padded_conv_matches_software_within_quantization_error() {
        let mut conv = prime_nn::Conv2d::new(2, 3, 3, 5, 5, 1, Activation::Identity);
        for (i, w) in conv.weights_mut().data_mut().iter_mut().enumerate() {
            *w = (((i * 29) % 23) as f32 - 11.0) / 22.0;
        }
        conv.bias_mut()[1] = 0.1;
        assert_eq!(conv.out_h(), 5, "same-padding conv keeps its map size");
        let net = Network::new(vec![Layer::Conv(conv.clone())]).unwrap();
        let input: Vec<f32> = (0..50).map(|i| ((i * 11 % 17) as f32) / 17.0).collect();
        let sw = conv.forward(&input).unwrap();
        let mut exec = FfExecutor::new();
        let (hw, _) = exec.run(&net, &input).unwrap();
        let max = sw.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(0.5);
        for (a, b) in hw.iter().zip(&sw) {
            assert!((a - b).abs() / max < 0.25, "hw {a} vs sw {b}");
        }
        let corr = correlation(&hw, &sw);
        assert!(corr > 0.95, "hardware/software correlation too low: {corr}");
    }

    #[test]
    fn mean_pool_hardware_path_matches_software() {
        let pool = Pool2d::new(PoolKind::Mean, 2, 4, 4, 2);
        let net = Network::new(vec![Layer::Pool(pool)]).unwrap();
        let input: Vec<f32> = (0..32).map(|i| ((i * 13 % 32) as f32) / 32.0).collect();
        let sw = net.forward(&input).unwrap();
        let mut exec = FfExecutor::new();
        let (hw, _) = exec.run(&net, &input).unwrap();
        // Exact up to input quantization: the programmed level cancels in
        // the periphery rescale.
        for (a, b) in hw.iter().zip(&sw) {
            assert!((a - b).abs() < 0.02, "hw {a} vs sw {b}");
        }
    }

    /// Pearson correlation between two equal-length vectors.
    fn correlation(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len() as f32;
        let (ma, mb) = (a.iter().sum::<f32>() / n, b.iter().sum::<f32>() / n);
        let cov: f32 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f32 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f32 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
        cov / (va.sqrt() * vb.sqrt()).max(1e-12)
    }
}
