//! The Buffer subarray (paper §III-B).
//!
//! The mem subarray closest to the FF subarrays is configured as a data
//! buffer: it caches FF input/output data (crossbar evaluation is fast;
//! serial data movement is the bottleneck) and connects to the FF
//! subarrays through private data ports, so the CPU and the FF subarrays
//! work in parallel. The buffer-connection unit's extra decoders and
//! multiplexers let an FF subarray access *any* location in the buffer —
//! required by the random access patterns between convolutional layers —
//! and a bypass register forwards one mat's output directly to another's
//! input when no buffering is needed.

use serde::{Deserialize, Serialize};

use prime_mem::BufAddr;

use crate::error::PrimeError;

/// A functional Buffer subarray: flat storage of composed data codes with
/// random access from the FF side.
///
/// # Examples
///
/// ```
/// use prime_core::BufferSubarray;
/// use prime_mem::BufAddr;
///
/// let mut buf = BufferSubarray::new(1024);
/// buf.store(BufAddr(0), &[1, 2, 3])?;
/// assert_eq!(buf.load(BufAddr(0), 3)?, vec![1, 2, 3]);
/// # Ok::<(), prime_core::PrimeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferSubarray {
    /// One slot per composed data word (6-bit codes stored widened).
    data: Vec<i64>,
    /// The bypass register between mats (paper Fig. 4 D).
    bypass_register: Option<Vec<i64>>,
    /// Words written since the last statistics reset.
    words_written: u64,
    /// Words read since the last statistics reset.
    words_read: u64,
}

impl BufferSubarray {
    /// Creates a buffer holding `words` data words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn new(words: usize) -> Self {
        assert!(words > 0, "buffer must have capacity");
        BufferSubarray {
            data: vec![0; words],
            bypass_register: None,
            words_written: 0,
            words_read: 0,
        }
    }

    /// Capacity in data words.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Words written since construction or the last reset.
    pub fn words_written(&self) -> u64 {
        self.words_written
    }

    /// Words read since construction or the last reset.
    pub fn words_read(&self) -> u64 {
        self.words_read
    }

    /// Resets the traffic counters.
    pub fn reset_stats(&mut self) {
        self.words_written = 0;
        self.words_read = 0;
    }

    fn check_range(&self, addr: BufAddr, len: usize) -> Result<usize, PrimeError> {
        let start = addr.0 as usize;
        let end = start.checked_add(len).ok_or(PrimeError::BufferOverflow {
            requested: u64::MAX,
            capacity: self.data.len() as u64,
        })?;
        if end > self.data.len() {
            return Err(PrimeError::BufferOverflow {
                requested: end as u64,
                capacity: self.data.len() as u64,
            });
        }
        Ok(start)
    }

    /// Stores `values` starting at `addr` (the `store [FF adr] to
    /// [buf adr]` data flow, and the memory side of `fetch`).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] when the range exceeds
    /// capacity.
    pub fn store(&mut self, addr: BufAddr, values: &[i64]) -> Result<(), PrimeError> {
        let start = self.check_range(addr, values.len())?;
        self.data[start..start + values.len()].copy_from_slice(values);
        self.words_written += values.len() as u64;
        Ok(())
    }

    /// Loads `len` words starting at `addr` (the `load [buf adr] to
    /// [FF adr]` data flow).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] when the range exceeds
    /// capacity.
    pub fn load(&mut self, addr: BufAddr, len: usize) -> Result<Vec<i64>, PrimeError> {
        let mut out = Vec::new();
        self.load_into(addr, len, &mut out)?;
        Ok(out)
    }

    /// [`load`](Self::load) into a caller-owned buffer: `out` is cleared
    /// and refilled, so reused buffers incur no steady-state allocation.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] when the range exceeds
    /// capacity.
    pub fn load_into(
        &mut self,
        addr: BufAddr,
        len: usize,
        out: &mut Vec<i64>,
    ) -> Result<(), PrimeError> {
        let start = self.check_range(addr, len)?;
        self.words_read += len as u64;
        out.clear();
        out.extend_from_slice(&self.data[start..start + len]);
        Ok(())
    }

    /// Random-access gather: the buffer-connection unit can deliver any
    /// set of buffer locations to an FF mat (convolution window reads).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] if any index exceeds
    /// capacity.
    pub fn gather(&mut self, indices: &[u64]) -> Result<Vec<i64>, PrimeError> {
        let mut out = Vec::with_capacity(indices.len());
        for &idx in indices {
            if idx as usize >= self.data.len() {
                return Err(PrimeError::BufferOverflow {
                    requested: idx + 1,
                    capacity: self.data.len() as u64,
                });
            }
            out.push(self.data[idx as usize]);
        }
        self.words_read += indices.len() as u64;
        Ok(out)
    }

    /// Places values in the bypass register instead of the array — used
    /// when one mat's output is exactly the next mat's input.
    pub fn bypass_store(&mut self, values: Vec<i64>) {
        self.bypass_register = Some(values);
    }

    /// Takes the bypass register's contents, if any.
    pub fn bypass_take(&mut self) -> Option<Vec<i64>> {
        self.bypass_register.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_round_trip() {
        let mut buf = BufferSubarray::new(16);
        buf.store(BufAddr(4), &[7, -3, 9]).unwrap();
        assert_eq!(buf.load(BufAddr(4), 3).unwrap(), vec![7, -3, 9]);
        assert_eq!(buf.words_written(), 3);
        assert_eq!(buf.words_read(), 3);
    }

    #[test]
    fn out_of_range_accesses_fail() {
        let mut buf = BufferSubarray::new(8);
        assert!(buf.store(BufAddr(6), &[1, 2, 3]).is_err());
        assert!(buf.load(BufAddr(8), 1).is_err());
        assert!(buf.gather(&[7, 8]).is_err());
    }

    #[test]
    fn gather_supports_random_access() {
        let mut buf = BufferSubarray::new(8);
        buf.store(BufAddr(0), &[10, 11, 12, 13, 14, 15, 16, 17])
            .unwrap();
        assert_eq!(buf.gather(&[7, 0, 3]).unwrap(), vec![17, 10, 13]);
    }

    #[test]
    fn bypass_register_is_one_shot() {
        let mut buf = BufferSubarray::new(4);
        buf.bypass_store(vec![1, 2]);
        assert_eq!(buf.bypass_take(), Some(vec![1, 2]));
        assert_eq!(buf.bypass_take(), None);
    }
}
