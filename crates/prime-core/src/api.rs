//! The software/hardware interface (paper §IV-A, Fig. 7).
//!
//! From source code to execution there are three stages: programming
//! against the PRIME APIs (`Map_Topology`, `Program_Weight`,
//! `Config_Datapath`, `Run`, `Post_Proc`), compiling (the §IV-B mapping
//! optimization, producing metadata: synaptic-weight mapping, datapath
//! configuration, and data-flow commands), and execution, where the
//! PRIME controller consumes that metadata. Training happens offline, so
//! the API consumes an already-trained network (the *NN param file*).

use serde::{Deserialize, Serialize};

use prime_compiler::{map_network, CompileOptions, HwTarget, NetworkMapping};
use prime_mem::{BufAddr, Command, FfAddr, InputSource, MatAddr, MatFunction, MemAddr};
use prime_nn::{Network, NetworkSpec};

use crate::error::PrimeError;
use crate::executor::{ExecutionStats, FfExecutor};

/// The offline-trained model handed to the API (the `NN param.file` of
/// Fig. 7): the topology plus trained weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NnParamFile {
    /// The topology (used by `Map_Topology`).
    pub spec: NetworkSpec,
    /// The trained network (used by `Program_Weight`).
    pub network: Network,
}

/// Compile-stage output: everything the execution stage needs (Fig. 7's
/// "metadata" box).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledProgram {
    /// The optimized NN-to-mat mapping.
    pub mapping: NetworkMapping,
    /// Datapath-configure commands, issued once at configuration time.
    pub datapath_commands: Vec<Command>,
    /// Data-flow commands for one inference (fetch inputs, load/store per
    /// weight layer, commit outputs).
    pub dataflow_commands: Vec<Command>,
}

/// A PRIME program as the developer builds it: map, program, configure,
/// run, post-process.
///
/// # Examples
///
/// ```no_run
/// use prime_core::{NnParamFile, PrimeProgram};
/// use prime_nn::MlBench;
///
/// let spec = MlBench::MlpS.spec();
/// let network = spec.to_network()?;
/// let params = NnParamFile { spec, network };
/// let mut program = PrimeProgram::new();
/// program.map_topology(&params)?;          // Map_Topology(..)
/// program.program_weight(&params)?;        // Program_Weight(..)
/// let cmds = program.config_datapath()?;   // Config_Datapath(..)
/// let output = program.run(&vec![0.5; 784])?; // Run(input_data)
/// let digit = PrimeProgram::post_proc(&output); // Post_Proc()
/// # let _ = (cmds, digit);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct PrimeProgram {
    target: HwTarget,
    mapping: Option<NetworkMapping>,
    network: Option<Network>,
    executor: FfExecutor,
}

impl PrimeProgram {
    /// Creates a program against the default PRIME hardware target.
    pub fn new() -> Self {
        PrimeProgram {
            target: HwTarget::prime_default(),
            mapping: None,
            network: None,
            executor: FfExecutor::new(),
        }
    }

    /// Creates a program against a custom hardware target.
    pub fn with_target(target: HwTarget) -> Self {
        PrimeProgram {
            target,
            mapping: None,
            network: None,
            executor: FfExecutor::new(),
        }
    }

    /// `Map_Topology(..)`: maps the NN topology onto FF subarrays, running
    /// the compile-time optimization.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] if the network does not fit
    /// the hardware.
    pub fn map_topology(&mut self, params: &NnParamFile) -> Result<&NetworkMapping, PrimeError> {
        let mapping =
            map_network(&params.spec, &self.target, CompileOptions::default()).map_err(|e| {
                PrimeError::MappingMismatch {
                    reason: e.to_string(),
                }
            })?;
        Ok(self.mapping.insert(mapping))
    }

    /// `Program_Weight(..)`: records the trained weights to program into
    /// the mapped mats.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] if `map_topology` has not
    /// run or the network shape disagrees with the mapped topology.
    pub fn program_weight(&mut self, params: &NnParamFile) -> Result<(), PrimeError> {
        let mapping = self.mapping.as_ref().ok_or(PrimeError::MappingMismatch {
            reason: "Program_Weight before Map_Topology".to_string(),
        })?;
        if params.spec.layers().len() != mapping.layers.len() {
            return Err(PrimeError::MappingMismatch {
                reason: "network does not match the mapped topology".to_string(),
            });
        }
        self.network = Some(params.network.clone());
        Ok(())
    }

    /// `Config_Datapath(..)`: generates the Table I command stream — the
    /// datapath configuration followed by one inference's data flow.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] before `map_topology`.
    pub fn config_datapath(&mut self) -> Result<CompiledProgram, PrimeError> {
        let mapping = self.mapping.as_ref().ok_or(PrimeError::MappingMismatch {
            reason: "Config_Datapath before Map_Topology".to_string(),
        })?;
        let mut datapath = Vec::new();
        let mut dataflow = Vec::new();
        let mut mat_cursor = 0usize;
        let mats_per_subarray = self.target.mats_per_ff_subarray;
        let weight_layers = mapping.layers.iter().filter(|l| l.base_mats > 0).count();
        let mut weight_idx = 0usize;
        // Mat addresses are bank-relative and each inter-bank pipeline
        // stage owns its bank's mats (§IV-B large-scale mapping), so the
        // cursor restarts at every stage boundary — the same per-stage
        // allocation `CommandRunner::compile_pipeline` performs.
        let mut stage_of_layer = vec![0usize; mapping.layers.len()];
        for (s, stage) in mapping.pipeline.iter().enumerate() {
            for &l in &stage.layers {
                stage_of_layer[l] = s;
            }
        }
        let mut current_stage = 0usize;
        // Stage the network input into the buffer.
        if let Some(first) = mapping.layers.first() {
            dataflow.push(Command::Fetch {
                from: MemAddr(0),
                to: BufAddr(0),
                bytes: (first.layer.inputs() * 8) as u64,
            });
        }
        for (li, layer) in mapping.layers.iter().enumerate() {
            if stage_of_layer[li] != current_stage {
                current_stage = stage_of_layer[li];
                mat_cursor = 0;
            }
            if layer.base_mats == 0 {
                continue; // pooling layers run on the pooling hardware
            }
            let is_last = weight_idx + 1 == weight_layers;
            for tile in 0..layer.base_mats {
                let flat = mat_cursor + tile;
                let mat = MatAddr {
                    subarray: flat / mats_per_subarray,
                    mat: flat % mats_per_subarray,
                };
                datapath.push(Command::SetFunction {
                    mat,
                    function: MatFunction::Compute,
                });
                // Sigmoid only on the final merged output of a layer whose
                // activation needs it; split tiles always bypass.
                let bypass = layer.row_tiles > 1 || !is_last;
                datapath.push(Command::BypassSigmoid { mat, bypass });
                datapath.push(Command::BypassSa { mat, bypass: false });
                datapath.push(Command::SetInputSource {
                    mat,
                    source: InputSource::Buffer,
                });
                dataflow.push(Command::Load {
                    from: BufAddr(0),
                    to: FfAddr { mat, offset: 0 },
                    bytes: (layer.rows_needed * 8) as u64,
                });
                dataflow.push(Command::Store {
                    from: FfAddr { mat, offset: 0 },
                    to: BufAddr((layer.layer.inputs() * 8) as u64),
                    bytes: (layer.cols_needed * 8) as u64,
                });
            }
            mat_cursor += layer.total_mats();
            weight_idx += 1;
        }
        // Commit the final output back to memory.
        if let Some(last) = mapping.layers.last() {
            dataflow.push(Command::Commit {
                from: BufAddr(0),
                to: MemAddr(0),
                bytes: (last.layer.outputs() * 8) as u64,
            });
        }
        Ok(CompiledProgram {
            mapping: mapping.clone(),
            datapath_commands: datapath,
            dataflow_commands: dataflow,
        })
    }

    /// `Run(input_data)`: executes one inference on the functional FF-mat
    /// pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] before `program_weight`, or
    /// execution errors.
    pub fn run(&mut self, input: &[f32]) -> Result<Vec<f32>, PrimeError> {
        let net = self.network.as_ref().ok_or(PrimeError::MappingMismatch {
            reason: "Run before Program_Weight".to_string(),
        })?;
        let (out, _) = self.executor.run(net, input)?;
        Ok(out)
    }

    /// Work counters accumulated by `Run` calls.
    pub fn stats(&self) -> ExecutionStats {
        self.executor.stats()
    }

    /// `Post_Proc()`: interprets the output (classification argmax).
    pub fn post_proc(output: &[f32]) -> usize {
        let mut best = 0;
        for (i, &v) in output.iter().enumerate() {
            if v > output[best] {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prime_nn::MlBench;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_params() -> NnParamFile {
        let spec = NetworkSpec::new(
            "tiny",
            vec![
                prime_nn::LayerSpec::FullyConnected {
                    inputs: 8,
                    outputs: 6,
                },
                prime_nn::LayerSpec::FullyConnected {
                    inputs: 6,
                    outputs: 3,
                },
            ],
        )
        .unwrap();
        let mut network = spec.to_network().unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        network.init_random(&mut rng);
        NnParamFile { spec, network }
    }

    #[test]
    fn api_stages_must_run_in_order() {
        let mut prog = PrimeProgram::new();
        assert!(prog.config_datapath().is_err());
        assert!(prog.run(&[0.0; 8]).is_err());
        let params = tiny_params();
        prog.map_topology(&params).unwrap();
        assert!(prog.run(&[0.0; 8]).is_err()); // weights not programmed yet
        prog.program_weight(&params).unwrap();
        let out = prog.run(&[0.5; 8]).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn config_datapath_emits_table_i_commands() {
        let mut prog = PrimeProgram::new();
        let params = tiny_params();
        prog.map_topology(&params).unwrap();
        prog.program_weight(&params).unwrap();
        let compiled = prog.config_datapath().unwrap();
        assert!(compiled
            .datapath_commands
            .iter()
            .all(Command::is_datapath_configure));
        assert!(compiled
            .dataflow_commands
            .iter()
            .all(|c| !c.is_datapath_configure()));
        // fetch + (load + store) per weight tile + commit.
        assert!(compiled.dataflow_commands.len() >= 4);
    }

    #[test]
    fn pipelined_datapath_restarts_mat_cursor_per_stage() {
        // One mat per bank: each FC layer becomes its own pipeline stage.
        let target = HwTarget {
            mat_rows: 256,
            mat_cols: 128,
            mats_per_ff_subarray: 1,
            ff_subarrays_per_bank: 1,
            banks: 4,
        };
        let mut prog = PrimeProgram::with_target(target);
        let params = tiny_params();
        let mapping = prog.map_topology(&params).unwrap().clone();
        assert_eq!(mapping.pipeline.len(), 2, "expected a 2-stage pipeline");
        let compiled = prog.config_datapath().unwrap();
        // Mat addresses are bank-relative: with the cursor restarting per
        // stage, every command targets the bank's single mat.
        for cmd in &compiled.datapath_commands {
            if let Command::SetFunction { mat, .. } = cmd {
                assert_eq!((mat.subarray, mat.mat), (0, 0), "address escaped the bank");
            }
        }
    }

    #[test]
    fn post_proc_is_argmax() {
        assert_eq!(PrimeProgram::post_proc(&[0.1, 0.9, 0.3]), 1);
    }

    #[test]
    fn mlp_s_program_runs_end_to_end() {
        let spec = MlBench::MlpS.spec();
        let mut network = spec.to_network().unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        network.init_random(&mut rng);
        let params = NnParamFile { spec, network };
        let mut prog = PrimeProgram::new();
        let mapping = prog.map_topology(&params).unwrap();
        assert_eq!(mapping.copies_across_memory, 64);
        prog.program_weight(&params).unwrap();
        let out = prog.run(&vec![0.5; 784]).unwrap();
        assert_eq!(out.len(), 10);
        assert!(prog.stats().mat_passes > 0);
    }
}
