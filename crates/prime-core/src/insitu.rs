//! In-situ training on FF mats — the paper's stated future work
//! ("we plan to further enhance PRIME with the training capability",
//! §IV-A), implemented with the Manhattan-rule update scheme of the
//! memristor-training literature PRIME cites (\[12\], \[70\]-\[74\]).
//!
//! The forward pass runs on the device (quantized inputs, composed
//! weights, truncating SAs); gradients are computed by the host from the
//! device's outputs and its read-back weight codes; the update applies
//! gradient-proportional conductance-level pulses (the mixed-signal
//! scheme of ref \[72\]) as in-place cell writes.
//! Endurance consumption is tracked per array, closing the loop with the
//! §II-A endurance analysis.

use serde::{Deserialize, Serialize};

use prime_mem::MatFunction;
use prime_nn::Sample;

use crate::error::PrimeError;
use crate::ff_mat::FfMat;

/// Forward-pass intermediates: logits, hidden activations, hidden
/// pre-activations, and the quantized input codes (for the update step).
type ForwardTrace = (Vec<f32>, Vec<f32>, Vec<f32>, Vec<u16>);

/// One device-resident fully-connected layer (single mat: up to 256
/// inputs x 128 outputs of composed 8-bit weights).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct InSituLayer {
    mat: FfMat,
    inputs: usize,
    outputs: usize,
    /// Host mirror of the device codes (kept in sync with every write;
    /// physically this is the read-back path).
    codes: Vec<i32>,
    /// Bias handled by the host accumulator (digital add).
    bias: Vec<f32>,
    /// Real value of one weight code.
    w_scale: f32,
    relu: bool,
}

impl InSituLayer {
    fn new(inputs: usize, outputs: usize, w_scale: f32, relu: bool) -> Result<Self, PrimeError> {
        let mut mat = FfMat::new();
        mat.set_function(MatFunction::Program);
        let codes = vec![0i32; inputs * outputs];
        mat.program_composed(&codes, inputs, outputs)?;
        mat.set_function(MatFunction::Compute);
        Ok(InSituLayer {
            mat,
            inputs,
            outputs,
            codes,
            bias: vec![0.0; outputs],
            w_scale,
            relu,
        })
    }

    /// Randomizes the device weights with small codes.
    fn init<R: rand::Rng + ?Sized>(&mut self, rng: &mut R, bound: i32) -> Result<(), PrimeError> {
        self.mat.set_function(MatFunction::Program);
        for code in &mut self.codes {
            *code = rng.gen_range(-bound..=bound);
        }
        let codes = self.codes.clone();
        self.mat
            .program_composed(&codes, self.inputs, self.outputs)?;
        self.mat.set_function(MatFunction::Compute);
        Ok(())
    }

    /// Device forward on input codes; returns real-valued activations and
    /// the (real-valued) pre-activations for the backward pass.
    fn forward(
        &mut self,
        in_codes: &[u16],
        in_scale: f32,
    ) -> Result<(Vec<f32>, Vec<f32>), PrimeError> {
        // Calibrate the SA window for this input (dynamic fixed point).
        let mut max_abs = 1i64;
        for c in 0..self.outputs {
            let mut acc = 0i64;
            for (r, &x) in in_codes.iter().enumerate() {
                acc += i64::from(x) * i64::from(self.codes[r * self.outputs + c]);
            }
            max_abs = max_abs.max(acc.abs());
        }
        self.mat.calibrate_output_window(2 * max_abs);
        let raw = self.mat.compute(in_codes)?;
        let unit = in_scale * self.w_scale * (self.mat.output_shift() as f32).exp2();
        let pre: Vec<f32> = raw
            .iter()
            .zip(&self.bias)
            .map(|(&v, &b)| v as f32 * unit + b)
            .collect();
        let act = pre
            .iter()
            .map(|&v| if self.relu { v.max(0.0) } else { v })
            .collect();
        Ok((act, pre))
    }

    /// Gradient-proportional pulse update (the mixed-signal training
    /// scheme of ref \[72\]): each weight receives `-round(g / unit)`
    /// conductance-level pulses, clamped to +/-16 levels per update.
    /// Weights whose gradient rounds to zero are untouched, saving
    /// endurance. Returns the number of cell writes issued.
    fn pulse_update(
        &mut self,
        grad_w: &[f32],
        grad_b: &[f32],
        unit: f32,
    ) -> Result<u64, PrimeError> {
        let mut writes = 0u64;
        self.mat.set_function(MatFunction::Program);
        for (idx, &g) in grad_w.iter().enumerate() {
            let delta = -((g / unit).round() as i32).clamp(-16, 16);
            if delta == 0 {
                continue;
            }
            let updated = (self.codes[idx] + delta).clamp(-255, 255);
            if updated != self.codes[idx] {
                self.codes[idx] = updated;
                writes += 1;
            }
        }
        // Reprogram the changed matrix (the model writes per-row; real
        // hardware pulses individual cells — the write count above is the
        // endurance-relevant figure).
        let codes = self.codes.clone();
        self.mat
            .program_composed(&codes, self.inputs, self.outputs)?;
        self.mat.set_function(MatFunction::Compute);
        // Bias updates are digital (host-side register).
        for (b, &g) in self.bias.iter_mut().zip(grad_b) {
            let delta = (g / unit).round();
            *b -= delta * self.w_scale;
        }
        Ok(writes)
    }

    /// Real-valued weight at (input r, output c), from the device mirror.
    fn weight(&self, r: usize, c: usize) -> f32 {
        self.codes[r * self.outputs + c] as f32 * self.w_scale
    }
}

/// Progress of one in-situ training epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InSituEpoch {
    /// Epoch index.
    pub epoch: usize,
    /// Training accuracy over the epoch.
    pub accuracy: f64,
    /// Cell writes issued this epoch (endurance consumption).
    pub cell_writes: u64,
}

/// A two-layer MLP trained in situ on FF mats.
///
/// # Examples
///
/// ```no_run
/// use prime_core::InSituMlp;
/// use prime_nn::DigitGenerator;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let data = DigitGenerator::default().dataset(200, &mut rng);
/// let mut mlp = InSituMlp::new(196, 16, 10, &mut rng)?;
/// let history = mlp.train(&data, 2, 8, &mut rng)?;
/// assert!(history.last().unwrap().accuracy > 0.5);
/// # Ok::<(), prime_core::PrimeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InSituMlp {
    hidden: InSituLayer,
    output: InSituLayer,
    inputs: usize,
    /// 28x28 samples are mean-pooled to this edge before entering the
    /// 256-row mat.
    pool: usize,
    total_writes: u64,
}

impl InSituMlp {
    /// Creates a `inputs -> hidden -> classes` in-situ MLP with random
    /// device weights. `inputs` must be a square number dividing the
    /// 28x28 image evenly (e.g. 196 = 14x14).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MatOverflow`] if a layer exceeds one mat.
    pub fn new<R: rand::Rng + ?Sized>(
        inputs: usize,
        hidden: usize,
        classes: usize,
        rng: &mut R,
    ) -> Result<Self, PrimeError> {
        let edge = (inputs as f64).sqrt() as usize;
        if edge * edge != inputs || 28 % edge != 0 {
            return Err(PrimeError::MappingMismatch {
                reason: "inputs must be a square dividing 28x28 (e.g. 196)".to_string(),
            });
        }
        let mut h = InSituLayer::new(inputs, hidden, 1.0 / 64.0, true)?;
        let mut o = InSituLayer::new(hidden, classes, 1.0 / 64.0, false)?;
        h.init(rng, 16)?;
        o.init(rng, 16)?;
        Ok(InSituMlp {
            hidden: h,
            output: o,
            inputs,
            pool: 28 / edge,
            total_writes: 0,
        })
    }

    /// Total cell writes issued since construction.
    pub fn total_writes(&self) -> u64 {
        self.total_writes
    }

    /// Mean-pools a 28x28 image down to the MLP's input resolution and
    /// quantizes it to 6-bit input codes.
    fn encode(&self, pixels: &[f32]) -> Vec<u16> {
        let edge = 28 / self.pool;
        let mut out = vec![0u16; self.inputs];
        for y in 0..edge {
            for x in 0..edge {
                let mut acc = 0.0f32;
                for py in 0..self.pool {
                    for px in 0..self.pool {
                        acc += pixels[(y * self.pool + py) * 28 + x * self.pool + px];
                    }
                }
                let mean = acc / (self.pool * self.pool) as f32;
                out[y * edge + x] = (mean * 63.0).round().clamp(0.0, 63.0) as u16;
            }
        }
        out
    }

    /// Device-forward classification of one image.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn classify(&mut self, pixels: &[f32]) -> Result<usize, PrimeError> {
        let (logits, _, _, _) = self.forward(pixels)?;
        Ok(argmax(&logits))
    }

    fn forward(&mut self, pixels: &[f32]) -> Result<ForwardTrace, PrimeError> {
        let in_codes = self.encode(pixels);
        let in_scale = 1.0 / 63.0;
        let (h_act, h_pre) = self.hidden.forward(&in_codes, in_scale)?;
        // Hidden activations re-enter the crossbar as 6-bit codes.
        let h_max = h_act.iter().fold(0.0f32, |m, &v| m.max(v)).max(1e-6);
        let h_scale = h_max / 63.0;
        let h_codes: Vec<u16> = h_act
            .iter()
            .map(|&v| ((v / h_scale).round().clamp(0.0, 63.0)) as u16)
            .collect();
        let (logits, _) = self.output.forward(&h_codes, h_scale)?;
        Ok((logits, h_act, h_pre, in_codes))
    }

    /// Trains with minibatch Manhattan-rule updates on the device.
    /// Returns per-epoch statistics.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn train<R: rand::Rng + ?Sized>(
        &mut self,
        samples: &[Sample],
        epochs: usize,
        minibatch: usize,
        rng: &mut R,
    ) -> Result<Vec<InSituEpoch>, PrimeError> {
        use rand::seq::SliceRandom;
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut history = Vec::with_capacity(epochs);
        for epoch in 0..epochs {
            order.shuffle(rng);
            let mut correct = 0usize;
            let mut epoch_writes = 0u64;
            for chunk in order.chunks(minibatch) {
                let mut gw1 = vec![0.0f32; self.hidden.inputs * self.hidden.outputs];
                let mut gb1 = vec![0.0f32; self.hidden.outputs];
                let mut gw2 = vec![0.0f32; self.output.inputs * self.output.outputs];
                let mut gb2 = vec![0.0f32; self.output.outputs];
                for &idx in chunk {
                    let sample = &samples[idx];
                    let (logits, h_act, h_pre, in_codes) = self.forward(&sample.pixels)?;
                    if argmax(&logits) == sample.label {
                        correct += 1;
                    }
                    // Softmax cross-entropy gradient at the logits.
                    let probs = softmax(&logits);
                    let mut g_out = probs;
                    g_out[sample.label] -= 1.0;
                    // Output-layer gradients (inputs are h_act).
                    for (c, &g) in g_out.iter().enumerate() {
                        gb2[c] += g;
                        for (r, &h) in h_act.iter().enumerate() {
                            gw2[r * self.output.outputs + c] += g * h;
                        }
                    }
                    // Backprop into the hidden layer through the device's
                    // read-back weights.
                    for r in 0..self.hidden.outputs {
                        if h_pre[r] <= 0.0 {
                            continue; // ReLU gate
                        }
                        let mut g_h = 0.0f32;
                        for (c, &g) in g_out.iter().enumerate() {
                            g_h += g * self.output.weight(r, c);
                        }
                        gb1[r] += g_h;
                        let in_scale = 1.0 / 63.0;
                        for (i, &code) in in_codes.iter().enumerate() {
                            gw1[i * self.hidden.outputs + r] += g_h * f32::from(code) * in_scale;
                        }
                    }
                }
                // One conductance level per ~1.5x the mean gradient,
                // annealed: later epochs demand proportionally larger
                // gradients per level, shrinking the quantization noise
                // ball as training converges.
                let anneal = 1.5 * (1.0 + epoch as f32);
                let u1 = (mean_abs(&gw1) * anneal).max(1e-9);
                let u2 = (mean_abs(&gw2) * anneal).max(1e-9);
                epoch_writes += self.hidden.pulse_update(&gw1, &gb1, u1)?;
                epoch_writes += self.output.pulse_update(&gw2, &gb2, u2)?;
            }
            self.total_writes += epoch_writes;
            history.push(InSituEpoch {
                epoch,
                accuracy: correct as f64 / samples.len().max(1) as f64,
                cell_writes: epoch_writes,
            });
        }
        Ok(history)
    }
}

fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

fn mean_abs(v: &[f32]) -> f32 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().map(|x| x.abs()).sum::<f32>() / v.len() as f32
    }
}

fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use prime_nn::DigitGenerator;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn insitu_training_learns_the_digit_task() {
        let mut rng = SmallRng::seed_from_u64(61);
        let data = DigitGenerator::default().dataset(200, &mut rng);
        let mut mlp = InSituMlp::new(196, 16, 10, &mut rng).unwrap();
        // 30 epochs: the training trajectory depends on the RNG stream, and
        // the vendored rand stand-in draws a different (valid) sequence than
        // upstream rand did when this test was first calibrated at 15.
        let history = mlp.train(&data, 30, 8, &mut rng).unwrap();
        let final_acc = history.last().unwrap().accuracy;
        assert!(
            final_acc > 0.75,
            "in-situ training failed to learn: {history:?}"
        );
        // Accuracy improves over epochs (allowing small wobble).
        assert!(final_acc > history[0].accuracy - 0.05);
        assert!(mlp.total_writes() > 0, "training must consume endurance");
    }

    #[test]
    fn insitu_rejects_non_square_inputs() {
        let mut rng = SmallRng::seed_from_u64(62);
        assert!(InSituMlp::new(200, 8, 10, &mut rng).is_err());
    }

    #[test]
    fn classify_runs_on_the_device() {
        let mut rng = SmallRng::seed_from_u64(63);
        let mut mlp = InSituMlp::new(196, 8, 10, &mut rng).unwrap();
        let sample = DigitGenerator::default().sample(4, &mut rng);
        let class = mlp.classify(&sample.pixels).unwrap();
        assert!(class < 10);
    }

    #[test]
    fn pulse_update_moves_codes_against_gradient() {
        let mut layer = InSituLayer::new(2, 2, 1.0 / 64.0, false).unwrap();
        let before = layer.codes.clone();
        // Unit 0.5: gradient 1.0 -> 2 levels; -2.5 -> 5 levels; huge
        // gradients clamp at 16 levels.
        let grads = vec![1.0f32, 0.0, 100.0, -2.5];
        let writes = layer.pulse_update(&grads, &[0.0, 0.0], 0.5).unwrap();
        assert_eq!(writes, 3);
        assert_eq!(layer.codes[0], before[0] - 2);
        assert_eq!(layer.codes[2], before[2] - 16);
        assert_eq!(layer.codes[3], before[3] + 5);
        assert_eq!(layer.codes[1], before[1]);
    }
}
