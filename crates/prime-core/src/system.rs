//! The full PRIME system: every bank's controller behind one façade,
//! with the OS runtime (morph policy, page-miss tracking, reservations)
//! and reconfiguration wear leveling — the whole §III/§IV machinery in
//! one object.
//!
//! Deploying a network compiles and programs one [`CommandRunner`] copy
//! per bank (bank-level parallelism, §IV-B2); batches round-robin over
//! the copies; and the OS hooks decide at run time whether FF capacity
//! should be released back to memory under page-miss pressure (§IV-C).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use prime_device::NoiseModel;
use prime_mem::{FfReservationMap, MorphDecision, MorphPolicy, PageMissTracker, WearLeveler};
use prime_nn::Network;

use crate::controller::BankController;
use crate::error::PrimeError;
use crate::runner::{CommandRunner, InferScratch};

/// Per-bank outcome of a batched run: the (input index, output) pairs the
/// bank completed, or the first (input index, error) it hit.
type BankBatch = Result<Vec<(usize, Vec<f32>)>, (usize, PrimeError)>;

/// Aggregate statistics of a PRIME system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemStats {
    /// NN deployments (reconfigurations) performed.
    pub reconfigurations: u64,
    /// Inferences served.
    pub inferences: u64,
    /// FF mats currently reserved for computation.
    pub reserved_mats: usize,
    /// Wear imbalance across the FF-mat pool (1.0 = even).
    pub wear_imbalance: f64,
}

/// A multi-bank PRIME system with its OS runtime.
///
/// # Examples
///
/// ```no_run
/// use prime_core::PrimeSystem;
/// use prime_nn::{Activation, FullyConnected, Layer, Network};
///
/// let net = Network::new(vec![
///     Layer::Fc(FullyConnected::new(16, 8, Activation::Relu)),
///     Layer::Fc(FullyConnected::new(8, 4, Activation::Identity)),
/// ])?;
/// let mut system = PrimeSystem::new(4, 2, 8, 4096);
/// system.deploy(&net, &[0.5; 16])?;
/// let outputs = system.infer_batch(&[vec![0.2; 16], vec![0.8; 16]])?;
/// assert_eq!(outputs.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PrimeSystem {
    banks: Vec<BankController>,
    runners: Vec<CommandRunner>,
    /// One reusable inference scratch per bank (paired with its thread in
    /// parallel execution; buffers only grow, so steady-state batches
    /// allocate nothing inside the compute kernels).
    scratches: Vec<InferScratch>,
    /// Drive the banks concurrently (one thread per bank). Bit-identical
    /// to serial execution; see [`set_parallel`](Self::set_parallel).
    parallel: bool,
    reservations: FfReservationMap,
    policy: MorphPolicy,
    tracker: PageMissTracker,
    wear: WearLeveler,
    mats_per_bank: usize,
    stats: SystemStats,
}

impl PrimeSystem {
    /// Creates a system of `banks` banks, each with `ff_subarrays` FF
    /// subarrays of `mats_per_subarray` mats and a `buffer_words` Buffer
    /// subarray.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        banks: usize,
        ff_subarrays: usize,
        mats_per_subarray: usize,
        buffer_words: usize,
    ) -> Self {
        assert!(banks > 0 && ff_subarrays > 0 && mats_per_subarray > 0);
        let mats_per_bank = ff_subarrays * mats_per_subarray;
        let total_mats = banks * mats_per_bank;
        PrimeSystem {
            banks: (0..banks)
                .map(|_| BankController::new(ff_subarrays, mats_per_subarray, buffer_words, 4096))
                .collect(),
            runners: Vec::new(),
            scratches: (0..banks).map(|_| InferScratch::new()).collect(),
            parallel: true,
            reservations: FfReservationMap::new(total_mats),
            policy: MorphPolicy::prime_default(),
            tracker: PageMissTracker::new(256),
            wear: WearLeveler::new(total_mats + 1, 1).expect("valid pool"),
            mats_per_bank,
            stats: SystemStats {
                reconfigurations: 0,
                inferences: 0,
                reserved_mats: 0,
                wear_imbalance: 1.0,
            },
        }
    }

    /// Number of banks (independent NN copies after deployment).
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SystemStats {
        SystemStats {
            reserved_mats: self.reservations.reserved_count(),
            wear_imbalance: self.wear.imbalance(),
            ..self.stats
        }
    }

    /// Deploys `net` to every bank (one copy per bank): reserves FF mats
    /// with the OS, compiles and programs a command runner per bank, and
    /// charges the wear leveler for the reconfiguration.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError`] if the network does not fit a bank's FF
    /// mats or uses unsupported layers.
    pub fn deploy(&mut self, net: &Network, calibration: &[f32]) -> Result<(), PrimeError> {
        // Compile into every bank first (failure leaves no partial state
        // visible to the OS bookkeeping).
        let mut runners = Vec::with_capacity(self.banks.len());
        for bank in &mut self.banks {
            runners.push(CommandRunner::compile(net, bank, calibration)?);
        }
        let per_bank = runners[0].mats_used();
        self.reservations = FfReservationMap::new(self.banks.len() * self.mats_per_bank);
        self.reservations
            .reserve(per_bank * self.banks.len())
            .map_err(PrimeError::Mem)?;
        self.runners = runners;
        self.wear.on_reconfiguration();
        self.stats.reconfigurations += 1;
        Ok(())
    }

    /// Whether batches drive the banks concurrently (default: `true`).
    pub fn parallel(&self) -> bool {
        self.parallel
    }

    /// Selects the execution engine for [`infer_batch`](Self::infer_batch)
    /// and [`infer_batch_noisy`](Self::infer_batch_noisy): serial
    /// round-robin, or one thread per bank (paper §V bank-level
    /// parallelism). Input `i` runs on bank `i % banks` with that bank's
    /// scratch and RNG stream in *both* modes, so outputs are
    /// bit-identical — the knob trades wall-clock time only.
    pub fn set_parallel(&mut self, parallel: bool) {
        self.parallel = parallel;
    }

    /// Runs a batch of inferences, round-robin over the banks — serially
    /// or with one thread per bank, per
    /// [`set_parallel`](Self::set_parallel). Outputs are returned in
    /// input order and are identical in both modes.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] before any deployment.
    pub fn infer_batch(&mut self, inputs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, PrimeError> {
        self.infer_batch_impl(inputs, None)
    }

    /// Noisy-hardware variant of [`infer_batch`](Self::infer_batch):
    /// every tile evaluates through the analog domain with read noise.
    /// Bank `b` draws from its own RNG stream seeded
    /// `seed.wrapping_add(b)`; since input `i` always runs on bank
    /// `i % banks`, the serial and parallel engines consume identical
    /// streams and stay bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] before any deployment.
    pub fn infer_batch_noisy(
        &mut self,
        inputs: &[Vec<f32>],
        noise: &NoiseModel,
        seed: u64,
    ) -> Result<Vec<Vec<f32>>, PrimeError> {
        self.infer_batch_impl(inputs, Some((noise, seed)))
    }

    fn infer_batch_impl(
        &mut self,
        inputs: &[Vec<f32>],
        analog: Option<(&NoiseModel, u64)>,
    ) -> Result<Vec<Vec<f32>>, PrimeError> {
        if self.runners.is_empty() {
            return Err(PrimeError::MappingMismatch {
                reason: "no network deployed".to_string(),
            });
        }
        let n = self.banks.len();
        // Per-bank RNG streams for the noisy path (None slots: digital).
        let mut rngs: Vec<Option<SmallRng>> = match analog {
            Some((_, seed)) => (0..n)
                .map(|b| Some(SmallRng::seed_from_u64(seed.wrapping_add(b as u64))))
                .collect(),
            None => (0..n).map(|_| None).collect(),
        };
        let noise = analog.map(|(m, _)| m);
        if !self.parallel || n == 1 || inputs.len() <= 1 {
            let mut outputs = Vec::with_capacity(inputs.len());
            for (i, input) in inputs.iter().enumerate() {
                let b = i % n;
                let mut out = Vec::new();
                Self::infer_one(
                    &self.runners[b],
                    &mut self.banks[b],
                    &mut self.scratches[b],
                    noise,
                    &mut rngs[b],
                    input,
                    &mut out,
                )?;
                outputs.push(out);
                self.stats.inferences += 1;
            }
            return Ok(outputs);
        }
        // One thread per bank. Each bank owns its controller, scratch,
        // and RNG stream and processes exactly the inputs the serial
        // round-robin would hand it (i % banks == b), so outputs and
        // RNG draws match the serial engine bit for bit.
        let runners = &self.runners;
        let results: Vec<BankBatch> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .banks
                .iter_mut()
                .zip(self.scratches.iter_mut())
                .zip(rngs.iter_mut())
                .enumerate()
                .map(|(b, ((bank, scratch), rng))| {
                    s.spawn(move || {
                        let mut done = Vec::new();
                        for (i, input) in inputs.iter().enumerate().skip(b).step_by(n) {
                            let mut out = Vec::new();
                            Self::infer_one(
                                &runners[b],
                                bank,
                                scratch,
                                noise,
                                rng,
                                input,
                                &mut out,
                            )
                            .map_err(|e| (i, e))?;
                            done.push((i, out));
                        }
                        Ok(done)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("bank thread panicked"))
                .collect()
        });
        let mut outputs: Vec<Option<Vec<f32>>> = (0..inputs.len()).map(|_| None).collect();
        let mut first_err: Option<(usize, PrimeError)> = None;
        for result in results {
            match result {
                Ok(done) => {
                    for (i, out) in done {
                        outputs[i] = Some(out);
                    }
                }
                Err((i, e)) => {
                    if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
        if let Some((i, e)) = first_err {
            // Match the serial engine's accounting: every input before
            // the first failing index completed.
            self.stats.inferences += i as u64;
            return Err(e);
        }
        self.stats.inferences += inputs.len() as u64;
        Ok(outputs
            .into_iter()
            .map(|o| o.expect("all input indices covered"))
            .collect())
    }

    /// One inference on one bank, digital or analog per `noise`/`rng`.
    fn infer_one(
        runner: &CommandRunner,
        bank: &mut BankController,
        scratch: &mut InferScratch,
        noise: Option<&NoiseModel>,
        rng: &mut Option<SmallRng>,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<(), PrimeError> {
        match (noise, rng) {
            (Some(noise), Some(rng)) => {
                runner.infer_noisy_into(bank, input, noise, rng, scratch, out)
            }
            _ => runner.infer_into(bank, input, scratch, out),
        }
    }

    /// OS hook: records one page access and applies the §IV-C policy —
    /// under page-miss pressure with idle FF capacity, reserved mats are
    /// released back to normal memory.
    pub fn record_page_access(&mut self, miss: bool) -> MorphDecision {
        self.tracker.record(miss);
        let decision = self
            .policy
            .decide(self.tracker.miss_rate(), self.reservations.utilization());
        if decision == MorphDecision::ReleaseToMemory {
            // Release anything idle; deployed-but-unused mats qualify.
            let releasable = self.reservations.reserved_count();
            self.reservations.release_idle(releasable);
        }
        decision
    }

    /// Fraction of the FF pool currently reserved for computation.
    pub fn ff_utilization(&self) -> f64 {
        self.reservations.utilization()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prime_nn::{Activation, FullyConnected, Layer};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn relu_net(rng: &mut SmallRng) -> Network {
        let mut net = Network::new(vec![
            Layer::Fc(FullyConnected::new(12, 8, Activation::Relu)),
            Layer::Fc(FullyConnected::new(8, 3, Activation::Identity)),
        ])
        .expect("widths match");
        net.init_random(rng);
        net
    }

    #[test]
    fn deploy_and_infer_across_banks() {
        let mut rng = SmallRng::seed_from_u64(99);
        let net = relu_net(&mut rng);
        let mut system = PrimeSystem::new(3, 2, 4, 2048);
        system.deploy(&net, &[0.5; 12]).unwrap();
        let inputs: Vec<Vec<f32>> = (0..6)
            .map(|i| (0..12).map(|j| ((i + j) % 7) as f32 / 7.0).collect())
            .collect();
        let outputs = system.infer_batch(&inputs).unwrap();
        assert_eq!(outputs.len(), 6);
        // All banks hold the same weights: identical inputs landing on
        // different banks produce identical outputs.
        let dup = system
            .infer_batch(&[
                inputs[0].clone(),
                inputs[0].clone(),
                inputs[0].clone(),
                inputs[0].clone(),
            ])
            .unwrap();
        assert_eq!(dup[0], dup[1]);
        assert_eq!(dup[0], dup[3]);
        let stats = system.stats();
        assert_eq!(stats.reconfigurations, 1);
        assert_eq!(stats.inferences, 10);
        assert!(stats.reserved_mats > 0);
    }

    #[test]
    fn infer_before_deploy_fails() {
        let mut system = PrimeSystem::new(2, 1, 2, 512);
        assert!(system.infer_batch(&[vec![0.0; 4]]).is_err());
    }

    #[test]
    fn os_pressure_releases_ff_capacity() {
        let mut rng = SmallRng::seed_from_u64(100);
        let net = relu_net(&mut rng);
        // A large pool keeps deployed utilization under the policy's
        // low-utilization threshold, the §IV-C release precondition.
        let mut system = PrimeSystem::new(2, 2, 16, 2048);
        system.deploy(&net, &[0.5; 12]).unwrap();
        let before = system.ff_utilization();
        assert!(before > 0.0 && before < 0.10, "utilization {before}");
        // Sustained page misses with low FF utilization trigger release.
        let mut released = false;
        for _ in 0..300 {
            if system.record_page_access(true) == MorphDecision::ReleaseToMemory {
                released = true;
            }
        }
        assert!(released, "policy never released under 100% miss rate");
        assert_eq!(system.ff_utilization(), 0.0);
    }

    #[test]
    fn redeployment_counts_reconfigurations_and_wear() {
        let mut rng = SmallRng::seed_from_u64(101);
        let mut system = PrimeSystem::new(2, 2, 4, 2048);
        for _ in 0..3 {
            let net = relu_net(&mut rng);
            system.deploy(&net, &[0.5; 12]).unwrap();
        }
        let stats = system.stats();
        assert_eq!(stats.reconfigurations, 3);
        assert!(stats.wear_imbalance >= 1.0);
    }
}
