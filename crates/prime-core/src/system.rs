//! The full PRIME system: every bank's controller behind one façade,
//! with the OS runtime (morph policy, page-miss tracking, reservations)
//! and reconfiguration wear leveling — the whole §III/§IV machinery in
//! one object.
//!
//! Deploying a network compiles and programs one [`CommandRunner`] copy
//! per bank (bank-level parallelism, §IV-B2); batches round-robin over
//! the copies; and the OS hooks decide at run time whether FF capacity
//! should be released back to memory under page-miss pressure (§IV-C).

use serde::{Deserialize, Serialize};

use prime_mem::{FfReservationMap, MorphDecision, MorphPolicy, PageMissTracker, WearLeveler};
use prime_nn::Network;

use crate::controller::BankController;
use crate::error::PrimeError;
use crate::runner::CommandRunner;

/// Aggregate statistics of a PRIME system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemStats {
    /// NN deployments (reconfigurations) performed.
    pub reconfigurations: u64,
    /// Inferences served.
    pub inferences: u64,
    /// FF mats currently reserved for computation.
    pub reserved_mats: usize,
    /// Wear imbalance across the FF-mat pool (1.0 = even).
    pub wear_imbalance: f64,
}

/// A multi-bank PRIME system with its OS runtime.
///
/// # Examples
///
/// ```no_run
/// use prime_core::PrimeSystem;
/// use prime_nn::{Activation, FullyConnected, Layer, Network};
///
/// let net = Network::new(vec![
///     Layer::Fc(FullyConnected::new(16, 8, Activation::Relu)),
///     Layer::Fc(FullyConnected::new(8, 4, Activation::Identity)),
/// ])?;
/// let mut system = PrimeSystem::new(4, 2, 8, 4096);
/// system.deploy(&net, &[0.5; 16])?;
/// let outputs = system.infer_batch(&[vec![0.2; 16], vec![0.8; 16]])?;
/// assert_eq!(outputs.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PrimeSystem {
    banks: Vec<BankController>,
    runners: Vec<CommandRunner>,
    reservations: FfReservationMap,
    policy: MorphPolicy,
    tracker: PageMissTracker,
    wear: WearLeveler,
    mats_per_bank: usize,
    stats: SystemStats,
}

impl PrimeSystem {
    /// Creates a system of `banks` banks, each with `ff_subarrays` FF
    /// subarrays of `mats_per_subarray` mats and a `buffer_words` Buffer
    /// subarray.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        banks: usize,
        ff_subarrays: usize,
        mats_per_subarray: usize,
        buffer_words: usize,
    ) -> Self {
        assert!(banks > 0 && ff_subarrays > 0 && mats_per_subarray > 0);
        let mats_per_bank = ff_subarrays * mats_per_subarray;
        let total_mats = banks * mats_per_bank;
        PrimeSystem {
            banks: (0..banks)
                .map(|_| {
                    BankController::new(ff_subarrays, mats_per_subarray, buffer_words, 4096)
                })
                .collect(),
            runners: Vec::new(),
            reservations: FfReservationMap::new(total_mats),
            policy: MorphPolicy::prime_default(),
            tracker: PageMissTracker::new(256),
            wear: WearLeveler::new(total_mats + 1, 1).expect("valid pool"),
            mats_per_bank,
            stats: SystemStats {
                reconfigurations: 0,
                inferences: 0,
                reserved_mats: 0,
                wear_imbalance: 1.0,
            },
        }
    }

    /// Number of banks (independent NN copies after deployment).
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SystemStats {
        SystemStats {
            reserved_mats: self.reservations.reserved_count(),
            wear_imbalance: self.wear.imbalance(),
            ..self.stats
        }
    }

    /// Deploys `net` to every bank (one copy per bank): reserves FF mats
    /// with the OS, compiles and programs a command runner per bank, and
    /// charges the wear leveler for the reconfiguration.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError`] if the network does not fit a bank's FF
    /// mats or uses unsupported layers.
    pub fn deploy(&mut self, net: &Network, calibration: &[f32]) -> Result<(), PrimeError> {
        // Compile into every bank first (failure leaves no partial state
        // visible to the OS bookkeeping).
        let mut runners = Vec::with_capacity(self.banks.len());
        for bank in &mut self.banks {
            runners.push(CommandRunner::compile(net, bank, calibration)?);
        }
        let per_bank = runners[0].mats_used();
        self.reservations = FfReservationMap::new(self.banks.len() * self.mats_per_bank);
        self.reservations
            .reserve(per_bank * self.banks.len())
            .map_err(PrimeError::Mem)?;
        self.runners = runners;
        self.wear.on_reconfiguration();
        self.stats.reconfigurations += 1;
        Ok(())
    }

    /// Runs a batch of inferences, round-robin over the banks.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] before any deployment.
    pub fn infer_batch(&mut self, inputs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, PrimeError> {
        if self.runners.is_empty() {
            return Err(PrimeError::MappingMismatch {
                reason: "no network deployed".to_string(),
            });
        }
        let mut outputs = Vec::with_capacity(inputs.len());
        for (i, input) in inputs.iter().enumerate() {
            let bank = i % self.banks.len();
            outputs.push(self.runners[bank].infer(&mut self.banks[bank], input)?);
            self.stats.inferences += 1;
        }
        Ok(outputs)
    }

    /// OS hook: records one page access and applies the §IV-C policy —
    /// under page-miss pressure with idle FF capacity, reserved mats are
    /// released back to normal memory.
    pub fn record_page_access(&mut self, miss: bool) -> MorphDecision {
        self.tracker.record(miss);
        let decision =
            self.policy.decide(self.tracker.miss_rate(), self.reservations.utilization());
        if decision == MorphDecision::ReleaseToMemory {
            // Release anything idle; deployed-but-unused mats qualify.
            let releasable = self.reservations.reserved_count();
            self.reservations.release_idle(releasable);
        }
        decision
    }

    /// Fraction of the FF pool currently reserved for computation.
    pub fn ff_utilization(&self) -> f64 {
        self.reservations.utilization()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prime_nn::{Activation, FullyConnected, Layer};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn relu_net(rng: &mut SmallRng) -> Network {
        let mut net = Network::new(vec![
            Layer::Fc(FullyConnected::new(12, 8, Activation::Relu)),
            Layer::Fc(FullyConnected::new(8, 3, Activation::Identity)),
        ])
        .expect("widths match");
        net.init_random(rng);
        net
    }

    #[test]
    fn deploy_and_infer_across_banks() {
        let mut rng = SmallRng::seed_from_u64(99);
        let net = relu_net(&mut rng);
        let mut system = PrimeSystem::new(3, 2, 4, 2048);
        system.deploy(&net, &vec![0.5; 12]).unwrap();
        let inputs: Vec<Vec<f32>> =
            (0..6).map(|i| (0..12).map(|j| ((i + j) % 7) as f32 / 7.0).collect()).collect();
        let outputs = system.infer_batch(&inputs).unwrap();
        assert_eq!(outputs.len(), 6);
        // All banks hold the same weights: identical inputs landing on
        // different banks produce identical outputs.
        let dup = system.infer_batch(&[inputs[0].clone(), inputs[0].clone(), inputs[0].clone(), inputs[0].clone()]).unwrap();
        assert_eq!(dup[0], dup[1]);
        assert_eq!(dup[0], dup[3]);
        let stats = system.stats();
        assert_eq!(stats.reconfigurations, 1);
        assert_eq!(stats.inferences, 10);
        assert!(stats.reserved_mats > 0);
    }

    #[test]
    fn infer_before_deploy_fails() {
        let mut system = PrimeSystem::new(2, 1, 2, 512);
        assert!(system.infer_batch(&[vec![0.0; 4]]).is_err());
    }

    #[test]
    fn os_pressure_releases_ff_capacity() {
        let mut rng = SmallRng::seed_from_u64(100);
        let net = relu_net(&mut rng);
        // A large pool keeps deployed utilization under the policy's
        // low-utilization threshold, the §IV-C release precondition.
        let mut system = PrimeSystem::new(2, 2, 16, 2048);
        system.deploy(&net, &vec![0.5; 12]).unwrap();
        let before = system.ff_utilization();
        assert!(before > 0.0 && before < 0.10, "utilization {before}");
        // Sustained page misses with low FF utilization trigger release.
        let mut released = false;
        for _ in 0..300 {
            if system.record_page_access(true) == MorphDecision::ReleaseToMemory {
                released = true;
            }
        }
        assert!(released, "policy never released under 100% miss rate");
        assert_eq!(system.ff_utilization(), 0.0);
    }

    #[test]
    fn redeployment_counts_reconfigurations_and_wear() {
        let mut rng = SmallRng::seed_from_u64(101);
        let mut system = PrimeSystem::new(2, 2, 4, 2048);
        for _ in 0..3 {
            let net = relu_net(&mut rng);
            system.deploy(&net, &vec![0.5; 12]).unwrap();
        }
        let stats = system.stats();
        assert_eq!(stats.reconfigurations, 3);
        assert!(stats.wear_imbalance >= 1.0);
    }
}
