//! The full PRIME system: every bank's controller behind one façade,
//! with the OS runtime (morph policy, page-miss tracking, reservations)
//! and reconfiguration wear leveling — the whole §III/§IV machinery in
//! one object.
//!
//! Deployment runs the network through the mapping compiler
//! ([`map_network`]) and treats the resulting [`Mapping`'s pipeline
//! stages](prime_compiler::NetworkMapping) as the single source of truth
//! for *where* layers run: small networks place one [`CommandRunner`]
//! copy per bank (bank-level parallelism, §IV-B2), while large-scale
//! networks split into inter-bank pipeline stages (§IV-B) whose
//! activations move between banks through the runner's stage transfer
//! protocol ([`CommandRunner::stage_transfer_out`] /
//! [`stage_transfer_in`](CommandRunner::stage_transfer_in)).
//! Batches round-robin over the copies; the parallel engine overlaps
//! pipeline stages across the batch (image *i+1* enters stage 0 while
//! image *i* runs in stage 1). The OS hooks decide at run time whether
//! FF capacity should be released back to memory under page-miss
//! pressure (§IV-C).

use std::collections::HashSet;
use std::sync::{mpsc, Arc};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use prime_compiler::{map_network, CompileOptions, HwTarget, MappingStrategy, Objective};
use prime_device::NoiseModel;
use prime_mem::{FfReservationMap, MatAddr, MorphDecision, MorphPolicy, PageMissTracker, WearLeveler};
use prime_nn::Network;

use crate::controller::BankController;
use crate::error::PrimeError;
use crate::runner::{CommandRunner, InferScratch};
use crate::search::{search_mapping, MappingCostModel, MappingSearch};

/// Per-copy outcome of a batched run: the (input index, output) pairs the
/// copy completed, or the first (input index, error) it hit.
type CopyBatch = Result<Vec<(usize, Vec<f32>)>, (usize, PrimeError)>;

/// (input index, activation codes) forwarded between pipeline stages.
type StagePacket = (usize, Vec<i64>);

/// A stage thread's channel ends: receiver from the previous stage and
/// sender to the next (absent at the pipe's boundaries).
type StageLink = (Option<mpsc::Receiver<StagePacket>>, Option<mpsc::Sender<StagePacket>>);

/// Aggregate statistics of a PRIME system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemStats {
    /// NN deployments (reconfigurations) performed.
    pub reconfigurations: u64,
    /// Inferences served.
    pub inferences: u64,
    /// FF mats currently reserved for computation.
    pub reserved_mats: usize,
    /// Wear imbalance across the FF-mat pool (1.0 = even).
    pub wear_imbalance: f64,
}

/// Cost report of the most recent [`PrimeSystem::deploy_with`]: how long
/// programming took and how much crossbar state the deployment keeps
/// resident, with the shared-tile accounting that distinguishes the two
/// [`MappingStrategy`] layouts. Auto-selected deployments
/// ([`PrimeSystem::deploy_auto`]) additionally carry the full
/// [`MappingSearch`] report — the chosen candidate and every rejected
/// alternative.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeployStats {
    /// Deploy wall-time (map + verify + program + calibrate + replicate),
    /// milliseconds.
    pub wall_ms: f64,
    /// NN copies placed across the memory.
    pub copies: usize,
    /// The strategy the deployment was compiled under (per-layer
    /// fallbacks may still pick replicate-dense; see `aliased_placements`).
    pub strategy: MappingStrategy,
    /// Distinct programmed crossbar pairs resident in the memory.
    pub unique_tiles: usize,
    /// Mat placements that alias a shared tile instead of owning bytes.
    pub aliased_placements: usize,
    /// Bank state resident after deployment, counting each shared tile
    /// once (bytes).
    pub resident_bytes: usize,
    /// What the same placements would hold if every one owned its bytes
    /// (the replicate-dense footprint of this deployment), for the
    /// dedup ratio `resident_bytes / dense_bytes`.
    pub dense_bytes: usize,
    /// The mapping-search report when the deployment auto-selected its
    /// mapping ([`PrimeSystem::deploy_auto`]): the chosen candidate and
    /// every rejected alternative with scores and pruning reasons.
    /// `None` for fixed-strategy deployments.
    pub search: Option<MappingSearch>,
}

/// A multi-bank PRIME system with its OS runtime.
///
/// # Examples
///
/// ```no_run
/// use prime_core::PrimeSystem;
/// use prime_nn::{Activation, FullyConnected, Layer, Network};
///
/// let net = Network::new(vec![
///     Layer::Fc(FullyConnected::new(16, 8, Activation::Relu)),
///     Layer::Fc(FullyConnected::new(8, 4, Activation::Identity)),
/// ])?;
/// let mut system = PrimeSystem::new(4, 2, 8, 4096);
/// system.deploy(&net, &[0.5; 16])?;
/// let outputs = system.infer_batch(&[vec![0.2; 16], vec![0.8; 16]])?;
/// assert_eq!(outputs.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PrimeSystem {
    banks: Vec<BankController>,
    /// One compiled runner per deployed NN copy. A copy occupies the
    /// consecutive bank group `[c * banks_per_copy, (c+1) *
    /// banks_per_copy)`; within the group the runner's stage list says
    /// which bank hosts which layers.
    runners: Vec<CommandRunner>,
    /// Banks one copy spans (1 for small/medium-scale networks, the
    /// pipeline depth for large-scale ones).
    banks_per_copy: usize,
    /// One reusable inference scratch per bank (paired with its thread in
    /// parallel execution; buffers only grow, so steady-state batches
    /// allocate nothing inside the compute kernels).
    scratches: Vec<InferScratch>,
    /// Reusable traveling activation vector for the serial engine.
    carry: Vec<i64>,
    /// Drive the copies concurrently (one thread per stage bank).
    /// Bit-identical to serial execution; see
    /// [`set_parallel`](Self::set_parallel).
    parallel: bool,
    reservations: FfReservationMap,
    policy: MorphPolicy,
    tracker: PageMissTracker,
    wear: WearLeveler,
    mats_per_bank: usize,
    stats: SystemStats,
    /// Cost report of the most recent deployment (`None` before any).
    deploy_stats: Option<DeployStats>,
}

impl PrimeSystem {
    /// Creates a system of `banks` banks, each with `ff_subarrays` FF
    /// subarrays of `mats_per_subarray` mats and a `buffer_words` Buffer
    /// subarray.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        banks: usize,
        ff_subarrays: usize,
        mats_per_subarray: usize,
        buffer_words: usize,
    ) -> Self {
        assert!(banks > 0 && ff_subarrays > 0 && mats_per_subarray > 0);
        let mats_per_bank = ff_subarrays * mats_per_subarray;
        let total_mats = banks * mats_per_bank;
        PrimeSystem {
            banks: (0..banks)
                .map(|_| BankController::new(ff_subarrays, mats_per_subarray, buffer_words, 4096))
                .collect(),
            runners: Vec::new(),
            banks_per_copy: 1,
            scratches: (0..banks).map(|_| InferScratch::new()).collect(),
            carry: Vec::new(),
            parallel: true,
            reservations: FfReservationMap::new(total_mats),
            policy: MorphPolicy::prime_default(),
            tracker: PageMissTracker::new(256),
            wear: WearLeveler::for_logical_mats(total_mats),
            mats_per_bank,
            deploy_stats: None,
            stats: SystemStats {
                reconfigurations: 0,
                inferences: 0,
                reserved_mats: 0,
                wear_imbalance: 1.0,
            },
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Independent NN copies after deployment (0 before any deploy).
    pub fn copies(&self) -> usize {
        self.runners.len()
    }

    /// Banks one deployed copy spans: 1 for networks that fit a bank,
    /// the inter-bank pipeline depth for large-scale ones (`None` before
    /// any deploy).
    pub fn banks_per_copy(&self) -> Option<usize> {
        (!self.runners.is_empty()).then_some(self.banks_per_copy)
    }

    /// Pipeline stages the deployed plan executes per inference (`None`
    /// before any deploy). This is the stage count the analytical
    /// simulator's pipeline latency term must agree with.
    pub fn deployed_stages(&self) -> Option<usize> {
        self.runners.first().map(CommandRunner::stage_count)
    }

    /// The compiler target equivalent to this system's geometry.
    fn hw_target(&self) -> HwTarget {
        let mat = self.banks[0].mat(MatAddr { subarray: 0, mat: 0 });
        HwTarget {
            mat_rows: mat.max_rows(),
            mat_cols: mat.max_cols(),
            mats_per_ff_subarray: self.banks[0].mats_per_subarray(),
            ff_subarrays_per_bank: self.banks[0].ff_subarrays(),
            banks: self.banks.len(),
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SystemStats {
        SystemStats {
            reserved_mats: self.reservations.reserved_count(),
            wear_imbalance: self.wear.imbalance(),
            ..self.stats
        }
    }

    /// Deploys `net`: maps it with the compiler to decide stage
    /// placement, compiles and programs one [`CommandRunner`] copy per
    /// consecutive bank group, reserves the FF mats with the OS, and
    /// charges the wear leveler for the reconfiguration.
    ///
    /// Networks that fit one bank deploy one copy per bank (the §IV-B2
    /// bank-parallel case, `Mapping::pipeline` empty). Large-scale
    /// networks follow `Mapping::pipeline`: each copy spans
    /// `banks_per_copy` consecutive banks, one stage per bank (§IV-B).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::Rejected`] carrying the verifier diagnostics
    /// if the mapping breaks a deployment invariant (the network does not
    /// fit the memory's FF mats, a pipeline stage is illegal, the
    /// precision budgets overflow, ...), or another [`PrimeError`] for
    /// unsupported layers.
    pub fn deploy(&mut self, net: &Network, calibration: &[f32]) -> Result<(), PrimeError> {
        self.deploy_with(net, calibration, MappingStrategy::ReplicateDense)
    }

    /// [`deploy`](Self::deploy) with an explicit weight-layout
    /// [`MappingStrategy`]. Under [`MappingStrategy::SharedKernel`] each
    /// unique weight tile is programmed (and calibrated) once and every
    /// other placement aliases it, so deploy wall-time and resident bank
    /// state scale with unique weights instead of placements; layers the
    /// compiler scores as having no reuse fall back to replicate-dense
    /// per layer. Inference outputs are bit-identical under both
    /// strategies. The cost report lands in
    /// [`deploy_stats`](Self::deploy_stats).
    ///
    /// # Errors
    ///
    /// As [`deploy`](Self::deploy).
    pub fn deploy_with(
        &mut self,
        net: &Network,
        calibration: &[f32],
        strategy: MappingStrategy,
    ) -> Result<(), PrimeError> {
        let options = CompileOptions { replicate: false, ..CompileOptions::fixed(strategy) };
        self.deploy_compiled(net, calibration, options, None)
    }

    /// [`deploy`](Self::deploy) with cost-model-driven mapping search:
    /// enumerates (strategy × replication factor × pipeline split)
    /// candidates, keeps those the Pass 1–3 verifiers accept, scores
    /// each with `model`, and deploys the argmin under `objective`.
    /// Illegal candidates are pruned, not errors. The full search report
    /// — chosen candidate plus rejected alternatives — lands in
    /// [`DeployStats::search`].
    ///
    /// [`Objective::Fixed`] skips the search entirely and behaves
    /// exactly like [`deploy_with`](Self::deploy_with) — including
    /// leaving `DeployStats::search` empty — so the pre-search path
    /// stays bit-compatible.
    ///
    /// # Errors
    ///
    /// As [`deploy`](Self::deploy); additionally returns
    /// [`PrimeError::MappingMismatch`] when every candidate was pruned.
    pub fn deploy_auto(
        &mut self,
        net: &Network,
        calibration: &[f32],
        objective: Objective,
        model: &dyn MappingCostModel,
    ) -> Result<(), PrimeError> {
        if let Objective::Fixed(strategy) = objective {
            return self.deploy_with(net, calibration, strategy);
        }
        // Capability check first, as in the fixed path: a network the
        // runner cannot execute must fail identically under search.
        let diagnostics = CommandRunner::capability_diagnostics(net);
        if !diagnostics.is_empty() {
            return Err(PrimeError::Rejected { diagnostics });
        }
        let spec = net.to_spec("deployed").map_err(PrimeError::Nn)?;
        let target = self.analysis_target();
        let search = search_mapping(&spec, &target, objective, model);
        let Some(chosen) = search.chosen() else {
            return Err(PrimeError::MappingMismatch {
                reason: format!(
                    "mapping search (objective={}) pruned every candidate:\n{}",
                    objective.name(),
                    search.describe()
                ),
            });
        };
        let options = chosen.options;
        self.deploy_compiled(net, calibration, options, Some(search))
    }

    /// The `prime-analyze` target equivalent to this system: the
    /// compiler geometry plus the physical precision budgets the static
    /// verifiers check against.
    fn analysis_target(&self) -> prime_analyze::Target {
        let scheme = self.banks[0].mat(MatAddr { subarray: 0, mat: 0 }).scheme();
        prime_analyze::Target {
            scheme,
            buffer_words: self.banks[0].buffer().capacity(),
            // The mats program MLC cells and encode input signals exactly
            // per the scheme, so the physical budgets equal its halves.
            cell_bits: scheme.weight_half_bits(),
            input_signal_bits: scheme.input_half_bits(),
            phys_mat_cols: 2 * self.banks[0].mat(MatAddr { subarray: 0, mat: 0 }).max_cols(),
            tile_ref_bits: 16,
            hw: self.hw_target(),
        }
    }

    /// The shared deployment path: compile `net` under `options`, verify
    /// (Pass 1 before any bank state changes, Pass 3 after replication
    /// but before install), program, replicate, and account.
    fn deploy_compiled(
        &mut self,
        net: &Network,
        calibration: &[f32],
        options: CompileOptions,
        search: Option<MappingSearch>,
    ) -> Result<(), PrimeError> {
        let started = Instant::now();
        // Runner capability check first (P017): a layer the command
        // runner cannot execute must reject deployment up front, never
        // silently deploy and fail at inference time.
        let diagnostics = CommandRunner::capability_diagnostics(net);
        if !diagnostics.is_empty() {
            return Err(PrimeError::Rejected { diagnostics });
        }
        let spec = net.to_spec("deployed").map_err(PrimeError::Nn)?;
        let target = self.analysis_target();
        let mapping = map_network(&spec, &target.hw, options)
            .map_err(|e| PrimeError::MappingMismatch { reason: e.to_string() })?;
        // Static verification (prime-analyze pass 1): refuse before any
        // bank state changes if the mapping breaks a deployment
        // invariant. This replaces the ad-hoc capacity/pipeline checks
        // that used to live here and in the runner.
        let diagnostics: Vec<_> = prime_analyze::analyze(&spec, &target, &mapping)
            .into_iter()
            .filter(|d| d.severity == prime_analyze::Severity::Error)
            .collect();
        if !diagnostics.is_empty() {
            return Err(PrimeError::Rejected { diagnostics });
        }
        // Compile every copy first (failure leaves no partial state
        // visible to the OS bookkeeping). The bank group is sized by the
        // stage list itself, not `mapping.banks_per_copy`: greedy packing
        // can fragment and span more banks than the capacity bound. The
        // verifier has already bounded every stage span to the memory, so
        // at least one copy fits.
        let bpc = mapping.pipeline.last().map_or(1, |s| {
            s.bank + s.mats.div_ceil(self.mats_per_bank).max(1)
        });
        // Copy-capped candidates deliberately place fewer copies than
        // the memory could hold, leaving the other banks as plain
        // memory; uncapped mappings always allow at least banks/bpc.
        let copies = (self.banks.len() / bpc).min(mapping.copies_across_memory).max(1);
        // Compile (quantize + program + calibrate) copy 0 only, then
        // replicate the programmed plan onto every other bank group:
        // stage banks are group-relative and programming is
        // deterministic, so a replicated copy is byte-identical to a
        // recompiled one — at the cost of a mat clone per tile instead
        // of a full program/calibrate pass. Shared-kernel layers alias
        // copy 0's tiles outright, so their replicas add no bank state.
        let layer_strategies: Vec<MappingStrategy> =
            mapping.layers.iter().map(|l| l.strategy).collect();
        let (first_group, rest) = self.banks.split_at_mut(bpc);
        let first =
            CommandRunner::compile_pipeline(net, first_group, &mapping.pipeline, calibration)?;
        let mut runners = Vec::with_capacity(copies);
        for c in 1..copies {
            let group = &mut rest[(c - 1) * bpc..c * bpc];
            runners.push(first.replicate_onto(first_group, group, &layer_strategies)?);
        }
        runners.insert(0, first);
        // Static verification pass 3: abstractly interpret the lowered
        // command program of copy 0 — FF-buffer region dataflow, §III-D
        // interval precision, shared-tile aliasing, stage-graph deadlock
        // freedom. Runs after replication so the alias check sees the
        // real post-deploy tile sharing, but before the runners are
        // installed: a rejected plan leaves the system undeployed.
        let first_group = &self.banks[..bpc];
        let plan = runners[0].program_plan(first_group);
        let diagnostics: Vec<_> =
            prime_analyze::analyze_program(&spec, &target, &mapping, &plan)
                .into_iter()
                .filter(|d| d.severity == prime_analyze::Severity::Error)
                .collect();
        if !diagnostics.is_empty() {
            return Err(PrimeError::Rejected { diagnostics });
        }
        let total: usize = runners.iter().map(CommandRunner::mats_used).sum();
        self.reservations = FfReservationMap::new(self.banks.len() * self.mats_per_bank);
        self.reservations.reserve(total).map_err(PrimeError::Mem)?;
        self.runners = runners;
        self.banks_per_copy = bpc;
        self.wear.on_reconfiguration();
        self.stats.reconfigurations += 1;
        let (unique_tiles, aliased_placements, resident_bytes, dense_bytes) =
            self.tile_accounting();
        self.deploy_stats = Some(DeployStats {
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            copies,
            strategy: options.strategy(),
            unique_tiles,
            aliased_placements,
            resident_bytes,
            dense_bytes,
            search,
        });
        Ok(())
    }

    /// Cost report of the most recent deployment (`None` before any).
    pub fn deploy_stats(&self) -> Option<&DeployStats> {
        self.deploy_stats.as_ref()
    }

    /// Crossbar weight state currently resident across every bank,
    /// counting each shared tile once (bytes). Vacant mats — never
    /// written since construction — cost nothing, so this scales with
    /// unique programmed weights, not with memory capacity or placement
    /// count.
    pub fn resident_state_bytes(&self) -> usize {
        self.tile_accounting().2
    }

    /// Walks every mat in every bank and returns `(unique_tiles,
    /// aliased_placements, resident_bytes, dense_bytes)`: distinct
    /// programmed pairs, placements aliasing a shared pair, bytes with
    /// shared pairs deduplicated (by tile identity), and bytes as if
    /// every placement owned its codes.
    fn tile_accounting(&self) -> (usize, usize, usize, usize) {
        let mut seen: HashSet<*const prime_device::PairedCrossbar> = HashSet::new();
        let (mut unique, mut aliased, mut resident, mut dense) = (0usize, 0usize, 0usize, 0usize);
        for bank in &self.banks {
            for subarray in 0..bank.ff_subarrays() {
                for mat in 0..bank.mats_per_subarray() {
                    let mat = bank.mat(MatAddr { subarray, mat });
                    let bytes = mat.tile_state_bytes();
                    dense += bytes;
                    if let Some(tile) = mat.shared_tile() {
                        aliased += 1;
                        if seen.insert(Arc::as_ptr(tile)) {
                            unique += 1;
                            resident += bytes;
                        }
                    } else if bytes > 0 {
                        unique += 1;
                        resident += bytes;
                    }
                }
            }
        }
        (unique, aliased, resident, dense)
    }

    /// Whether batches drive the copies concurrently (default: `true`).
    pub fn parallel(&self) -> bool {
        self.parallel
    }

    /// Selects the execution engine for [`infer_batch`](Self::infer_batch)
    /// and [`infer_batch_noisy`](Self::infer_batch_noisy): serial
    /// round-robin, or one thread per stage bank (paper §V bank-level
    /// parallelism, plus inter-bank stage overlap for pipelined plans).
    /// Input `i` runs on copy `i % copies`, and every pipeline stage uses
    /// its own bank's scratch and RNG stream in *both* modes, so outputs
    /// are bit-identical — the knob trades wall-clock time only.
    pub fn set_parallel(&mut self, parallel: bool) {
        self.parallel = parallel;
    }

    /// Runs a batch of inferences, round-robin over the deployed copies —
    /// serially or with one thread per stage bank, per
    /// [`set_parallel`](Self::set_parallel). For pipelined plans the
    /// parallel engine overlaps stages across the batch: input *i+1*
    /// enters stage 0 while input *i* runs in stage 1. Outputs are
    /// returned in input order and are identical in both modes.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] before any deployment.
    pub fn infer_batch(&mut self, inputs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, PrimeError> {
        self.infer_batch_impl(inputs, None)
    }

    /// Noisy-hardware variant of [`infer_batch`](Self::infer_batch):
    /// every tile evaluates through the analog domain with read noise.
    /// Bank `b` draws from its own RNG stream seeded
    /// `seed.wrapping_add(b)`; since input `i` always runs on copy
    /// `i % copies` and each pipeline stage owns one bank, the serial and
    /// overlapped engines consume identical per-bank streams and stay
    /// bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] before any deployment.
    pub fn infer_batch_noisy(
        &mut self,
        inputs: &[Vec<f32>],
        noise: &NoiseModel,
        seed: u64,
    ) -> Result<Vec<Vec<f32>>, PrimeError> {
        self.infer_batch_impl(inputs, Some((noise, seed)))
    }

    fn infer_batch_impl(
        &mut self,
        inputs: &[Vec<f32>],
        analog: Option<(&NoiseModel, u64)>,
    ) -> Result<Vec<Vec<f32>>, PrimeError> {
        if self.runners.is_empty() {
            return Err(PrimeError::MappingMismatch {
                reason: "no network deployed".to_string(),
            });
        }
        let bpc = self.banks_per_copy;
        let copies = self.runners.len();
        let stages = self.runners[0].stage_count();
        // Per-bank RNG streams for the noisy path (None slots: digital).
        let mut rngs: Vec<Option<SmallRng>> = match analog {
            Some((_, seed)) => (0..self.banks.len())
                .map(|b| Some(SmallRng::seed_from_u64(seed.wrapping_add(b as u64))))
                .collect(),
            None => (0..self.banks.len()).map(|_| None).collect(),
        };
        let noise = analog.map(|(m, _)| m);
        if !self.parallel || inputs.len() <= 1 || (copies == 1 && stages == 1) {
            let mut outputs = Vec::with_capacity(inputs.len());
            for (i, input) in inputs.iter().enumerate() {
                let c = i % copies;
                let span = c * bpc..(c + 1) * bpc;
                let mut out = Vec::new();
                Self::infer_one_pipelined(
                    &self.runners[c],
                    &mut self.banks[span.clone()],
                    &mut self.scratches[span.clone()],
                    noise,
                    &mut rngs[span],
                    input,
                    &mut self.carry,
                    &mut out,
                )?;
                outputs.push(out);
                self.stats.inferences += 1;
            }
            return Ok(outputs);
        }
        // One thread per stage bank. Each copy owns a consecutive bank
        // group and processes exactly the inputs the serial round-robin
        // would hand it (i % copies == c), in order; within a copy the
        // stage threads form a pipe connected by channels, so input i+1
        // occupies stage 0 while input i runs in stage 1. Every bank's
        // controller, scratch, and RNG stream stay thread-private and see
        // the same per-bank work sequence as the serial engine, so
        // outputs and RNG draws match it bit for bit.
        let runners = &self.runners;
        let results: Vec<CopyBatch> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (c, ((banks, scratches), rngs)) in self
                .banks
                .chunks_mut(bpc)
                .zip(self.scratches.chunks_mut(bpc))
                .zip(rngs.chunks_mut(bpc))
                .take(copies)
                .enumerate()
            {
                let runner = &runners[c];
                let s_count = runner.stage_count();
                if s_count == 1 {
                    // Single-stage copy: one thread runs whole inferences,
                    // exactly the pre-pipeline bank-parallel engine.
                    let (bank, scratch, rng) =
                        (&mut banks[0], &mut scratches[0], &mut rngs[0]);
                    handles.push(scope.spawn(move || {
                        let mut done = Vec::new();
                        for (i, input) in inputs.iter().enumerate().skip(c).step_by(copies) {
                            let mut out = Vec::new();
                            match (noise, rng.as_mut()) {
                                (Some(noise), Some(rng)) => runner
                                    .infer_noisy_into(bank, input, noise, rng, scratch, &mut out),
                                _ => runner.infer_into(bank, input, scratch, &mut out),
                            }
                            .map_err(|e| (i, e))?;
                            done.push((i, out));
                        }
                        Ok(done)
                    }));
                    continue;
                }
                // Forward channels between consecutive stages carry
                // (input index, activation codes); a recycle channel
                // returns spent code vectors from the final stage to
                // stage 0 so the steady state allocates nothing.
                let mut links: Vec<StageLink> = Vec::with_capacity(s_count);
                let mut prev_rx = None;
                for _ in 1..s_count {
                    let (tx, rx) = mpsc::channel();
                    links.push((prev_rx.replace(rx), Some(tx)));
                }
                links.push((prev_rx.take(), None));
                let (recycle_tx, recycle_rx) = mpsc::channel::<Vec<i64>>();
                let mut recycle_tx = Some(recycle_tx);
                let mut recycle_rx = Some(recycle_rx);
                // Hand each stage its bank's controller, scratch, and RNG
                // stream. Stage banks are distinct and in range (verified
                // at deploy), so every resource reaches at most one stage.
                let mut stage_res: Vec<
                    Option<(&mut BankController, &mut InferScratch, &mut Option<SmallRng>)>,
                > = (0..s_count).map(|_| None).collect();
                for (b, ((bank, scratch), rng)) in banks
                    .iter_mut()
                    .zip(scratches.iter_mut())
                    .zip(rngs.iter_mut())
                    .enumerate()
                {
                    if let Some(s) = (0..s_count).find(|&s| runner.stage_bank(s) == b) {
                        stage_res[s] = Some((bank, scratch, rng));
                    }
                }
                for s in 0..s_count {
                    let Some((bank, scratch, rng)) = stage_res[s].take() else {
                        continue;
                    };
                    let (rx, tx) = std::mem::take(&mut links[s]);
                    if s == 0 {
                        // First stage: no predecessor, feeds a successor.
                        let (Some(tx), Some(recycle_rx)) = (tx, recycle_rx.take()) else {
                            continue;
                        };
                        handles.push(scope.spawn(move || {
                            // Bound the in-flight vectors: allocate a few,
                            // then block on recycling — the backpressure
                            // keeps steady-state allocation at zero. The
                            // credit count is the same constant the Pass-3
                            // stage-graph check certifies nonzero.
                            let mut credits = prime_compiler::pipeline_credits(s_count);
                            for (i, input) in inputs.iter().enumerate().skip(c).step_by(copies) {
                                let mut codes = match recycle_rx.try_recv() {
                                    Ok(v) => v,
                                    Err(_) if credits > 0 => {
                                        credits -= 1;
                                        Vec::new()
                                    }
                                    Err(_) => match recycle_rx.recv() {
                                        Ok(v) => v,
                                        // The pipe died downstream; the
                                        // failing stage reports the error.
                                        Err(_) => break,
                                    },
                                };
                                if let Err(e) = runner.quantize_input(input, &mut codes) {
                                    return Err((i, e));
                                }
                                let run = match (noise, rng.as_mut()) {
                                    (Some(noise), Some(rng)) => runner.run_stage_noisy(
                                        0, &mut *bank, noise, rng, &mut *scratch, &mut codes, None,
                                    ),
                                    _ => runner
                                        .run_stage(0, &mut *bank, &mut *scratch, &mut codes, None),
                                };
                                if let Err(e) = run {
                                    return Err((i, e));
                                }
                                if let Err(e) = runner.stage_transfer_out(0, bank, &mut codes) {
                                    return Err((i, e));
                                }
                                if tx.send((i, codes)).is_err() {
                                    break;
                                }
                            }
                            Ok(Vec::new())
                        }));
                    } else if s < s_count - 1 {
                        // Interior stage: a predecessor and a successor.
                        let (Some(rx), Some(tx)) = (rx, tx) else {
                            continue;
                        };
                        handles.push(scope.spawn(move || {
                            for (i, mut codes) in rx {
                                if let Err(e) = runner.stage_transfer_in(s, bank, &codes) {
                                    return Err((i, e));
                                }
                                let run = match (noise, rng.as_mut()) {
                                    (Some(noise), Some(rng)) => runner.run_stage_noisy(
                                        s, &mut *bank, noise, rng, &mut *scratch, &mut codes, None,
                                    ),
                                    _ => runner
                                        .run_stage(s, &mut *bank, &mut *scratch, &mut codes, None),
                                };
                                if let Err(e) = run {
                                    return Err((i, e));
                                }
                                if let Err(e) = runner.stage_transfer_out(s, bank, &mut codes) {
                                    return Err((i, e));
                                }
                                if tx.send((i, codes)).is_err() {
                                    break;
                                }
                            }
                            Ok(Vec::new())
                        }));
                    } else {
                        // Final stage: recycles spent vectors to stage 0.
                        let (Some(rx), Some(recycle_tx)) = (rx, recycle_tx.take()) else {
                            continue;
                        };
                        handles.push(scope.spawn(move || {
                            let mut done = Vec::new();
                            for (i, mut codes) in rx {
                                if let Err(e) = runner.stage_transfer_in(s, bank, &codes) {
                                    return Err((i, e));
                                }
                                let mut out = Vec::new();
                                let run = match (noise, rng.as_mut()) {
                                    (Some(noise), Some(rng)) => runner.run_stage_noisy(
                                        s,
                                        &mut *bank,
                                        noise,
                                        rng,
                                        &mut *scratch,
                                        &mut codes,
                                        Some(&mut out),
                                    ),
                                    _ => runner.run_stage(
                                        s,
                                        &mut *bank,
                                        &mut *scratch,
                                        &mut codes,
                                        Some(&mut out),
                                    ),
                                };
                                if let Err(e) = run {
                                    return Err((i, e));
                                }
                                done.push((i, out));
                                // Stage 0 may already have exited.
                                let _ = recycle_tx.send(codes);
                            }
                            Ok(done)
                        }));
                    }
                }
            }
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err((
                            0,
                            PrimeError::Internal {
                                reason: "a pipeline stage thread panicked".to_string(),
                            },
                        ))
                    })
                })
                .collect()
        });
        let mut outputs: Vec<Option<Vec<f32>>> = (0..inputs.len()).map(|_| None).collect();
        let mut first_err: Option<(usize, PrimeError)> = None;
        for result in results {
            match result {
                Ok(done) => {
                    for (i, out) in done {
                        outputs[i] = Some(out);
                    }
                }
                Err((i, e)) => {
                    if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
        if let Some((i, e)) = first_err {
            // Match the serial engine's accounting: every input before
            // the first failing index completed.
            self.stats.inferences += i as u64;
            return Err(e);
        }
        let outputs = outputs
            .into_iter()
            .enumerate()
            .map(|(i, o)| {
                o.ok_or_else(|| PrimeError::Internal {
                    reason: format!("no pipeline stage produced an output for input {i}"),
                })
            })
            .collect::<Result<Vec<_>, PrimeError>>()?;
        self.stats.inferences += inputs.len() as u64;
        Ok(outputs)
    }

    /// One inference through one copy's bank group, stage by stage:
    /// quantize, run each stage on its bank, and move the activation
    /// codes between banks at every stage boundary
    /// ([`stage_transfer_out`](CommandRunner::stage_transfer_out) on the
    /// upstream bank, [`stage_transfer_in`](CommandRunner::stage_transfer_in)
    /// on the downstream one — the same buffer operations the overlapped
    /// engine performs, so both engines account identical traffic; FC
    /// boundaries move the full buffer-resident vector, conv/pool
    /// boundaries stream their Mem-resident feature maps in bursts).
    /// Digital or analog per `noise`/`rngs`.
    #[allow(clippy::too_many_arguments)]
    fn infer_one_pipelined(
        runner: &CommandRunner,
        banks: &mut [BankController],
        scratches: &mut [InferScratch],
        noise: Option<&NoiseModel>,
        rngs: &mut [Option<SmallRng>],
        input: &[f32],
        carry: &mut Vec<i64>,
        out: &mut Vec<f32>,
    ) -> Result<(), PrimeError> {
        runner.quantize_input(input, carry)?;
        let last = runner.stage_count() - 1;
        for s in 0..=last {
            let b = runner.stage_bank(s);
            if s > 0 {
                let prev = runner.stage_bank(s - 1);
                let (head, tail) = banks.split_at_mut(b);
                runner.stage_transfer_out(s - 1, &mut head[prev], carry)?;
                runner.stage_transfer_in(s, &mut tail[0], carry)?;
            }
            let out_opt = (s == last).then_some(&mut *out);
            match (noise, rngs[b].as_mut()) {
                (Some(noise), Some(rng)) => runner.run_stage_noisy(
                    s,
                    &mut banks[b],
                    noise,
                    rng,
                    &mut scratches[b],
                    carry,
                    out_opt,
                )?,
                _ => runner.run_stage(s, &mut banks[b], &mut scratches[b], carry, out_opt)?,
            }
        }
        Ok(())
    }

    /// OS hook: records one page access and applies the §IV-C policy —
    /// under page-miss pressure with idle FF capacity, reserved mats are
    /// released back to normal memory.
    pub fn record_page_access(&mut self, miss: bool) -> MorphDecision {
        self.tracker.record(miss);
        let decision = self
            .policy
            .decide(self.tracker.miss_rate(), self.reservations.utilization());
        if decision == MorphDecision::ReleaseToMemory {
            // Release anything idle; deployed-but-unused mats qualify.
            let releasable = self.reservations.reserved_count();
            self.reservations.release_idle(releasable);
        }
        decision
    }

    /// Fraction of the FF pool currently reserved for computation.
    pub fn ff_utilization(&self) -> f64 {
        self.reservations.utilization()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prime_nn::{Activation, FullyConnected, Layer};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn relu_net(rng: &mut SmallRng) -> Network {
        let mut net = Network::new(vec![
            Layer::Fc(FullyConnected::new(12, 8, Activation::Relu)),
            Layer::Fc(FullyConnected::new(8, 3, Activation::Identity)),
        ])
        .expect("widths match");
        net.init_random(rng);
        net
    }

    /// A net whose layers each fit one 2x4-mat bank but not together:
    /// the compiler must split it into a two-bank pipeline.
    fn pipelined_net(rng: &mut SmallRng) -> Network {
        let mut net = Network::new(vec![
            Layer::Fc(FullyConnected::new(24, 16, Activation::Relu)),
            Layer::Fc(FullyConnected::new(16, 6, Activation::Identity)),
        ])
        .expect("widths match");
        net.init_random(rng);
        net
    }

    #[test]
    fn deploy_and_infer_across_banks() {
        let mut rng = SmallRng::seed_from_u64(99);
        let net = relu_net(&mut rng);
        let mut system = PrimeSystem::new(3, 2, 4, 2048);
        system.deploy(&net, &[0.5; 12]).unwrap();
        assert_eq!(system.copies(), 3);
        assert_eq!(system.banks_per_copy(), Some(1));
        let inputs: Vec<Vec<f32>> = (0..6)
            .map(|i| (0..12).map(|j| ((i + j) % 7) as f32 / 7.0).collect())
            .collect();
        let outputs = system.infer_batch(&inputs).unwrap();
        assert_eq!(outputs.len(), 6);
        // All banks hold the same weights: identical inputs landing on
        // different banks produce identical outputs.
        let dup = system
            .infer_batch(&[
                inputs[0].clone(),
                inputs[0].clone(),
                inputs[0].clone(),
                inputs[0].clone(),
            ])
            .unwrap();
        assert_eq!(dup[0], dup[1]);
        assert_eq!(dup[0], dup[3]);
        let stats = system.stats();
        assert_eq!(stats.reconfigurations, 1);
        assert_eq!(stats.inferences, 10);
        assert!(stats.reserved_mats > 0);
    }

    #[test]
    fn oversized_network_deploys_as_interbank_pipeline() {
        let mut rng = SmallRng::seed_from_u64(7);
        let net = pipelined_net(&mut rng);
        // Tiny mats (via the default 256x128 geometry the controller
        // builds) still fit these layers; shrink the bank instead: 1
        // subarray of 1 mat per bank forces one layer per bank.
        let mut system = PrimeSystem::new(4, 1, 1, 2048);
        system.deploy(&net, &[0.4; 24]).unwrap();
        assert_eq!(system.banks_per_copy(), Some(2));
        assert_eq!(system.deployed_stages(), Some(2));
        assert_eq!(system.copies(), 2);
        let inputs: Vec<Vec<f32>> = (0..5)
            .map(|i| (0..24).map(|j| ((i * 3 + j) % 11) as f32 / 11.0).collect())
            .collect();
        let piped = system.infer_batch(&inputs).unwrap();
        // Reference: the same network on one bank big enough to hold it.
        let mut single = PrimeSystem::new(1, 1, 2, 2048);
        single.deploy(&net, &[0.4; 24]).unwrap();
        assert_eq!(single.deployed_stages(), Some(1));
        let flat = single.infer_batch(&inputs).unwrap();
        assert_eq!(piped, flat, "pipelined placement changed the arithmetic");
    }

    #[test]
    fn infer_before_deploy_fails() {
        let mut system = PrimeSystem::new(2, 1, 2, 512);
        assert!(system.infer_batch(&[vec![0.0; 4]]).is_err());
    }

    #[test]
    fn os_pressure_releases_ff_capacity() {
        let mut rng = SmallRng::seed_from_u64(100);
        let net = relu_net(&mut rng);
        // A large pool keeps deployed utilization under the policy's
        // low-utilization threshold, the §IV-C release precondition.
        let mut system = PrimeSystem::new(2, 2, 16, 2048);
        system.deploy(&net, &[0.5; 12]).unwrap();
        let before = system.ff_utilization();
        assert!(before > 0.0 && before < 0.10, "utilization {before}");
        // Sustained page misses with low FF utilization trigger release.
        let mut released = false;
        for _ in 0..300 {
            if system.record_page_access(true) == MorphDecision::ReleaseToMemory {
                released = true;
            }
        }
        assert!(released, "policy never released under 100% miss rate");
        assert_eq!(system.ff_utilization(), 0.0);
    }

    #[test]
    fn redeployment_counts_reconfigurations_and_wear() {
        let mut rng = SmallRng::seed_from_u64(101);
        let mut system = PrimeSystem::new(2, 2, 4, 2048);
        for _ in 0..3 {
            let net = relu_net(&mut rng);
            system.deploy(&net, &[0.5; 12]).unwrap();
        }
        let stats = system.stats();
        assert_eq!(stats.reconfigurations, 3);
        assert!(stats.wear_imbalance >= 1.0);
    }

    #[test]
    fn shared_kernel_deploy_is_bit_identical_and_dedups_bank_state() {
        let mut rng = SmallRng::seed_from_u64(303);
        let net = relu_net(&mut rng);
        let inputs: Vec<Vec<f32>> = (0..6)
            .map(|i| (0..12).map(|j| ((i * 5 + j) % 9) as f32 / 9.0).collect())
            .collect();
        let mut dense = PrimeSystem::new(4, 2, 4, 2048);
        dense
            .deploy_with(&net, &[0.5; 12], MappingStrategy::ReplicateDense)
            .unwrap();
        let mut shared = PrimeSystem::new(4, 2, 4, 2048);
        shared
            .deploy_with(&net, &[0.5; 12], MappingStrategy::SharedKernel)
            .unwrap();
        assert_eq!(
            dense.infer_batch(&inputs).unwrap(),
            shared.infer_batch(&inputs).unwrap(),
            "weight layout changed the arithmetic"
        );
        let d = dense.deploy_stats().expect("stats after deploy").clone();
        let s = shared.deploy_stats().expect("stats after deploy").clone();
        assert_eq!(d.copies, 4);
        assert_eq!(s.copies, 4);
        // Dense: every placement owns its bytes; nothing is aliased.
        assert_eq!(d.aliased_placements, 0);
        assert_eq!(d.resident_bytes, d.dense_bytes);
        // Shared: the 3 replica copies alias copy 0's tiles, so resident
        // state is the unique-weight footprint — a quarter of dense.
        assert!(s.aliased_placements > 0);
        assert_eq!(s.dense_bytes, d.dense_bytes);
        assert_eq!(s.resident_bytes * s.copies, s.dense_bytes);
        assert!(s.unique_tiles < d.unique_tiles);
        assert_eq!(shared.resident_state_bytes(), s.resident_bytes);
    }

    #[test]
    fn replicated_copies_skip_reprogramming_but_stay_exact() {
        // The replicate-based deploy must hand out copies byte-identical
        // to compiling each group independently: the same input routed to
        // any copy produces the same output (round-robin places input i
        // on copy i % copies).
        let mut rng = SmallRng::seed_from_u64(304);
        let net = relu_net(&mut rng);
        let mut system = PrimeSystem::new(3, 2, 4, 2048);
        system
            .deploy_with(&net, &[0.5; 12], MappingStrategy::SharedKernel)
            .unwrap();
        assert_eq!(system.copies(), 3);
        let input: Vec<f32> = (0..12).map(|j| (j % 5) as f32 / 5.0).collect();
        let outputs = system
            .infer_batch(&[input.clone(), input.clone(), input])
            .unwrap();
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }
}
