//! The full-function (FF) mat: one positive/negative crossbar pair with
//! its modified peripheral circuits, morphable between memory and NN
//! computation (paper §III-A).
//!
//! In computation mode the mat stores composed 8-bit signed weights (two
//! adjacent 4-bit cells per magnitude, sign in the positive/negative
//! array split) and evaluates composed 6-bit inputs through the
//! input-and-synapse composing scheme. In memory mode both crossbars of
//! the pair store plain bits (512 rows x 256 bits = 16 KiB per mat).

use std::sync::Arc;

use serde::{DeError, Deserialize, Serialize, Value};

use prime_circuits::{
    ComposingScheme, Part, PartSums, PrecisionController, ReluUnit, SigmoidUnit, WordlineDriver,
};
use prime_device::{MlcSpec, PairScratch, PairedCrossbar, MAT_DIM};
use prime_mem::MatFunction;

use crate::error::PrimeError;

/// Reusable buffers for [`FfMat::compute_into`] /
/// [`FfMat::compute_analog_into`].
///
/// Holds the split input halves, the two driver passes' bitline sums, and
/// the paired-crossbar scratch. Following the `prime-device`
/// scratch-buffer contract, buffers only grow: after the first compute at
/// a given geometry, repeated calls perform zero heap allocation. One
/// scratch may be shared across mats (buffers are cleared per call).
#[derive(Debug, Default, Clone)]
pub struct MatScratch {
    hi: Vec<u16>,
    lo: Vec<u16>,
    pass_hi: Vec<i64>,
    pass_lo: Vec<i64>,
    pair: PairScratch,
}

impl MatScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        MatScratch::default()
    }
}

/// Configuration switches of an FF mat's datapath, set by the Table I
/// datapath-configure commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatDatapath {
    /// Bypass the sigmoid unit (required when partial sums are merged
    /// downstream).
    pub bypass_sigmoid: bool,
    /// Bypass the SA (analog output forwarded to the next mat directly).
    pub bypass_sa: bool,
    /// Enable the ReLU unit (CNN convolution layers).
    pub relu: bool,
}

impl Default for MatDatapath {
    fn default() -> Self {
        MatDatapath {
            bypass_sigmoid: true,
            bypass_sa: false,
            relu: false,
        }
    }
}

/// Backing storage of a mat's crossbar pair.
///
/// Bank state scales with the weights actually resident: a vacant mat
/// (`None`) carries no pair at all and reads as all-zero; a written mat
/// holds a refcounted pair. Under the shared-kernel layout one tile's
/// `Arc` is aliased by every placement (cloning the store clones the
/// handle), and any write to an alias copies first (`Arc::make_mut`).
/// `Arc` rather than `Rc` because banks cross thread scopes during
/// parallel inference.
#[derive(Debug, Clone)]
struct PairStore(Option<Arc<PairedCrossbar>>);

impl PairStore {
    fn pair(&self) -> Option<&PairedCrossbar> {
        self.0.as_deref()
    }
}

/// Stores compare by logical crossbar content, not by aliasing: a
/// deserialized snapshot (always unshared) equals the shared tile it was
/// taken from.
impl PartialEq for PairStore {
    fn eq(&self, other: &Self) -> bool {
        match (self.pair(), other.pair()) {
            (None, None) => true,
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

/// A vacant store serializes as null; owned and shared pairs both
/// serialize as a plain snapshot and deserialize unshared (aliasing is a
/// deploy-time decision, re-established by the next deploy, not a
/// persistent property of the state).
impl Serialize for PairStore {
    fn to_value(&self) -> Value {
        match self.pair() {
            None => Value::Null,
            Some(pair) => pair.to_value(),
        }
    }
}

impl Deserialize for PairStore {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(PairStore(None)),
            other => PairedCrossbar::from_value(other)
                .map(|pair| PairStore(Some(Arc::new(pair)))),
        }
    }
}

/// A full-function mat.
///
/// # Examples
///
/// ```
/// use prime_core::FfMat;
/// use prime_mem::MatFunction;
///
/// let mut mat = FfMat::new();
/// mat.set_function(MatFunction::Program);
/// // A 2-input, 1-output weight "matrix" [3, -4]^T:
/// mat.program_composed(&[3, -4], 2, 1)?;
/// mat.set_function(MatFunction::Compute);
/// let out = mat.compute(&[10, 20])?;
/// // Composed target of 10*3 - 20*4 = -50, truncated by the scheme.
/// assert!(out[0] <= 0);
/// # Ok::<(), prime_core::PrimeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FfMat {
    pair: PairStore,
    driver: WordlineDriver,
    scheme: ComposingScheme,
    function: MatFunction,
    datapath: MatDatapath,
    sigmoid: SigmoidUnit,
    relu: ReluUnit,
    /// Logical composed-weight dimensions currently programmed.
    weight_rows: usize,
    weight_cols: usize,
    /// The SA's sensing window: the right shift from full precision to
    /// the Po-bit output. Defaults to the scheme's worst-case shift and is
    /// recomputed on programming;
    /// [`calibrate_output_window`](Self::calibrate_output_window)
    /// overrides it with a calibrated window (dynamic fixed point).
    output_shift: u8,
}

impl FfMat {
    /// Creates a PRIME-sized mat (256x256 pair, 3-bit drivers, default
    /// composing scheme) in memory mode.
    pub fn new() -> Self {
        Self::with_scheme(ComposingScheme::prime_default())
    }

    /// Creates a mat with a custom composing scheme (for precision
    /// ablations).
    ///
    /// The crossbar pair is vacant until the first write: constructing a
    /// memory full of FF mats costs only the peripheral state, and bank
    /// storage grows with the weights actually programmed.
    pub fn with_scheme(scheme: ComposingScheme) -> Self {
        let mut mat = FfMat {
            pair: PairStore(None),
            driver: WordlineDriver::new(MAT_DIM, scheme.input_half_bits()),
            scheme,
            function: MatFunction::Memory,
            datapath: MatDatapath::default(),
            sigmoid: SigmoidUnit::new(scheme.output_bits(), 64.0),
            relu: ReluUnit::new(),
            weight_rows: 0,
            weight_cols: 0,
            output_shift: scheme.target_shift(),
        };
        // Sync the output units to the default datapath (sigmoid and ReLU
        // both bypassed until configured otherwise).
        mat.set_datapath(mat.datapath);
        mat
    }

    /// The mat's composing scheme.
    pub fn scheme(&self) -> ComposingScheme {
        self.scheme
    }

    /// The mat's current function.
    pub fn function(&self) -> MatFunction {
        self.function
    }

    /// The current datapath configuration.
    pub fn datapath(&self) -> MatDatapath {
        self.datapath
    }

    /// Reconfigures the datapath (Table I `bypass sigmoid` / `bypass SA`).
    pub fn set_datapath(&mut self, datapath: MatDatapath) {
        self.datapath = datapath;
        self.sigmoid.set_bypass(datapath.bypass_sigmoid);
        self.relu.set_bypass(!datapath.relu);
    }

    /// Maximum composed-weight rows (one physical wordline each).
    pub fn max_rows(&self) -> usize {
        MAT_DIM
    }

    /// Maximum composed-weight columns (two physical bitlines each).
    pub fn max_cols(&self) -> usize {
        MAT_DIM / 2
    }

    /// Logical weight dimensions currently programmed.
    pub fn weight_shape(&self) -> (usize, usize) {
        (self.weight_rows, self.weight_cols)
    }

    /// The SA's current sensing shift (full-precision bits dropped).
    pub fn output_shift(&self) -> u8 {
        self.output_shift
    }

    /// Calibrates the SA's sensing window (dynamic fixed point, ref \[68\]):
    /// `max_abs_full` is the largest full-precision accumulation expected
    /// on any bitline; the shift is chosen so that value fills the Po-bit
    /// output. Values beyond the window saturate at the register limits.
    pub fn calibrate_output_window(&mut self, max_abs_full: i64) {
        let bits = 64 - max_abs_full.unsigned_abs().leading_zeros() as i64;
        let shift = (bits - i64::from(self.scheme.output_bits())).max(0);
        self.output_shift = shift.min(i64::from(self.scheme.target_shift())) as u8;
    }

    /// The MLC spec `function` implies under the mat's composing scheme:
    /// SLC in memory mode, the weight-half width for computation.
    fn spec_for(&self, function: MatFunction) -> MlcSpec {
        match function {
            MatFunction::Memory => MlcSpec::slc(),
            // The scheme validates pw as even and <= 16, so the half width
            // is always a legal 1..=8-bit MLC spec; fall back to SLC
            // rather than panic if that invariant ever breaks.
            MatFunction::Program | MatFunction::Compute => {
                MlcSpec::new(self.scheme.weight_half_bits()).unwrap_or_else(|_| MlcSpec::slc())
            }
        }
    }

    /// The writable pair, materializing a vacant mat (fresh pair at the
    /// current function's spec) and copying a shared tile on write
    /// (aliases must never observe another placement's mutation).
    fn pair_mut(&mut self) -> &mut PairedCrossbar {
        let spec = self.spec_for(self.function);
        let arc = self
            .pair
            .0
            .get_or_insert_with(|| Arc::new(PairedCrossbar::new(MAT_DIM, MAT_DIM, spec)));
        Arc::make_mut(arc)
    }

    /// Freezes this mat's pair into a shareable tile and returns the
    /// handle, or `None` for a vacant mat. Cloning the mat afterwards
    /// aliases the tile instead of copying it; any later write to an
    /// alias copies first.
    pub fn freeze_shared(&mut self) -> Option<Arc<PairedCrossbar>> {
        self.pair.0.as_ref().map(Arc::clone)
    }

    /// The shared tile this mat's pair aliases, if other placements
    /// currently reference the same physical tile.
    pub fn shared_tile(&self) -> Option<&Arc<PairedCrossbar>> {
        self.pair.0.as_ref().filter(|arc| Arc::strong_count(arc) > 1)
    }

    /// A copy of this mat that owns its pair outright, whatever the
    /// source's aliasing (the replicate-dense clone).
    pub fn deep_clone(&self) -> FfMat {
        let mut copy = self.clone();
        if let Some(arc) = &self.pair.0 {
            copy.pair = PairStore(Some(Arc::new(PairedCrossbar::clone(arc))));
        }
        copy
    }

    /// Resident bytes of this mat's pair storage. Aliased tiles report
    /// their full snapshot size — callers accounting a whole memory dedup
    /// aliases via [`shared_tile`](Self::shared_tile) pointer identity.
    pub fn tile_state_bytes(&self) -> usize {
        self.pair.pair().map_or(0, PairedCrossbar::state_bytes)
    }

    /// Switches the mat's function (`prog/comp/mem` command), morphing the
    /// cells' MLC spec: SLC in memory mode, multi-bit for computation.
    /// Stored levels are clamped to the new range — the controller's
    /// morphing protocol migrates data beforehand so nothing is lost.
    ///
    /// A vacant pair stays vacant (the spec applies when it materializes),
    /// and an aliased tile is left untouched when the new function keeps
    /// the same spec — the program→compute flip on adopted tiles — so
    /// sharing survives; a real spec change copies the tile first.
    pub fn set_function(&mut self, function: MatFunction) {
        let spec = self.spec_for(function);
        self.function = function;
        if let Some(arc) = &mut self.pair.0 {
            let same_spec =
                arc.positive().spec() == spec && arc.negative().spec() == spec;
            if Arc::strong_count(arc) == 1 || !same_spec {
                let pair = Arc::make_mut(arc);
                pair.positive_mut().morph(spec);
                pair.negative_mut().morph(spec);
            }
        }
    }

    /// Programs a row-major composed signed weight matrix
    /// (`rows x cols`, `|w| < 2^Pw`). The high and low magnitude nibbles
    /// land in adjacent physical bitlines (paper §III-D).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::WrongMode`] unless the mat is in `Program`
    /// mode, [`PrimeError::MatOverflow`] if the matrix exceeds the mat, or
    /// a circuit error for out-of-range magnitudes.
    pub fn program_composed(
        &mut self,
        weights: &[i32],
        rows: usize,
        cols: usize,
    ) -> Result<(), PrimeError> {
        if self.function != MatFunction::Program {
            return Err(PrimeError::WrongMode {
                expected: "program",
                found: function_name(self.function),
            });
        }
        if rows > self.max_rows() || cols > self.max_cols() {
            return Err(PrimeError::MatOverflow { rows, cols });
        }
        if weights.len() != rows * cols {
            return Err(PrimeError::MappingMismatch {
                reason: format!("{} weights for a {rows}x{cols} matrix", weights.len()),
            });
        }
        // The reconfigurable SA senses the top Po bits of the *actual*
        // accumulation range: with `rows` active wordlines the full
        // precision is Pin + Pw + ceil(log2(rows)) bits (Eq. 2 with
        // 2^PN = rows), so the scheme's PN follows the programmed rows.
        let pn = (usize::BITS - (rows.max(1) - 1).leading_zeros()).max(1) as u8;
        self.scheme = ComposingScheme::new(
            self.scheme.input_bits(),
            self.scheme.weight_bits(),
            self.scheme.output_bits(),
            pn,
        )?;
        self.output_shift = self.scheme.target_shift();
        // Split every magnitude into its high/low nibbles first: the whole
        // matrix is validated before any cell changes, then written as one
        // chunked region per array instead of 2*rows*cols single-cell
        // writes.
        let mut split = Vec::with_capacity(2 * weights.len());
        for &w in weights {
            let magnitude = w.unsigned_abs();
            if magnitude >= (1 << self.scheme.weight_bits()) {
                return Err(PrimeError::Circuit(
                    prime_circuits::CircuitError::CodeOutOfRange {
                        code: magnitude,
                        codes: 1 << self.scheme.weight_bits(),
                    },
                ));
            }
            let (wh, wl) = self.scheme.split_weight(magnitude as u16)?;
            let sign = if w < 0 { -1i32 } else { 1 };
            split.push(sign * i32::from(wh));
            split.push(sign * i32::from(wl));
        }
        if !split.is_empty() {
            self.pair_mut().program_signed_region(0, 0, 2 * cols, &split)?;
        }
        self.weight_rows = rows;
        self.weight_cols = cols;
        Ok(())
    }

    /// Evaluates the mat on composed input codes (`< 2^Pin`), returning
    /// the composed target value per weight column (the Eq. 9
    /// accumulation of truncated parts).
    ///
    /// The hardware drives the HIGH input halves in one pass and the LOW
    /// halves in another; each pass produces both the HIGH- and LOW-nibble
    /// bitline sums, and the precision controller accumulates the
    /// included parts with their shifts.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::WrongMode`] unless in `Compute` mode, or
    /// circuit/device errors for malformed inputs.
    pub fn compute(&mut self, inputs: &[u16]) -> Result<Vec<i64>, PrimeError> {
        let mut scratch = MatScratch::new();
        let mut out = Vec::new();
        self.compute_into(inputs, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`compute`](Self::compute) into caller-owned buffers.
    ///
    /// `out` is cleared and resized to the programmed column count; with a
    /// reused `scratch`, repeated calls perform no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::WrongMode`] unless in `Compute` mode, or
    /// circuit/device errors for malformed inputs.
    pub fn compute_into(
        &mut self,
        inputs: &[u16],
        scratch: &mut MatScratch,
        out: &mut Vec<i64>,
    ) -> Result<(), PrimeError> {
        self.check_compute(inputs)?;
        // A vacant mat has zero programmed rows/cols (check_compute just
        // bounded the inputs to them), so its output is the empty set.
        let Some(pair) = self.pair.pair() else {
            out.clear();
            return Ok(());
        };
        self.split_into_halves(inputs, scratch)?;
        // The composing scheme only reads bitline pairs (2c, 2c+1) for the
        // programmed weight columns; the SA mux skips the unprogrammed rest.
        // Likewise only the programmed row prefix is latched and driven —
        // wordlines past it stay grounded and contribute nothing.
        let span = 2 * self.weight_cols;
        let rows = inputs.len();
        // Pass 1: HIGH input halves latched and driven.
        self.driver.latch_prefix(&scratch.hi)?;
        pair.dot_signed_span_into(
            &self.driver.driven_codes()[..rows],
            span,
            &mut scratch.pair,
            &mut scratch.pass_hi,
        )?;
        // Pass 2: LOW input halves.
        self.driver.latch_prefix(&scratch.lo)?;
        pair.dot_signed_span_into(
            &self.driver.driven_codes()[..rows],
            span,
            &mut scratch.pair,
            &mut scratch.pass_lo,
        )?;
        self.compose_passes(&scratch.pass_hi, &scratch.pass_lo, out);
        Ok(())
    }

    fn check_compute(&self, inputs: &[u16]) -> Result<(), PrimeError> {
        if self.function != MatFunction::Compute {
            return Err(PrimeError::WrongMode {
                expected: "compute",
                found: function_name(self.function),
            });
        }
        if inputs.len() != self.weight_rows {
            return Err(PrimeError::MappingMismatch {
                reason: format!(
                    "{} inputs for {} programmed rows",
                    inputs.len(),
                    self.weight_rows
                ),
            });
        }
        Ok(())
    }

    fn split_into_halves(
        &self,
        inputs: &[u16],
        scratch: &mut MatScratch,
    ) -> Result<(), PrimeError> {
        scratch.hi.clear();
        scratch.hi.resize(inputs.len(), 0);
        scratch.lo.clear();
        scratch.lo.resize(inputs.len(), 0);
        for (i, &code) in inputs.iter().enumerate() {
            let (h, l) = self.scheme.split_input(code)?;
            scratch.hi[i] = h;
            scratch.lo[i] = l;
        }
        Ok(())
    }

    /// The precision-control accumulation shared by the digital and analog
    /// paths: merges the two passes' bitline sums into composed outputs.
    fn compose_passes(&self, pass_hi: &[i64], pass_lo: &[i64], out: &mut Vec<i64>) {
        let shift = self.output_shift;
        // Signed output-register range at Po bits (plus sign from the
        // subtraction unit).
        let sat = self.scheme.output_code_max();
        out.clear();
        for c in 0..self.weight_cols {
            let parts = PartSums {
                hh: pass_hi[2 * c],
                hl: pass_lo[2 * c],
                lh: pass_hi[2 * c + 1],
                ll: pass_lo[2 * c + 1],
            };
            // Accumulate with the precision-control register/adder.
            let mut acc = PrecisionController::new();
            for part in self.scheme.included_parts_iter() {
                let value = match part {
                    Part::Hh => parts.hh,
                    Part::Hl => parts.hl,
                    Part::Lh => parts.lh,
                    Part::Ll => parts.ll,
                };
                let scale = self.scheme.part_scale(part);
                if shift >= scale {
                    acc.accumulate_truncated(value, shift - scale);
                } else {
                    acc.accumulate(value, scale - shift);
                }
            }
            out.push(acc.value().clamp(-sat, sat));
        }
    }

    /// Re-programs the mat's cells through noisy writes, modelling the
    /// feedback-tuning precision of real devices (~1 % single-cell, ~3 %
    /// in-crossbar, paper §III-D refs \[31\]\[65\]). Affects only
    /// [`compute_analog`](Self::compute_analog); the nominal digital
    /// levels (and [`compute`](Self::compute)) are unchanged.
    pub fn apply_program_noise<R: rand::Rng + ?Sized>(
        &mut self,
        noise: &prime_device::NoiseModel,
        rng: &mut R,
    ) {
        self.pair_mut().apply_program_noise(noise, rng);
    }

    /// Analog variant of [`compute`](Self::compute): both driver passes
    /// evaluate through the voltage/conductance domain (including any
    /// programming noise applied via
    /// [`apply_program_noise`](Self::apply_program_noise) and read noise
    /// from `noise`), and the decoded part sums feed the same
    /// precision-control accumulation.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::WrongMode`] unless in `Compute` mode, or
    /// circuit/device errors for malformed inputs.
    pub fn compute_analog<R: rand::Rng + ?Sized>(
        &mut self,
        inputs: &[u16],
        noise: &prime_device::NoiseModel,
        rng: &mut R,
    ) -> Result<Vec<i64>, PrimeError> {
        let mut scratch = MatScratch::new();
        let mut out = Vec::new();
        self.compute_analog_into(inputs, noise, rng, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`compute_analog`](Self::compute_analog) into caller-owned buffers.
    ///
    /// `out` is cleared and resized to the programmed column count; with a
    /// reused `scratch`, repeated calls perform no heap allocation. Draws
    /// from `rng` in exactly the same order as `compute_analog`, so the
    /// two forms are bit-identical for equal RNG states.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::WrongMode`] unless in `Compute` mode, or
    /// circuit/device errors for malformed inputs.
    pub fn compute_analog_into<R: rand::Rng + ?Sized>(
        &mut self,
        inputs: &[u16],
        noise: &prime_device::NoiseModel,
        rng: &mut R,
        scratch: &mut MatScratch,
        out: &mut Vec<i64>,
    ) -> Result<(), PrimeError> {
        self.check_compute(inputs)?;
        let Some(pair) = self.pair.pair() else {
            out.clear();
            return Ok(());
        };
        self.split_into_halves(inputs, scratch)?;
        let bits = self.scheme.input_half_bits();
        // Only the sensed bitline pairs (2c, 2c+1) for programmed weight
        // columns draw read-noise samples, and only the programmed row
        // prefix is driven; see DESIGN.md §11 (RNG order).
        let span = 2 * self.weight_cols;
        let rows = inputs.len();
        self.driver.latch_prefix(&scratch.hi)?;
        pair.dot_signed_analog_span_into(
            &self.driver.driven_codes()[..rows],
            bits,
            span,
            noise,
            rng,
            &mut scratch.pair,
            &mut scratch.pass_hi,
        )?;
        self.driver.latch_prefix(&scratch.lo)?;
        pair.dot_signed_analog_span_into(
            &self.driver.driven_codes()[..rows],
            bits,
            span,
            noise,
            rng,
            &mut scratch.pair,
            &mut scratch.pass_lo,
        )?;
        self.compose_passes(&scratch.pass_hi, &scratch.pass_lo, out);
        Ok(())
    }

    /// Applies the configured output units (ReLU and/or sigmoid) to raw
    /// composed results, exactly as the Fig. 5(a) dataflow routes them.
    pub fn apply_output_units(&self, values: &[i64]) -> Vec<i64> {
        let mut out = Vec::new();
        self.apply_output_units_into(values, &mut out);
        out
    }

    /// [`apply_output_units`](Self::apply_output_units) into a
    /// caller-owned buffer (cleared and refilled; no steady-state
    /// allocation on reuse).
    pub fn apply_output_units_into(&self, values: &[i64], out: &mut Vec<i64>) {
        out.clear();
        out.extend(values.iter().map(|&v| {
            let v = self.relu.apply(v);
            if self.datapath.bypass_sigmoid {
                v
            } else {
                self.sigmoid.apply(v) as i64
            }
        }));
    }

    /// Memory-mode row write: rows `0..256` live in the positive array,
    /// `256..512` in the negative array (the pair stores 16 KiB).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::WrongMode`] unless in `Memory` mode.
    pub fn write_memory_row(&mut self, row: usize, bits: &[bool]) -> Result<(), PrimeError> {
        if self.function != MatFunction::Memory {
            return Err(PrimeError::WrongMode {
                expected: "memory",
                found: function_name(self.function),
            });
        }
        let level = |bit: bool| u16::from(bit);
        let pair = self.pair_mut();
        for (col, &bit) in bits.iter().enumerate() {
            if row < MAT_DIM {
                pair.positive_mut().program(row, col, level(bit))?;
            } else {
                pair.negative_mut().program(row - MAT_DIM, col, level(bit))?;
            }
        }
        Ok(())
    }

    /// Memory-mode row read (inverse of
    /// [`write_memory_row`](Self::write_memory_row)).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::WrongMode`] unless in `Memory` mode.
    pub fn read_memory_row(&self, row: usize, cols: usize) -> Result<Vec<bool>, PrimeError> {
        if self.function != MatFunction::Memory {
            return Err(PrimeError::WrongMode {
                expected: "memory",
                found: function_name(self.function),
            });
        }
        // A vacant mat reads as a fresh all-zero crossbar pair.
        let Some(pair) = self.pair.pair() else {
            return Ok(vec![false; cols]);
        };
        let mut bits = Vec::with_capacity(cols);
        for col in 0..cols {
            let w = if row < MAT_DIM {
                pair.positive().level(row, col)?
            } else {
                pair.negative().level(row - MAT_DIM, col)?
            };
            bits.push(w > 0);
        }
        Ok(bits)
    }
}

impl Default for FfMat {
    fn default() -> Self {
        FfMat::new()
    }
}

fn function_name(f: MatFunction) -> &'static str {
    match f {
        MatFunction::Program => "program",
        MatFunction::Compute => "compute",
        MatFunction::Memory => "memory",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prime_circuits::part_sums;

    fn programmed_mat(weights: &[i32], rows: usize, cols: usize) -> FfMat {
        let mut mat = FfMat::new();
        mat.set_function(MatFunction::Program);
        mat.program_composed(weights, rows, cols).unwrap();
        mat.set_function(MatFunction::Compute);
        mat
    }

    #[test]
    fn compute_matches_composing_reference() {
        let rows = 32;
        let cols = 4;
        let weights: Vec<i32> = (0..rows * cols)
            .map(|i| ((i * 29) % 511) as i32 - 255)
            .collect();
        let inputs: Vec<u16> = (0..rows).map(|i| ((i * 11) % 64) as u16).collect();
        let mut mat = programmed_mat(&weights, rows, cols);
        let got = mat.compute(&inputs).unwrap();
        let scheme = mat.scheme();
        let parts = part_sums(&scheme, &inputs, &weights, cols).unwrap();
        for c in 0..cols {
            assert_eq!(got[c], scheme.compose(parts[c]), "column {c}");
        }
    }

    #[test]
    fn compute_approximates_exact_matvec() {
        let rows = 64;
        let cols = 8;
        let weights: Vec<i32> = (0..rows * cols)
            .map(|i| ((i * 13) % 201) as i32 - 100)
            .collect();
        let inputs: Vec<u16> = (0..rows).map(|i| ((i * 7) % 64) as u16).collect();
        let mut mat = programmed_mat(&weights, rows, cols);
        let got = mat.compute(&inputs).unwrap();
        let scheme = mat.scheme();
        for c in 0..cols {
            let exact: i64 = (0..rows)
                .map(|r| i64::from(inputs[r]) * i64::from(weights[r * cols + c]))
                .sum();
            let target = scheme.exact_target(exact);
            assert!(
                (got[c] - target).abs() <= scheme.max_composition_error(),
                "col {c}: got {} target {target}",
                got[c]
            );
        }
    }

    #[test]
    fn program_requires_program_mode() {
        let mut mat = FfMat::new();
        assert!(matches!(
            mat.program_composed(&[1], 1, 1),
            Err(PrimeError::WrongMode {
                expected: "program",
                ..
            })
        ));
    }

    #[test]
    fn compute_requires_compute_mode() {
        let mut mat = FfMat::new();
        mat.set_function(MatFunction::Program);
        mat.program_composed(&[1], 1, 1).unwrap();
        assert!(matches!(
            mat.compute(&[1]),
            Err(PrimeError::WrongMode {
                expected: "compute",
                ..
            })
        ));
    }

    #[test]
    fn program_rejects_overflow() {
        let mut mat = FfMat::new();
        mat.set_function(MatFunction::Program);
        assert!(matches!(
            mat.program_composed(&[0; 300 * 2], 300, 2),
            Err(PrimeError::MatOverflow { .. })
        ));
        // Magnitude 256 does not fit 8 composed bits.
        assert!(mat.program_composed(&[256], 1, 1).is_err());
    }

    #[test]
    fn memory_mode_round_trips_rows_in_both_arrays() {
        let mut mat = FfMat::new();
        let bits: Vec<bool> = (0..256).map(|i| i % 3 == 0).collect();
        mat.write_memory_row(10, &bits).unwrap();
        mat.write_memory_row(300, &bits).unwrap();
        assert_eq!(mat.read_memory_row(10, 256).unwrap(), bits);
        assert_eq!(mat.read_memory_row(300, 256).unwrap(), bits);
    }

    #[test]
    fn output_units_follow_datapath_config() {
        let mut mat = FfMat::new();
        mat.set_datapath(MatDatapath {
            bypass_sigmoid: true,
            bypass_sa: false,
            relu: true,
        });
        assert_eq!(mat.apply_output_units(&[-5, 7]), vec![0, 7]);
        mat.set_datapath(MatDatapath {
            bypass_sigmoid: false,
            bypass_sa: false,
            relu: false,
        });
        let out = mat.apply_output_units(&[0]);
        assert_eq!(out, vec![32]); // sigmoid mid-code at 6 bits
    }

    #[test]
    fn analog_compute_matches_digital_without_noise() {
        use prime_device::NoiseModel;
        use rand::SeedableRng;
        let rows = 48;
        let cols = 6;
        let weights: Vec<i32> = (0..rows * cols)
            .map(|i| ((i * 37) % 511) as i32 - 255)
            .collect();
        let inputs: Vec<u16> = (0..rows).map(|i| ((i * 5) % 64) as u16).collect();
        let mut mat = programmed_mat(&weights, rows, cols);
        let digital = mat.compute(&inputs).unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let analog = mat
            .compute_analog(&inputs, &NoiseModel::ideal(), &mut rng)
            .unwrap();
        assert_eq!(digital, analog);
    }

    #[test]
    fn analog_compute_with_noise_stays_close() {
        use prime_device::NoiseModel;
        use rand::SeedableRng;
        let rows = 64;
        let cols = 8;
        let weights: Vec<i32> = (0..rows * cols)
            .map(|i| ((i * 11) % 401) as i32 - 200)
            .collect();
        let inputs: Vec<u16> = (0..rows).map(|i| ((i * 3) % 64) as u16).collect();
        let mut mat = programmed_mat(&weights, rows, cols);
        let digital = mat.compute(&inputs).unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        mat.apply_program_noise(&NoiseModel::crossbar_default(), &mut rng);
        let noisy = mat
            .compute_analog(&inputs, &NoiseModel::ideal(), &mut rng)
            .unwrap();
        let sat = (1i64 << mat.scheme().output_bits()) - 1;
        for (d, n) in digital.iter().zip(&noisy) {
            // 3% conductance noise shifts the 6-bit output by a few codes.
            assert!((d - n).abs() <= sat / 3, "digital {d} vs noisy {n}");
        }
    }

    #[test]
    fn weight_shape_tracks_programming() {
        let mat = programmed_mat(&[1, 2, 3, 4, 5, 6], 3, 2);
        assert_eq!(mat.weight_shape(), (3, 2));
    }
}
