//! Command-driven network execution through the bank controller.
//!
//! [`FfExecutor`](crate::FfExecutor) proves numerical fidelity; this
//! module proves *protocol* fidelity: a network is compiled into an
//! integer plan (per-layer quantized weights, SA windows, and buffer
//! addresses), programmed into a [`BankController`]'s mats, and then
//! every inference is driven purely by Table I commands — `load` staging
//! inputs from the Buffer subarray into mat latches, mat computation,
//! `store` returning outputs — with row-tile merging on the
//! precision-control adder and integer requantization between layers,
//! exactly the dataflow of paper Fig. 5(a).
//!
//! Three layer kinds execute on the device:
//!
//! * **Fully-connected** — one crossbar evaluation per inference, the
//!   original FC datapath.
//! * **Convolution** — the kernel matrix (`in_ch * k * k` rows, one
//!   composed column pair per output map) is programmed once; each
//!   output pixel stages its im2col window through the FF buffer and
//!   runs one crossbar evaluation, zero padding entering as code 0 on
//!   the unsigned input drivers.
//! * **Pooling** — no mats: max pooling reduces the staged window with
//!   repeated 4:1 winner-code steps on the [`MaxPoolUnit`] (Fig. 4 C),
//!   and mean pooling is the 1/n-weight dot product of the column-mux
//!   units, `level * sum(codes)` with the quantized reciprocal level.
//!
//! The runner supports the activation functions PRIME's output units
//! implement exactly in the integer domain (ReLU and identity); sigmoid
//! networks are covered by the analog-calibrated
//! [`FfExecutor`](crate::FfExecutor) path.
//!
//! Large-scale networks (paper §IV-B) do not fit one bank: the compiler's
//! [`Mapping::pipeline`](prime_compiler::NetworkMapping) splits them into
//! stages, each assigned to a bank. [`CommandRunner::compile_pipeline`]
//! consumes that stage list as the single source of truth for *where*
//! layers run, placing each stage's tiles on its assigned bank, and the
//! stage-level execution API ([`run_stage`](CommandRunner::run_stage) and
//! friends) lets [`PrimeSystem`](crate::PrimeSystem) move activation
//! vectors between banks at stage boundaries and overlap stages across a
//! batch. FC stage boundaries are buffer-resident; conv/pool feature
//! maps stay Mem-resident and stream through the boundary staging
//! regions in bursts of at most
//! [`WINDOW_IO_CHUNK_WORDS`](prime_analyze::WINDOW_IO_CHUNK_WORDS)
//! words, so wide feature maps never require full-width buffer
//! residency.

use serde::{Deserialize, Serialize};

use prime_circuits::{mean_pool_weights, ComposingScheme, MaxPoolUnit, PrecisionController};
use prime_compiler::{MappingStrategy, PipelineStage};
use prime_device::NoiseModel;
use prime_mem::{BufAddr, Command, FfAddr, MatAddr, MatFunction};
use prime_nn::{Activation, Layer, Network, PoolKind};

use crate::controller::{BankController, BankScratch};
use crate::error::PrimeError;

/// The analog-evaluation knob threaded through the merge kernel: `None`
/// evaluates tiles digitally, `Some` routes every tile through the noisy
/// voltage/conductance domain with the given read-noise model and RNG.
type Analog<'a, R> = Option<(&'a NoiseModel, &'a mut R)>;

/// Concrete digital instantiation for call sites without an RNG.
type NoAnalog<'a> = Analog<'a, rand::rngs::SmallRng>;

/// Reusable buffers for [`CommandRunner::infer_into`].
///
/// Bundles everything one inference needs — staged layer codes, the
/// per-output precision-control registers of the tile merge, and the
/// bank-level compute scratch. Buffers only grow, so after the first
/// inference a reused scratch makes the whole forward pass perform zero
/// steady-state heap allocation. One scratch belongs with one bank
/// (thread-per-bank execution keeps them paired).
#[derive(Debug, Default, Clone)]
pub struct InferScratch {
    /// Current layer's input codes.
    codes: Vec<i64>,
    /// Next layer's codes (swapped with `codes` between layers).
    next_codes: Vec<i64>,
    /// Per-output precision-control registers of the merge adder.
    merge_acc: Vec<PrecisionController>,
    /// Full-precision merged sums of the current layer.
    merged: Vec<i64>,
    /// One tile's post-output-unit results.
    tile_out: Vec<i64>,
    /// One im2col / pooling window's staged codes.
    window: Vec<i64>,
    /// Mirror of a resident conv layer's buffer row ring (the gather
    /// logic's addressable copy of the staged input rows).
    ring: Vec<i64>,
    /// One staged input row slot read back from the buffer.
    row_slot: Vec<i64>,
    /// A chunk of gathered im2col windows, pixel-major.
    win_chunk: Vec<i64>,
    /// Per-pixel merge registers for a window chunk.
    chunk_acc: Vec<PrecisionController>,
    /// Controller-side compute buffers.
    bank: BankScratch,
}

impl InferScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        InferScratch::default()
    }
}

/// Wall-clock breakdown of one inference's conv layers, in nanoseconds,
/// accumulated over every conv layer executed. Filled by
/// [`CommandRunner::infer_profiled_into`]; the stopwatches sit outside
/// the datapath, so outputs stay bit-identical to the unprofiled paths.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ConvPhases {
    /// Staging input rows (resident) or windows (per-pixel fallback)
    /// into the FF buffer.
    pub stage_ns: f64,
    /// Gathering im2col windows from the staged rows / activation.
    pub gather_ns: f64,
    /// Mat evaluation: latch loads, crossbar passes, merge accumulate.
    pub eval_ns: f64,
    /// Requantize-and-emit of merged sums.
    pub emit_ns: f64,
}

impl ConvPhases {
    /// Total nanoseconds across the four phases.
    pub fn total_ns(&self) -> f64 {
        self.stage_ns + self.gather_ns + self.eval_ns + self.emit_ns
    }
}

/// Starts a phase stopwatch only when profiling is enabled.
#[inline]
fn phase_mark(enabled: bool) -> Option<std::time::Instant> {
    enabled.then(std::time::Instant::now)
}

/// Credits an elapsed phase stopwatch to one [`ConvPhases`] field.
#[inline]
fn phase_add(
    sink: &mut Option<&mut ConvPhases>,
    started: Option<std::time::Instant>,
    field: impl FnOnce(&mut ConvPhases) -> &mut f64,
) {
    if let (Some(t), Some(ph)) = (started, sink.as_deref_mut()) {
        *field(ph) += t.elapsed().as_secs_f64() * 1e9;
    }
}

/// One mat-sized tile of a planned layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PlannedTile {
    mat: MatAddr,
    /// Row span [start, end) within the layer's input vector.
    rows: (usize, usize),
    /// Column span [start, end) within the layer's output vector.
    cols: (usize, usize),
    /// The tile's SA shift (read back after programming).
    shift: u8,
}

/// One stage of the compiled plan: a contiguous run of layers placed on
/// one bank of the slice the plan was compiled against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PlannedStage {
    /// Index into the bank slice handed to
    /// [`CommandRunner::compile_pipeline`].
    bank: usize,
    /// Layer span [start, end) within the plan's layer list.
    layers: (usize, usize),
}

/// What a planned layer computes per crossbar evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum PlannedOp {
    /// Fully-connected: one evaluation over the whole input vector.
    Fc,
    /// Convolution: one evaluation per output pixel over an im2col
    /// window gathered from the `[in_ch, in_h, in_w]` activation.
    Conv {
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
        /// Square kernel edge.
        kernel: usize,
        /// Zero padding on each side (padded taps stage code 0).
        padding: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Output height.
        out_h: usize,
        /// Output width.
        out_w: usize,
        /// Whether the layer runs the weight-stationary row-reuse
        /// schedule: `kernel` input rows resident in the FF buffer (halo
        /// rows reused across output rows) plus a chunk of gathered
        /// windows, instead of staging one window per output pixel.
        /// Decided at compile time by [`prime_analyze::conv_staging`].
        resident: bool,
        /// Output pixels evaluated per staged window chunk (1 when not
        /// resident).
        chunk_pixels: usize,
    },
    /// Pooling on the Fig. 4 C column-mux hardware: winner-code max or
    /// the 1/n-weight mean dot product. Consumes no mats.
    Pool {
        /// Mean pooling (`level * sum`) instead of winner-code max.
        mean: bool,
        /// Channels.
        channels: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Window edge (stride = window).
        window: usize,
        /// Quantized 1/n reciprocal conductance level (mean only).
        level: i64,
    },
}

/// One planned layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PlannedLayer {
    op: PlannedOp,
    tiles: Vec<PlannedTile>,
    inputs: usize,
    outputs: usize,
    /// Bias in merged full-precision units.
    bias_units: Vec<i64>,
    /// Right shift taking merged full-precision sums to 6-bit codes for
    /// the next layer (calibrated).
    requant_shift: u8,
    relu: bool,
    /// Buffer address of this layer's staging region (the full input
    /// vector for FC, one window for conv/pool).
    in_addr: BufAddr,
    /// Buffer address where this layer's output codes are staged.
    out_addr: BufAddr,
}

impl PlannedLayer {
    /// Words of FF buffer the layer's input staging region occupies: the
    /// full input vector for FC, the row ring plus window chunk for a
    /// resident conv, one im2col / pooling window otherwise (the feature
    /// maps themselves stay Mem-resident).
    fn staging(op: &PlannedOp, inputs: usize) -> usize {
        match *op {
            PlannedOp::Fc => inputs,
            PlannedOp::Conv { in_ch, kernel, in_w, resident, chunk_pixels, .. } => {
                if resident {
                    kernel * in_ch * in_w + chunk_pixels * in_ch * kernel * kernel
                } else {
                    in_ch * kernel * kernel
                }
            }
            PlannedOp::Pool { window, .. } => window * window,
        }
    }
}

/// A compiled, programmed, command-driven network.
///
/// # Examples
///
/// ```no_run
/// use prime_core::{BankController, CommandRunner};
/// use prime_nn::{Activation, FullyConnected, Layer, Network};
///
/// let net = Network::new(vec![
///     Layer::Fc(FullyConnected::new(16, 8, Activation::Relu)),
///     Layer::Fc(FullyConnected::new(8, 4, Activation::Identity)),
/// ])?;
/// let mut controller = BankController::new(2, 64, 4096, 8192);
/// let mut runner = CommandRunner::compile(&net, &mut controller, &[0.5; 16])?;
/// let out = runner.infer(&mut controller, &[0.5; 16])?;
/// assert_eq!(out.len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandRunner {
    layers: Vec<PlannedLayer>,
    /// Stage placement: contiguous layer spans on strictly increasing
    /// banks (a single stage on bank 0 for single-bank plans).
    stages: Vec<PlannedStage>,
    /// Scale of the network-input quantization (codes = value / scale).
    input_scale: f32,
    /// Combined output scale: real value = merged units * this.
    output_scale: f32,
    mats_used: usize,
    /// The composing scheme of the mats the plan was compiled for — the
    /// single source of truth for input/output code bounds.
    scheme: ComposingScheme,
}

impl CommandRunner {
    /// Compiles `net` (FC/conv/pool, ReLU/identity activations only)
    /// onto the controller's FF mats: quantizes weights, programs tiles,
    /// and calibrates every SA window and requantization shift with the
    /// representative `calibration_input`.
    ///
    /// The whole network is placed as one stage on this bank; use
    /// [`compile_pipeline`](Self::compile_pipeline) for networks that
    /// span banks.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] for unsupported layers or
    /// if the controller has too few mats.
    pub fn compile(
        net: &Network,
        controller: &mut BankController,
        calibration_input: &[f32],
    ) -> Result<Self, PrimeError> {
        Self::compile_pipeline(net, std::slice::from_mut(controller), &[], calibration_input)
    }

    /// Deploy-side capability check: one [`Code::P017`] diagnostic per
    /// layer the command runner cannot execute on the device (currently
    /// sigmoid activations, whose output units are not integer-exact).
    /// [`PrimeSystem::deploy`](crate::PrimeSystem) refuses deployment on
    /// any finding, so no network silently deploys with layers the
    /// runner cannot run.
    ///
    /// [`Code::P017`]: prime_analyze::Code::P017
    pub fn capability_diagnostics(net: &Network) -> Vec<prime_analyze::Diagnostic> {
        let mut diags = Vec::new();
        for (index, layer) in net.layers().iter().enumerate() {
            let activation = match layer {
                Layer::Fc(fc) => fc.activation(),
                Layer::Conv(conv) => conv.activation(),
                Layer::Pool(_) => continue,
            };
            if matches!(activation, Activation::Sigmoid) {
                diags.push(prime_analyze::Diagnostic::new(
                    prime_analyze::Code::P017,
                    prime_analyze::Span::Layer { index, entity: layer.describe() },
                    "sigmoid is not integer-exact on the output units; the command \
                     runner executes ReLU/identity only (use FfExecutor)",
                ));
            }
        }
        diags
    }

    /// Resolves a compiler [`PipelineStage`] list into per-stage layer
    /// spans. Stage legality (banks strictly increasing, contiguous layer
    /// coverage, no empty stage, banks in range) is checked by the shared
    /// [`prime_analyze::check_pipeline`] pass — the same rules the static
    /// deployment verifier applies — so the runtime and the verifier can
    /// never drift apart. An empty `pipeline` means one stage holding
    /// every layer on bank 0.
    fn resolve_stages(
        pipeline: &[PipelineStage],
        n_layers: usize,
        n_banks: usize,
    ) -> Result<Vec<PlannedStage>, PrimeError> {
        if pipeline.is_empty() {
            return Ok(vec![PlannedStage {
                bank: 0,
                layers: (0, n_layers),
            }]);
        }
        let diags = prime_analyze::check_pipeline(pipeline, n_layers, n_banks, None);
        if let Some(err) = diags
            .iter()
            .find(|d| d.severity == prime_analyze::Severity::Error)
        {
            return Err(PrimeError::MappingMismatch {
                reason: err.to_string(),
            });
        }
        let mut stages = Vec::with_capacity(pipeline.len());
        let mut next_layer = 0usize;
        for stage in pipeline {
            let start = next_layer;
            next_layer += stage.layers.len();
            stages.push(PlannedStage {
                bank: stage.bank,
                layers: (start, next_layer),
            });
        }
        Ok(stages)
    }

    /// Compiles `net` across `banks` following the compiler's
    /// `Mapping::pipeline` stage list (paper §IV-B large-scale mapping):
    /// each stage's layers are tiled, programmed, and calibrated on the
    /// stage's assigned bank. The stage list is the single source of
    /// truth for *where* layers run; an empty `pipeline` places the whole
    /// network on `banks[0]` (the small/medium-scale case).
    ///
    /// Placement does not change arithmetic: a pipelined plan produces
    /// bit-identical outputs to the same network compiled onto one
    /// sufficiently large bank.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] for unsupported layers, a
    /// malformed stage list, or a stage needing more FF mats than its
    /// bank provides.
    pub fn compile_pipeline(
        net: &Network,
        banks: &mut [BankController],
        pipeline: &[PipelineStage],
        calibration_input: &[f32],
    ) -> Result<Self, PrimeError> {
        if banks.is_empty() {
            return Err(PrimeError::MappingMismatch {
                reason: "cannot compile onto zero banks".to_string(),
            });
        }
        // The calibration vector stands in for a representative input:
        // SA and requant calibration index it as the first layer's
        // activation, so a wrong-sized one is a caller error.
        if calibration_input.len() != net.inputs() {
            return Err(PrimeError::MappingMismatch {
                reason: format!(
                    "{} calibration values for a {}-input network",
                    calibration_input.len(),
                    net.inputs()
                ),
            });
        }
        let stages = Self::resolve_stages(pipeline, net.layers().len(), banks.len())?;
        // Code bounds come from the mats' composing scheme (Pin/Po), not
        // hard-coded constants — the quantizer and every downstream clamp
        // share this single source of truth. All banks are constructed
        // identically, so the first stage's bank is representative.
        let first_bank = &banks[stages[0].bank];
        let (scheme, mat_rows, mat_cols) =
            if first_bank.ff_subarrays() * first_bank.mats_per_subarray() > 0 {
                let mat = first_bank.mat(MatAddr {
                    subarray: 0,
                    mat: 0,
                });
                (mat.scheme(), mat.max_rows(), mat.max_cols())
            } else {
                (ComposingScheme::prime_default(), 256, 128)
            };
        let in_code_max = f32::from(scheme.input_code_max());
        let code_max = i64::from(scheme.input_code_max());
        let mut planned = Vec::new();
        let mut mats_used = 0usize;

        // Input quantization scale from the calibration vector.
        let in_max = calibration_input
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()))
            .max(1e-6);
        let input_scale = in_max / in_code_max;
        let mut codes: Vec<i64> = calibration_input
            .iter()
            .map(|&v| ((v / input_scale).round().clamp(0.0, in_code_max)) as i64)
            .collect();
        let mut value_scale = input_scale; // real value of one input code unit

        for stage in &stages {
            let controller = &mut banks[stage.bank];
            let mats_per_subarray = controller.mats_per_subarray();
            let total_mats = controller.ff_subarrays() * mats_per_subarray;
            // Mat allocation and buffer addressing restart per bank: each
            // stage owns its bank's FF mats and Buffer subarray.
            let mut next_mat = 0usize;
            let mut buf_cursor: u64 = 0;
            for layer in &net.layers()[stage.layers.0..stage.layers.1] {
                let plan = match layer {
                    Layer::Fc(fc) => {
                        let relu = Self::integer_activation(fc.activation())?;
                        let (inputs, outputs) = (fc.inputs(), fc.outputs());
                        // Quantize weights to composed 8-bit codes.
                        let w = fc.weights().data();
                        let w_max = w.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-6);
                        let w_scale = w_max / 255.0;
                        let weight_code = |r: usize, c: usize| {
                            // Weight matrix is [outputs, inputs]; the
                            // crossbar wants [inputs, outputs].
                            ((w[c * inputs + r] / w_scale).round().clamp(-255.0, 255.0)) as i32
                        };
                        let tiles = Self::program_tiles(
                            controller,
                            &mut next_mat,
                            (mats_per_subarray, total_mats),
                            (inputs, outputs),
                            (mat_rows, mat_cols),
                            &weight_code,
                            std::slice::from_ref(&codes),
                        )?;
                        // Bias in full-precision units:
                        // bias_real / (value_scale * w_scale).
                        let unit = value_scale * w_scale;
                        let bias_units: Vec<i64> = fc
                            .bias()
                            .iter()
                            .map(|&b| (b / unit).round() as i64)
                            .collect();
                        // Calibrate the requantization shift from the
                        // merged calibration activations.
                        let merged = Self::merge_reference(
                            &tiles,
                            controller,
                            &codes,
                            outputs,
                            &bias_units,
                        )?;
                        let out_max =
                            merged.iter().map(|&v| v.abs()).max().unwrap_or(1).max(1);
                        let requant_shift = Self::requant_shift(out_max, &scheme);
                        // Advance the calibration activations.
                        codes = merged
                            .into_iter()
                            .map(|v| {
                                let v = if relu { v.max(0) } else { v };
                                (v >> requant_shift).clamp(-code_max, code_max)
                            })
                            .collect();
                        value_scale = unit * f32::from(requant_shift).exp2();
                        PlannedLayer {
                            op: PlannedOp::Fc,
                            tiles,
                            inputs,
                            outputs,
                            bias_units,
                            requant_shift,
                            relu,
                            in_addr: BufAddr(0),
                            out_addr: BufAddr(0),
                        }
                    }
                    Layer::Conv(conv) => {
                        let relu = Self::integer_activation(conv.activation())?;
                        let (in_ch, out_ch) = (conv.in_channels(), conv.out_channels());
                        let (k, padding) = (conv.kernel(), conv.padding());
                        let (oh, ow) = (conv.out_h(), conv.out_w());
                        let (inputs, outputs) = (conv.inputs(), conv.outputs());
                        let rows = in_ch * k * k;
                        // Deploy-time staging plan: the same accounting
                        // the static verifier's P019/P020 checks use.
                        let staging = prime_analyze::conv_staging(
                            in_ch,
                            k,
                            conv.in_w(),
                            ow,
                            controller.buffer().capacity(),
                        );
                        let op = PlannedOp::Conv {
                            in_ch,
                            out_ch,
                            kernel: k,
                            padding,
                            in_h: conv.in_h(),
                            in_w: conv.in_w(),
                            out_h: oh,
                            out_w: ow,
                            resident: staging.resident,
                            chunk_pixels: staging.chunk_pixels,
                        };
                        let w = conv.weights().data();
                        let w_max = w.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-6);
                        let w_scale = w_max / 255.0;
                        let weight_code = |r: usize, c: usize| {
                            // Row r walks (ic, ky, kx); weights are
                            // [out_ch, in_ch, k, k] and the crossbar wants
                            // the kernel matrix [rows, out_ch].
                            let (ic, rem) = (r / (k * k), r % (k * k));
                            let value = w[((c * in_ch + ic) * k + rem / k) * k + rem % k];
                            ((value / w_scale).round().clamp(-255.0, 255.0)) as i32
                        };
                        // Every im2col window of the calibration
                        // activation: SA and requant calibration sweep the
                        // layer's real working set.
                        let mut windows: Vec<Vec<i64>> = Vec::with_capacity(oh * ow);
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut win = Vec::with_capacity(rows);
                                Self::gather_window(&op, &codes, oy, ox, &mut win);
                                windows.push(win);
                            }
                        }
                        let tiles = Self::program_tiles(
                            controller,
                            &mut next_mat,
                            (mats_per_subarray, total_mats),
                            (rows, out_ch),
                            (mat_rows, mat_cols),
                            &weight_code,
                            &windows,
                        )?;
                        let unit = value_scale * w_scale;
                        let bias_units: Vec<i64> = conv
                            .bias()
                            .iter()
                            .map(|&b| (b / unit).round() as i64)
                            .collect();
                        // Requant calibration over every output pixel.
                        let mut merged_all = Vec::with_capacity(windows.len());
                        let mut out_max = 1i64;
                        for win in &windows {
                            let m = Self::merge_reference(
                                &tiles, controller, win, out_ch, &bias_units,
                            )?;
                            out_max =
                                out_max.max(m.iter().map(|&v| v.abs()).max().unwrap_or(1));
                            merged_all.push(m);
                        }
                        let requant_shift = Self::requant_shift(out_max, &scheme);
                        let mut next = vec![0i64; outputs];
                        for (p, m) in merged_all.iter().enumerate() {
                            let (oy, ox) = (p / ow, p % ow);
                            for (oc, &v) in m.iter().enumerate() {
                                let v = if relu { v.max(0) } else { v };
                                next[(oc * oh + oy) * ow + ox] =
                                    (v >> requant_shift).clamp(-code_max, code_max);
                            }
                        }
                        codes = next;
                        value_scale = unit * f32::from(requant_shift).exp2();
                        PlannedLayer {
                            op,
                            tiles,
                            inputs,
                            outputs,
                            bias_units,
                            requant_shift,
                            relu,
                            in_addr: BufAddr(0),
                            out_addr: BufAddr(0),
                        }
                    }
                    Layer::Pool(pool) => {
                        let win = pool.window();
                        let n = win * win;
                        let (inputs, outputs) = (pool.inputs(), pool.outputs());
                        let (channels, ih, iw) = (pool.channels(), pool.in_h(), pool.in_w());
                        let (oh, ow) = (ih / win, iw / win);
                        let mean = matches!(pool.kind(), PoolKind::Mean);
                        // The quantized 1/n reciprocal the mux cells
                        // program (4-bit MLC budget). Software rescaling
                        // divides the level back out, so the mean stays
                        // exact as long as the level is nonzero.
                        let level = if mean {
                            i64::from(mean_pool_weights(n, scheme.weight_half_bits())?[0])
                        } else {
                            0
                        };
                        let op = PlannedOp::Pool {
                            mean,
                            channels,
                            in_h: ih,
                            in_w: iw,
                            window: win,
                            level,
                        };
                        // Digital preview of the pooled calibration
                        // activations, then the calibrated requant shift.
                        let mut next = vec![0i64; outputs];
                        let mut winbuf = Vec::with_capacity(n);
                        let mut out_max = 1i64;
                        for c in 0..channels {
                            for oy in 0..oh {
                                for ox in 0..ow {
                                    Self::gather_pool_window(
                                        &op, &codes, c, oy, ox, &mut winbuf,
                                    );
                                    let m = Self::pool_reduce(&op, &mut winbuf)?;
                                    out_max = out_max.max(m.abs());
                                    next[(c * oh + oy) * ow + ox] = m;
                                }
                            }
                        }
                        // Winner-code max selects among existing codes, so
                        // only the mean's level-scaled sums need requant.
                        let requant_shift = if mean {
                            Self::requant_shift(out_max, &scheme)
                        } else {
                            0
                        };
                        for v in &mut next {
                            *v = (*v >> requant_shift).clamp(-code_max, code_max);
                        }
                        codes = next;
                        if mean {
                            value_scale = value_scale * f32::from(requant_shift).exp2()
                                / (level * n as i64) as f32;
                        }
                        PlannedLayer {
                            op,
                            tiles: Vec::new(),
                            inputs,
                            outputs,
                            bias_units: Vec::new(),
                            requant_shift,
                            relu: false,
                            in_addr: BufAddr(0),
                            out_addr: BufAddr(0),
                        }
                    }
                };
                let mut plan = plan;
                plan.in_addr = BufAddr(buf_cursor);
                buf_cursor += PlannedLayer::staging(&plan.op, plan.inputs) as u64;
                plan.out_addr = BufAddr(buf_cursor);
                planned.push(plan);
            }
            mats_used += next_mat;
        }
        Ok(CommandRunner {
            layers: planned,
            stages,
            input_scale,
            output_scale: value_scale,
            mats_used,
            scheme,
        })
    }

    /// Maps an activation onto the integer-exact output units.
    fn integer_activation(activation: Activation) -> Result<bool, PrimeError> {
        match activation {
            Activation::Relu => Ok(true),
            Activation::Identity => Ok(false),
            Activation::Sigmoid => Err(PrimeError::MappingMismatch {
                reason: "command runner covers the integer-exact output units \
                         (ReLU/identity); use FfExecutor for sigmoid networks"
                    .to_string(),
            }),
        }
    }

    /// Right shift taking merged sums with peak magnitude `out_max` down
    /// to the scheme's input precision, so the next layer's codes fit its
    /// Pin-bit drivers.
    fn requant_shift(out_max: i64, scheme: &ComposingScheme) -> u8 {
        let bits = 64 - out_max.leading_zeros() as i64;
        (bits - i64::from(scheme.input_bits())).max(0) as u8
    }

    /// Tiles a `rows`x`cols` quantized weight matrix over the bank's FF
    /// mats: allocates mats in order, programs each tile's composed
    /// codes, and calibrates its SA window against every calibration
    /// vector (the full input for FC, every im2col window for conv).
    #[allow(clippy::too_many_arguments)]
    fn program_tiles(
        controller: &mut BankController,
        next_mat: &mut usize,
        (mats_per_subarray, total_mats): (usize, usize),
        (rows, cols): (usize, usize),
        (mat_rows, mat_cols): (usize, usize),
        weight_code: &dyn Fn(usize, usize) -> i32,
        calib: &[Vec<i64>],
    ) -> Result<Vec<PlannedTile>, PrimeError> {
        let row_spans: Vec<(usize, usize)> = (0..rows.div_ceil(mat_rows))
            .map(|t| (t * mat_rows, ((t + 1) * mat_rows).min(rows)))
            .collect();
        let col_spans: Vec<(usize, usize)> = (0..cols.div_ceil(mat_cols))
            .map(|t| (t * mat_cols, ((t + 1) * mat_cols).min(cols)))
            .collect();
        let mut tiles = Vec::new();
        for &(r0, r1) in &row_spans {
            for &(c0, c1) in &col_spans {
                if *next_mat >= total_mats {
                    return Err(PrimeError::MappingMismatch {
                        reason: "network needs more FF mats than the bank provides"
                            .to_string(),
                    });
                }
                let mat = MatAddr {
                    subarray: *next_mat / mats_per_subarray,
                    mat: *next_mat % mats_per_subarray,
                };
                *next_mat += 1;
                let (tr, tc) = (r1 - r0, c1 - c0);
                let mut tile_codes = Vec::with_capacity(tr * tc);
                for r in r0..r1 {
                    for c in c0..c1 {
                        tile_codes.push(weight_code(r, c));
                    }
                }
                controller.execute(Command::SetFunction {
                    mat,
                    function: MatFunction::Program,
                })?;
                controller
                    .mat_mut(mat)
                    .program_composed(&tile_codes, tr, tc)?;
                controller.execute(Command::SetFunction {
                    mat,
                    function: MatFunction::Compute,
                })?;
                // Calibrate the SA window on the calibration codes.
                let mut max_abs = 1i64;
                for v in calib {
                    for c in 0..tc {
                        let mut acc = 0i64;
                        for (r, &x) in v[r0..r1].iter().enumerate() {
                            acc += x * i64::from(tile_codes[r * tc + c]);
                        }
                        max_abs = max_abs.max(acc.abs());
                    }
                }
                controller.mat_mut(mat).calibrate_output_window(2 * max_abs);
                let shift = controller.mat(mat).output_shift();
                tiles.push(PlannedTile {
                    mat,
                    rows: (r0, r1),
                    cols: (c0, c1),
                    shift,
                });
            }
        }
        Ok(tiles)
    }

    /// Number of pipeline stages the plan executes (1 for single-bank
    /// plans).
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The bank (index into the compile-time bank slice) hosting `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn stage_bank(&self, stage: usize) -> usize {
        self.stages[stage].bank
    }

    /// Banks the plan occupies (`last stage bank + 1`).
    pub fn banks_spanned(&self) -> usize {
        self.stages.last().map_or(1, |s| s.bank + 1)
    }

    /// Replicates this compiled plan onto `dst`, a geometry-identical
    /// bank group, without recompiling: quantization, SA windows, and
    /// requantization shifts are carried by the plan itself, so a replica
    /// only needs the programmed crossbar pairs. Each placed tile's mat
    /// is either deep-copied (replicate-dense: the replica owns its
    /// bytes) or adopted by reference (shared-kernel: the replica's mat
    /// aliases the source tile, adding zero bank state) according to the
    /// per-layer `layer_strategies` — the compiler's
    /// [`MappingStrategy`] selection, indexed by global layer; missing
    /// entries fall back to replicate-dense.
    ///
    /// Outputs are bit-identical to an independent compile onto `dst`:
    /// weight programming is deterministic, so a copied pair equals a
    /// reprogrammed one, and an aliased pair is read through exactly the
    /// codes every placement would have programmed.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] if either group is
    /// narrower than the banks this plan spans.
    pub fn replicate_onto(
        &self,
        src: &[BankController],
        dst: &mut [BankController],
        layer_strategies: &[MappingStrategy],
    ) -> Result<Self, PrimeError> {
        let spanned = self.banks_spanned();
        if src.len() < spanned || dst.len() < spanned {
            return Err(PrimeError::MappingMismatch {
                reason: format!(
                    "plan spans {spanned} bank(s) but the replica groups hold {} -> {}",
                    src.len(),
                    dst.len()
                ),
            });
        }
        for stage in &self.stages {
            for (index, layer) in self
                .layers
                .iter()
                .enumerate()
                .take(stage.layers.1)
                .skip(stage.layers.0)
            {
                let strategy = layer_strategies
                    .get(index)
                    .copied()
                    .unwrap_or(MappingStrategy::ReplicateDense);
                for tile in &layer.tiles {
                    let source = src[stage.bank].mat(tile.mat);
                    *dst[stage.bank].mat_mut(tile.mat) = match strategy {
                        // `FfMat::clone` aliases the programmed pair
                        // behind a shared refcounted handle.
                        MappingStrategy::SharedKernel => source.clone(),
                        MappingStrategy::ReplicateDense => source.deep_clone(),
                    };
                }
            }
        }
        Ok(self.clone())
    }

    /// Buffer address of `stage`'s input staging region and the logical
    /// width of its input vector.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn stage_input(&self, stage: usize) -> (BufAddr, usize) {
        let layer = &self.layers[self.stages[stage].layers.0];
        (layer.in_addr, layer.inputs)
    }

    /// Buffer address of `stage`'s output staging region and the logical
    /// width of its output vector (the source of the inter-bank transfer
    /// into the next stage).
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn stage_output(&self, stage: usize) -> (BufAddr, usize) {
        let layer = &self.layers[self.stages[stage].layers.1 - 1];
        (layer.out_addr, layer.outputs)
    }

    /// Burst width for streaming a conv/pool boundary activation through
    /// the buffer (shared with the verifier's P019 accounting).
    fn io_chunk(words: usize) -> usize {
        words.clamp(1, prime_analyze::WINDOW_IO_CHUNK_WORDS)
    }

    /// Moves `stage`'s boundary output out of its bank, leaving it in
    /// `codes`. An FC boundary is buffer-resident: the stored vector at
    /// the stage output address is loaded back in full. A conv/pool
    /// boundary's feature map stays Mem-resident — `codes` already holds
    /// it after [`run_stage`](Self::run_stage) — and the transfer streams
    /// through the boundary staging region in bursts.
    ///
    /// # Errors
    ///
    /// Returns buffer errors on an undersized buffer.
    pub fn stage_transfer_out(
        &self,
        stage: usize,
        bank: &mut BankController,
        codes: &mut Vec<i64>,
    ) -> Result<(), PrimeError> {
        let layer = &self.layers[self.stages[stage].layers.1 - 1];
        match layer.op {
            PlannedOp::Fc => bank.transfer_out(layer.out_addr, layer.outputs, codes),
            _ => {
                let chunk = Self::io_chunk(layer.outputs);
                for burst in codes.chunks(chunk) {
                    bank.buffer_mut().store(layer.out_addr, burst)?;
                }
                Ok(())
            }
        }
    }

    /// Counterpart of [`stage_transfer_out`](Self::stage_transfer_out):
    /// lands `codes` in `stage`'s bank — the full vector at the stage
    /// input address for an FC boundary, bursts through the staging
    /// region for a conv/pool boundary.
    ///
    /// # Errors
    ///
    /// Returns buffer errors on an undersized buffer.
    pub fn stage_transfer_in(
        &self,
        stage: usize,
        bank: &mut BankController,
        codes: &[i64],
    ) -> Result<(), PrimeError> {
        let layer = &self.layers[self.stages[stage].layers.0];
        match layer.op {
            PlannedOp::Fc => bank.transfer_in(layer.in_addr, codes),
            _ => {
                let chunk = Self::io_chunk(layer.inputs);
                for burst in codes.chunks(chunk) {
                    bank.buffer_mut().store(layer.in_addr, burst)?;
                }
                Ok(())
            }
        }
    }

    /// FF mats the plan occupies.
    pub fn mats_used(&self) -> usize {
        self.mats_used
    }

    /// One short label per planned layer, in execution order across all
    /// stages — the row labels for per-layer timing breakdowns from
    /// [`infer_timed_into`](Self::infer_timed_into).
    pub fn layer_labels(&self) -> Vec<String> {
        self.layers
            .iter()
            .map(|plan| {
                let relu = if plan.relu { " relu" } else { "" };
                match plan.op {
                    PlannedOp::Fc => format!("fc {}-{}{relu}", plan.inputs, plan.outputs),
                    PlannedOp::Conv { in_ch, out_ch, kernel, out_h, out_w, .. } => {
                        format!("conv{kernel}x{kernel} {in_ch}-{out_ch}ch {out_h}x{out_w}{relu}")
                    }
                    PlannedOp::Pool { mean, channels, window, .. } => {
                        let kind = if mean { "meanpool" } else { "maxpool" };
                        format!("{kind}{window}x{window} {channels}ch")
                    }
                }
            })
            .collect()
    }

    /// Exports the compiled plan as a [`prime_analyze::ProgramPlan`] for
    /// the Pass-3 abstract interpreter: planned ops, buffer addressing,
    /// calibrated shifts, stage placement, and the live post-deploy tile
    /// state (alias sharing and mat function) read from `banks` — the
    /// same bank slice the plan was compiled against, in stage order.
    /// Read-only: no command is issued and no mat state changes.
    pub fn program_plan(&self, banks: &[BankController]) -> prime_analyze::ProgramPlan {
        let layer_bank: Vec<usize> = {
            let mut map = vec![0usize; self.layers.len()];
            for stage in &self.stages {
                for slot in map
                    .iter_mut()
                    .take(stage.layers.1.min(self.layers.len()))
                    .skip(stage.layers.0)
                {
                    *slot = stage.bank;
                }
            }
            map
        };
        let layers = self
            .layers
            .iter()
            .zip(&layer_bank)
            .map(|(plan, &bank)| {
                let op = match plan.op {
                    PlannedOp::Fc => prime_analyze::ProgramOp::Fc,
                    PlannedOp::Conv {
                        in_ch,
                        out_ch,
                        kernel,
                        padding,
                        in_h,
                        in_w,
                        out_h,
                        out_w,
                        resident,
                        chunk_pixels,
                    } => prime_analyze::ProgramOp::Conv {
                        in_ch,
                        out_ch,
                        kernel,
                        padding,
                        in_h,
                        in_w,
                        out_h,
                        out_w,
                        resident,
                        chunk_pixels,
                    },
                    PlannedOp::Pool { mean, channels, in_h, in_w, window, level } => {
                        prime_analyze::ProgramOp::Pool {
                            mean,
                            channels,
                            in_h,
                            in_w,
                            window,
                            level,
                        }
                    }
                };
                let tiles = plan
                    .tiles
                    .iter()
                    .map(|tile| {
                        let state = banks.get(bank).map(|b| {
                            let mat = b.mat(tile.mat);
                            (mat.shared_tile().is_some(), mat.function() == MatFunction::Program)
                        });
                        let (aliased, write_armed) = state.unwrap_or((false, false));
                        prime_analyze::ProgramTile { aliased, write_armed }
                    })
                    .collect();
                prime_analyze::ProgramLayer {
                    op,
                    inputs: plan.inputs,
                    outputs: plan.outputs,
                    in_addr: plan.in_addr.0,
                    out_addr: plan.out_addr.0,
                    requant_shift: plan.requant_shift,
                    relu: plan.relu,
                    bias_peak: plan.bias_units.iter().map(|b| b.abs()).max().unwrap_or(0),
                    tiles,
                }
            })
            .collect();
        let stages = self
            .stages
            .iter()
            .map(|s| prime_analyze::ProgramStage { bank: s.bank, layers: s.layers })
            .collect();
        let buffer_words = banks
            .iter()
            .map(|b| b.buffer().capacity())
            .min()
            .unwrap_or(0);
        prime_analyze::ProgramPlan {
            layers,
            stages,
            buffer_words,
            recycle_credits: prime_compiler::pipeline_credits(self.stages.len()),
        }
    }

    /// Full-precision merged sums of one layer on given input codes,
    /// via actual mat computation (used for calibration and inference).
    fn merge_reference(
        tiles: &[PlannedTile],
        controller: &mut BankController,
        codes: &[i64],
        outputs: usize,
        bias_units: &[i64],
    ) -> Result<Vec<i64>, PrimeError> {
        let mut acc = Vec::new();
        let mut bank = BankScratch::new();
        let mut tile_out = Vec::new();
        let mut out = Vec::new();
        Self::merge_reference_into(
            tiles,
            controller,
            codes,
            outputs,
            bias_units,
            NoAnalog::None,
            &mut acc,
            &mut bank,
            &mut tile_out,
            &mut out,
        )?;
        Ok(out)
    }

    /// [`merge_reference`](Self::merge_reference) into caller-owned
    /// buffers: the merge adder's precision-control registers, the bank
    /// compute scratch, and the output all reuse their storage, so the
    /// merge kernel performs zero steady-state heap allocation.
    #[allow(clippy::too_many_arguments)]
    fn merge_reference_into<R: rand::Rng + ?Sized>(
        tiles: &[PlannedTile],
        controller: &mut BankController,
        codes: &[i64],
        outputs: usize,
        bias_units: &[i64],
        mut analog: Analog<'_, R>,
        acc: &mut Vec<PrecisionController>,
        bank: &mut BankScratch,
        tile_out: &mut Vec<i64>,
        out: &mut Vec<i64>,
    ) -> Result<(), PrimeError> {
        acc.clear();
        acc.resize_with(outputs, PrecisionController::new);
        for (o, &b) in acc.iter_mut().zip(bias_units) {
            o.accumulate(b, 0);
        }
        for tile in tiles {
            let (r0, r1) = tile.rows;
            // Stage the tile's input slice through the buffer: the
            // `load` command moves it into the mat latch.
            let slice = &codes[r0..r1];
            controller.buffer_mut().store(BufAddr(0), slice)?;
            controller.execute(Command::Load {
                from: BufAddr(0),
                to: FfAddr {
                    mat: tile.mat,
                    offset: 0,
                },
                bytes: (slice.len() * 8) as u64,
            })?;
            match analog.as_mut() {
                None => controller.compute_mat_into(tile.mat, bank, tile_out)?,
                Some((noise, rng)) => controller
                    .compute_mat_analog_into(tile.mat, noise, &mut **rng, bank, tile_out)?,
            }
            let (c0, c1) = tile.cols;
            for (i, &v) in tile_out.iter().enumerate().take(c1 - c0) {
                // Expand the tile's truncated code back to full-precision
                // units before the merge add.
                acc[c0 + i].accumulate(v, tile.shift);
            }
        }
        out.clear();
        out.extend(acc.iter().map(|m| m.value()));
        Ok(())
    }

    /// Gathers the im2col window of conv output pixel `(oy, ox)` from a
    /// `[in_ch, in_h, in_w]` activation into `window`. Padded taps push
    /// code 0 — exactly the contribution of a grounded input line on the
    /// unsigned drivers.
    fn gather_window(
        op: &PlannedOp,
        codes: &[i64],
        oy: usize,
        ox: usize,
        window: &mut Vec<i64>,
    ) {
        window.clear();
        let PlannedOp::Conv { in_ch, kernel, padding, in_h, in_w, .. } = *op else {
            return;
        };
        for ic in 0..in_ch {
            for ky in 0..kernel {
                for kx in 0..kernel {
                    // Out-of-range taps wrap past in_h/in_w and read 0.
                    let iy = (oy + ky).wrapping_sub(padding);
                    let ix = (ox + kx).wrapping_sub(padding);
                    window.push(if iy < in_h && ix < in_w {
                        codes[(ic * in_h + iy) * in_w + ix]
                    } else {
                        0
                    });
                }
            }
        }
    }

    /// Appends the im2col window of conv output pixel `(oy, ox)` gathered
    /// from the resident row ring onto `out` (no clear — chunk gathers
    /// append pixel-major). The ring keys input rows by `iy % kernel`
    /// with `[slot][in_ch][in_w]` layout; for every row the ring holds,
    /// the result is element-identical to
    /// [`gather_window`](Self::gather_window) on the raw activation.
    fn gather_window_from_ring(
        op: &PlannedOp,
        ring: &[i64],
        oy: usize,
        ox: usize,
        out: &mut Vec<i64>,
    ) {
        let PlannedOp::Conv { in_ch, kernel, padding, in_h, in_w, .. } = *op else {
            return;
        };
        for ic in 0..in_ch {
            for ky in 0..kernel {
                // Out-of-range taps wrap past in_h/in_w and read 0.
                let iy = (oy + ky).wrapping_sub(padding);
                for kx in 0..kernel {
                    let ix = (ox + kx).wrapping_sub(padding);
                    out.push(if iy < in_h && ix < in_w {
                        ring[((iy % kernel) * in_ch + ic) * in_w + ix]
                    } else {
                        0
                    });
                }
            }
        }
    }

    /// Gathers the pooling window of output element `(c, oy, ox)` from a
    /// `[channels, in_h, in_w]` activation into `window`.
    fn gather_pool_window(
        op: &PlannedOp,
        codes: &[i64],
        c: usize,
        oy: usize,
        ox: usize,
        window: &mut Vec<i64>,
    ) {
        window.clear();
        let PlannedOp::Pool { in_h, in_w, window: win, .. } = *op else {
            return;
        };
        for wy in 0..win {
            for wx in 0..win {
                window.push(codes[(c * in_h + oy * win + wy) * in_w + ox * win + wx]);
            }
        }
    }

    /// Reduces one staged pooling window to its merged (pre-requant)
    /// value: the 1/n-weight dot product `level * sum(codes)` for mean
    /// pooling, or the winner-code maximum for max pooling. Mutates
    /// `window` in place (the max reduction reuses it as its register
    /// file), so the inference hot path allocates nothing.
    fn pool_reduce(op: &PlannedOp, window: &mut Vec<i64>) -> Result<i64, PrimeError> {
        let PlannedOp::Pool { mean, level, .. } = *op else {
            return Err(PrimeError::Internal {
                reason: "pool_reduce on a non-pool layer".to_string(),
            });
        };
        if window.is_empty() {
            return Err(PrimeError::Internal {
                reason: "empty pooling window".to_string(),
            });
        }
        if mean {
            return Ok(level * window.iter().sum::<i64>());
        }
        // Repeated 4:1 winner-code steps; short groups are padded with
        // their first element, exactly as MaxPoolUnit::pool does.
        let unit = MaxPoolUnit::new();
        while window.len() > 1 {
            let mut w = 0;
            for g in (0..window.len()).step_by(4) {
                let end = (g + 4).min(window.len());
                let mut group = [window[g]; 4];
                group[..end - g].copy_from_slice(&window[g..end]);
                window[w] = unit.pool4(group);
                w += 1;
            }
            window.truncate(w);
        }
        Ok(window[0])
    }

    /// Routes one merged value to its destination: requantized codes for
    /// an interior layer, real-valued output for the network's final
    /// layer.
    fn emit(
        plan: &PlannedLayer,
        final_unit: f32,
        fwd_code_max: i64,
        idx: usize,
        v: i64,
        next_codes: &mut [i64],
        final_out: &mut Option<&mut Vec<f32>>,
    ) {
        let v = if plan.relu { v.max(0) } else { v };
        match final_out {
            Some(out) => out[idx] = v as f32 * final_unit,
            None => {
                next_codes[idx] = (v >> plan.requant_shift).clamp(-fwd_code_max, fwd_code_max)
            }
        }
    }

    /// Runs one inference entirely through controller commands: the input
    /// is quantized, staged into the Buffer subarray, flowed through
    /// every planned layer, and the final merged values are rescaled to
    /// real outputs.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] or mat errors on a
    /// mis-sized input.
    pub fn infer(
        &mut self,
        controller: &mut BankController,
        input: &[f32],
    ) -> Result<Vec<f32>, PrimeError> {
        let mut scratch = InferScratch::new();
        let mut out = Vec::new();
        self.infer_into(controller, input, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`infer`](Self::infer) into caller-owned buffers.
    ///
    /// `out` is cleared and refilled with the real-valued outputs. With a
    /// reused `scratch`, every buffer the forward pass touches — layer
    /// codes, mat latches, driver passes, the merge adder's registers —
    /// reuses its storage, so steady-state inference performs zero heap
    /// allocation (the command log is the only growth). Bit-identical to
    /// [`infer`](Self::infer).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] or mat errors on a
    /// mis-sized input.
    pub fn infer_into(
        &self,
        controller: &mut BankController,
        input: &[f32],
        scratch: &mut InferScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), PrimeError> {
        self.infer_impl(controller, input, NoAnalog::None, scratch, out, None, None)
    }

    /// [`infer_into`](Self::infer_into) that additionally records the
    /// wall-clock nanoseconds each planned layer took, one entry per
    /// entry of [`layer_labels`](Self::layer_labels) (`layer_ns` is
    /// cleared first). The stopwatch sits outside the layer datapath, so
    /// outputs stay bit-identical to [`infer_into`](Self::infer_into).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] or mat errors on a
    /// mis-sized input.
    pub fn infer_timed_into(
        &self,
        controller: &mut BankController,
        input: &[f32],
        scratch: &mut InferScratch,
        out: &mut Vec<f32>,
        layer_ns: &mut Vec<f64>,
    ) -> Result<(), PrimeError> {
        layer_ns.clear();
        self.infer_impl(controller, input, NoAnalog::None, scratch, out, Some(layer_ns), None)
    }

    /// [`infer_timed_into`](Self::infer_timed_into) that additionally
    /// accumulates the per-phase conv breakdown (stage / gather /
    /// evaluate / emit) into `conv_phases` (reset first). The phase
    /// stopwatches only run on conv layers and mark whole rows and
    /// chunks, so the per-layer totals stay representative.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] or mat errors on a
    /// mis-sized input.
    #[allow(clippy::too_many_arguments)]
    pub fn infer_profiled_into(
        &self,
        controller: &mut BankController,
        input: &[f32],
        scratch: &mut InferScratch,
        out: &mut Vec<f32>,
        layer_ns: &mut Vec<f64>,
        conv_phases: &mut ConvPhases,
    ) -> Result<(), PrimeError> {
        layer_ns.clear();
        *conv_phases = ConvPhases::default();
        self.infer_impl(
            controller,
            input,
            NoAnalog::None,
            scratch,
            out,
            Some(layer_ns),
            Some(conv_phases),
        )
    }

    /// Noisy-hardware variant of [`infer_into`](Self::infer_into): every
    /// tile evaluates through the analog voltage/conductance domain with
    /// read noise drawn from `rng` (plus any programming noise already
    /// applied to the mats). Tiles draw from `rng` in plan order — for
    /// resident conv layers, window chunks outer, then tiles, then the
    /// chunk's pixels (per-pixel fallback layers keep pixels outer,
    /// tiles inner) — and only sensed bitlines draw noise, so a given
    /// RNG state makes the inference reproducible. The draw order was
    /// re-pinned by the weight-stationary conv schedule (DESIGN.md §11);
    /// all engines share this loop and stay mutually bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] or mat errors on a
    /// mis-sized input.
    pub fn infer_noisy_into<R: rand::Rng + ?Sized>(
        &self,
        controller: &mut BankController,
        input: &[f32],
        noise: &NoiseModel,
        rng: &mut R,
        scratch: &mut InferScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), PrimeError> {
        self.infer_impl(controller, input, Some((noise, rng)), scratch, out, None, None)
    }

    #[allow(clippy::too_many_arguments)]
    fn infer_impl<R: rand::Rng + ?Sized>(
        &self,
        controller: &mut BankController,
        input: &[f32],
        analog: Analog<'_, R>,
        scratch: &mut InferScratch,
        out: &mut Vec<f32>,
        layer_ns: Option<&mut Vec<f64>>,
        conv_phases: Option<&mut ConvPhases>,
    ) -> Result<(), PrimeError> {
        if self.banks_spanned() > 1 {
            return Err(PrimeError::MappingMismatch {
                reason: format!(
                    "plan spans {} banks; drive it stage by stage or via PrimeSystem",
                    self.banks_spanned()
                ),
            });
        }
        // Single-bank plans hold exactly one stage covering every layer;
        // the scratch's resident code vector is the traveling activation.
        let mut codes = std::mem::take(&mut scratch.codes);
        let result = self.quantize_input(input, &mut codes).and_then(|()| {
            self.run_stage_impl(
                0,
                controller,
                analog,
                scratch,
                &mut codes,
                Some(out),
                layer_ns,
                conv_phases,
            )
        });
        scratch.codes = codes;
        result
    }

    /// Quantizes a real-valued network input into stage-0 input codes
    /// using the plan's calibrated input scale. `codes` is cleared and
    /// refilled (no steady-state allocation when reused).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] on a mis-sized input or an
    /// empty plan.
    pub fn quantize_input(&self, input: &[f32], codes: &mut Vec<i64>) -> Result<(), PrimeError> {
        let first = self.layers.first().ok_or(PrimeError::MappingMismatch {
            reason: "empty plan".to_string(),
        })?;
        if input.len() != first.inputs {
            return Err(PrimeError::MappingMismatch {
                reason: format!("{} inputs for a {}-input plan", input.len(), first.inputs),
            });
        }
        let in_code_max = f32::from(self.scheme.input_code_max());
        codes.clear();
        codes.extend(
            input
                .iter()
                .map(|&v| ((v / self.input_scale).round().clamp(0.0, in_code_max)) as i64),
        );
        Ok(())
    }

    /// Runs one pipeline stage on its bank: `codes` enters holding the
    /// stage's input activation codes and leaves holding its output codes
    /// (non-final stages). The final stage instead fills `out` with the
    /// real-valued network outputs. Digital path.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] for a missing `out` on the
    /// final stage, or buffer/mat errors.
    pub fn run_stage(
        &self,
        stage: usize,
        bank: &mut BankController,
        scratch: &mut InferScratch,
        codes: &mut Vec<i64>,
        out: Option<&mut Vec<f32>>,
    ) -> Result<(), PrimeError> {
        self.run_stage_impl(stage, bank, NoAnalog::None, scratch, codes, out, None, None)
    }

    /// Noisy-hardware variant of [`run_stage`](Self::run_stage): every
    /// tile of the stage evaluates through the analog domain drawing read
    /// noise from `rng`. Each stage's bank owns its own RNG stream, so
    /// overlapped (pipelined) and serial execution consume identical
    /// per-bank sequences.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] for a missing `out` on the
    /// final stage, or buffer/mat errors.
    #[allow(clippy::too_many_arguments)]
    pub fn run_stage_noisy<R: rand::Rng + ?Sized>(
        &self,
        stage: usize,
        bank: &mut BankController,
        noise: &NoiseModel,
        rng: &mut R,
        scratch: &mut InferScratch,
        codes: &mut Vec<i64>,
        out: Option<&mut Vec<f32>>,
    ) -> Result<(), PrimeError> {
        self.run_stage_impl(stage, bank, Some((noise, rng)), scratch, codes, out, None, None)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_stage_impl<R: rand::Rng + ?Sized>(
        &self,
        stage: usize,
        bank: &mut BankController,
        mut analog: Analog<'_, R>,
        scratch: &mut InferScratch,
        codes: &mut Vec<i64>,
        mut out: Option<&mut Vec<f32>>,
        mut layer_ns: Option<&mut Vec<f64>>,
        mut conv_phases: Option<&mut ConvPhases>,
    ) -> Result<(), PrimeError> {
        let (start, end) = self.stages[stage].layers;
        let last_global = self.layers.len() - 1;
        let fwd_code_max = i64::from(self.scheme.input_code_max());
        let InferScratch {
            next_codes,
            merge_acc,
            merged,
            tile_out,
            window,
            ring,
            row_slot,
            win_chunk,
            chunk_acc,
            bank: bank_scratch,
            ..
        } = scratch;
        for (i, plan) in self.layers[start..end].iter().enumerate() {
            let stopwatch = layer_ns.is_some().then(std::time::Instant::now);
            let is_final = start + i == last_global;
            let final_unit = self.output_scale / f32::from(plan.requant_shift).exp2();
            // Prepare the destination for indexed writes: the real-valued
            // network output for the final layer, requantized codes
            // otherwise.
            let mut final_out: Option<&mut Vec<f32>> = if is_final {
                let o = out.as_deref_mut().ok_or(PrimeError::MappingMismatch {
                    reason: "final stage requires an output buffer".to_string(),
                })?;
                o.clear();
                o.resize(plan.outputs, 0.0);
                Some(o)
            } else {
                next_codes.clear();
                next_codes.resize(plan.outputs, 0);
                None
            };
            match plan.op {
                PlannedOp::Fc => {
                    bank.buffer_mut().store(plan.in_addr, codes)?;
                    Self::merge_reference_into(
                        &plan.tiles,
                        bank,
                        codes,
                        plan.outputs,
                        &plan.bias_units,
                        analog.as_mut().map(|(noise, rng)| (*noise, &mut **rng)),
                        merge_acc,
                        bank_scratch,
                        tile_out,
                        merged,
                    )?;
                    for (o, &v) in merged.iter().enumerate() {
                        Self::emit(
                            plan, final_unit, fwd_code_max, o, v, next_codes, &mut final_out,
                        );
                    }
                }
                PlannedOp::Conv {
                    in_ch,
                    kernel,
                    padding,
                    in_h,
                    in_w,
                    out_h,
                    out_w,
                    resident,
                    chunk_pixels,
                    ..
                } => {
                    let out_ch = plan.outputs / (out_h * out_w);
                    if resident {
                        // Weight-stationary row-reuse schedule: the
                        // kernel input rows a row of output pixels reads
                        // stay resident in the FF buffer (halo rows
                        // reused across output rows), windows gather from
                        // the staged rows, and evaluation batches
                        // chunk_pixels output pixels so each tile's latch
                        // load amortizes over the whole chunk. The fixed
                        // chunk-then-tile-then-pixel order keeps per-bank
                        // RNG draws identical across the serial, batched,
                        // and pipelined engines.
                        let window_rows = in_ch * kernel * kernel;
                        let slot_w = in_ch * in_w;
                        let ring_base = plan.in_addr.0;
                        let chunk_addr = BufAddr(ring_base + (kernel * slot_w) as u64);
                        ring.clear();
                        ring.resize(kernel * slot_w, 0);
                        let mut staged_rows = 0usize;
                        for oy in 0..out_h {
                            // Stage the not-yet-resident input rows this
                            // output row reads; rows staged for earlier
                            // output rows are the reused halo.
                            let need = (oy + kernel).saturating_sub(padding).min(in_h);
                            let t = phase_mark(conv_phases.is_some());
                            while staged_rows < need {
                                let iy = staged_rows;
                                let slot = (iy % kernel) * slot_w;
                                for ic in 0..in_ch {
                                    let base = (ic * in_h + iy) * in_w;
                                    bank.buffer_mut().store(
                                        BufAddr(ring_base + (slot + ic * in_w) as u64),
                                        &codes[base..base + in_w],
                                    )?;
                                }
                                // Read the slot back: gathers consume the
                                // buffer-resident rows through the
                                // scratch mirror.
                                bank.buffer_mut().load_into(
                                    BufAddr(ring_base + slot as u64),
                                    slot_w,
                                    row_slot,
                                )?;
                                ring[slot..slot + slot_w].copy_from_slice(row_slot);
                                staged_rows += 1;
                            }
                            phase_add(&mut conv_phases, t, |ph| &mut ph.stage_ns);
                            let mut ox0 = 0usize;
                            while ox0 < out_w {
                                let cp = chunk_pixels.min(out_w - ox0);
                                let t = phase_mark(conv_phases.is_some());
                                win_chunk.clear();
                                for p in 0..cp {
                                    Self::gather_window_from_ring(
                                        &plan.op, ring, oy, ox0 + p, win_chunk,
                                    );
                                }
                                phase_add(&mut conv_phases, t, |ph| &mut ph.gather_ns);
                                let t = phase_mark(conv_phases.is_some());
                                bank.buffer_mut().store(chunk_addr, win_chunk)?;
                                phase_add(&mut conv_phases, t, |ph| &mut ph.stage_ns);
                                let t = phase_mark(conv_phases.is_some());
                                chunk_acc.clear();
                                chunk_acc.resize_with(cp * out_ch, PrecisionController::new);
                                for p in 0..cp {
                                    let regs = &mut chunk_acc[p * out_ch..(p + 1) * out_ch];
                                    for (o, &b) in regs.iter_mut().zip(&plan.bias_units) {
                                        o.accumulate(b, 0);
                                    }
                                }
                                for tile in &plan.tiles {
                                    let (r0, r1) = tile.rows;
                                    // One latch load serves every pixel
                                    // of the chunk for this tile.
                                    bank.execute(Command::Load {
                                        from: chunk_addr,
                                        to: FfAddr { mat: tile.mat, offset: 0 },
                                        bytes: (win_chunk.len() * 8) as u64,
                                    })?;
                                    let (c0, c1) = tile.cols;
                                    for p in 0..cp {
                                        let win = &win_chunk
                                            [p * window_rows + r0..p * window_rows + r1];
                                        match analog.as_mut() {
                                            None => bank.compute_mat_words_into(
                                                tile.mat,
                                                win,
                                                bank_scratch,
                                                tile_out,
                                            )?,
                                            Some((noise, rng)) => bank
                                                .compute_mat_words_analog_into(
                                                    tile.mat,
                                                    win,
                                                    noise,
                                                    &mut **rng,
                                                    bank_scratch,
                                                    tile_out,
                                                )?,
                                        }
                                        for (i, &v) in
                                            tile_out.iter().enumerate().take(c1 - c0)
                                        {
                                            chunk_acc[p * out_ch + c0 + i]
                                                .accumulate(v, tile.shift);
                                        }
                                    }
                                }
                                phase_add(&mut conv_phases, t, |ph| &mut ph.eval_ns);
                                let t = phase_mark(conv_phases.is_some());
                                for p in 0..cp {
                                    let ox = ox0 + p;
                                    for oc in 0..out_ch {
                                        Self::emit(
                                            plan,
                                            final_unit,
                                            fwd_code_max,
                                            (oc * out_h + oy) * out_w + ox,
                                            chunk_acc[p * out_ch + oc].value(),
                                            next_codes,
                                            &mut final_out,
                                        );
                                    }
                                }
                                phase_add(&mut conv_phases, t, |ph| &mut ph.emit_ns);
                                ox0 += cp;
                            }
                        }
                    } else {
                        // Per-pixel fallback (diagnostic P020): the row
                        // ring exceeds the residency budget, so every
                        // output pixel stages its full im2col window.
                        // Output pixels outer, tiles inner keeps per-bank
                        // RNG draws identical across engines.
                        for oy in 0..out_h {
                            for ox in 0..out_w {
                                let t = phase_mark(conv_phases.is_some());
                                Self::gather_window(&plan.op, codes, oy, ox, window);
                                phase_add(&mut conv_phases, t, |ph| &mut ph.gather_ns);
                                let t = phase_mark(conv_phases.is_some());
                                bank.buffer_mut().store(plan.in_addr, window)?;
                                phase_add(&mut conv_phases, t, |ph| &mut ph.stage_ns);
                                let t = phase_mark(conv_phases.is_some());
                                Self::merge_reference_into(
                                    &plan.tiles,
                                    bank,
                                    window,
                                    out_ch,
                                    &plan.bias_units,
                                    analog.as_mut().map(|(noise, rng)| (*noise, &mut **rng)),
                                    merge_acc,
                                    bank_scratch,
                                    tile_out,
                                    merged,
                                )?;
                                phase_add(&mut conv_phases, t, |ph| &mut ph.eval_ns);
                                let t = phase_mark(conv_phases.is_some());
                                for (oc, &v) in merged.iter().enumerate() {
                                    Self::emit(
                                        plan,
                                        final_unit,
                                        fwd_code_max,
                                        (oc * out_h + oy) * out_w + ox,
                                        v,
                                        next_codes,
                                        &mut final_out,
                                    );
                                }
                                phase_add(&mut conv_phases, t, |ph| &mut ph.emit_ns);
                            }
                        }
                    }
                }
                PlannedOp::Pool { channels, in_h, in_w, window: win, .. } => {
                    let (oh, ow) = (in_h / win, in_w / win);
                    for c in 0..channels {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                Self::gather_pool_window(&plan.op, codes, c, oy, ox, window);
                                // Stage the candidates for the pooling
                                // unit's registers.
                                bank.buffer_mut().store(plan.in_addr, window)?;
                                let m = Self::pool_reduce(&plan.op, window)?;
                                Self::emit(
                                    plan,
                                    final_unit,
                                    fwd_code_max,
                                    (c * oh + oy) * ow + ox,
                                    m,
                                    next_codes,
                                    &mut final_out,
                                );
                            }
                        }
                    }
                }
            }
            if let (Some(started), Some(sink)) = (stopwatch, layer_ns.as_deref_mut()) {
                sink.push(started.elapsed().as_secs_f64() * 1e9);
            }
            if is_final {
                return Ok(());
            }
            std::mem::swap(codes, next_codes);
            // FC activations are buffer-resident between layers; conv and
            // pool feature maps stay in the Mem subarrays (only windows
            // and boundary bursts touch the buffer).
            if matches!(plan.op, PlannedOp::Fc) {
                bank.buffer_mut().store(plan.out_addr, codes)?;
            }
        }
        Ok(())
    }

    /// Runs one inference through a multi-bank pipelined plan serially:
    /// stage by stage, moving the activation vector between banks with
    /// the stage transfer protocol at each boundary. Allocating
    /// convenience wrapper (the batched engines in
    /// [`PrimeSystem`](crate::PrimeSystem) reuse scratches instead).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] if `banks` is shorter than
    /// the plan's span, or buffer/mat errors.
    pub fn infer_pipelined(
        &self,
        banks: &mut [BankController],
        input: &[f32],
    ) -> Result<Vec<f32>, PrimeError> {
        if banks.len() < self.banks_spanned() {
            return Err(PrimeError::MappingMismatch {
                reason: format!(
                    "plan spans {} banks but {} were provided",
                    self.banks_spanned(),
                    banks.len()
                ),
            });
        }
        let mut scratch = InferScratch::new();
        let mut codes = Vec::new();
        let mut out = Vec::new();
        self.quantize_input(input, &mut codes)?;
        let last = self.stage_count() - 1;
        for s in 0..=last {
            let bank_idx = self.stage_bank(s);
            if s > 0 {
                let prev = self.stage_bank(s - 1);
                let (head, tail) = banks.split_at_mut(bank_idx);
                self.stage_transfer_out(s - 1, &mut head[prev], &mut codes)?;
                self.stage_transfer_in(s, &mut tail[0], &codes)?;
            }
            let out_opt = if s == last { Some(&mut out) } else { None };
            self.run_stage_impl(
                s,
                &mut banks[bank_idx],
                NoAnalog::None,
                &mut scratch,
                &mut codes,
                out_opt,
                None,
                None,
            )?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prime_nn::{Conv2d, FullyConnected, Pool2d};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn relu_net(rng: &mut SmallRng) -> Network {
        let mut net = Network::new(vec![
            Layer::Fc(FullyConnected::new(20, 12, Activation::Relu)),
            Layer::Fc(FullyConnected::new(12, 4, Activation::Identity)),
        ])
        .expect("widths match");
        net.init_random(rng);
        net
    }

    /// A CNN-1-class stack: padded conv, winner-code max pooling,
    /// 1/n-weight mean pooling, and an FC head.
    fn conv_pool_net(rng: &mut SmallRng) -> Network {
        let mut net = Network::new(vec![
            Layer::Conv(Conv2d::new(1, 3, 3, 8, 8, 1, Activation::Relu)),
            Layer::Pool(Pool2d::new(PoolKind::Max, 3, 8, 8, 2)),
            Layer::Pool(Pool2d::new(PoolKind::Mean, 3, 4, 4, 2)),
            Layer::Fc(FullyConnected::new(12, 4, Activation::Identity)),
        ])
        .expect("widths match");
        net.init_random(rng);
        net
    }

    fn image_input(len: usize, seed: usize) -> Vec<f32> {
        (0..len)
            .map(|i| (((i * 7 + seed * 5) % 13) as f32) / 13.0)
            .collect()
    }

    #[test]
    fn command_runner_tracks_software_outputs() {
        let mut rng = SmallRng::seed_from_u64(21);
        let net = relu_net(&mut rng);
        let input: Vec<f32> = (0..20).map(|i| ((i * 7 % 13) as f32) / 13.0).collect();
        let mut controller = BankController::new(2, 8, 4096, 8192);
        let mut runner = CommandRunner::compile(&net, &mut controller, &input).unwrap();
        let hw = runner.infer(&mut controller, &input).unwrap();
        let sw = net.forward(&input).unwrap();
        let max = sw.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(0.2);
        for (a, b) in hw.iter().zip(&sw) {
            assert!((a - b).abs() / max < 0.25, "hw {a} vs sw {b}");
        }
        assert!(runner.mats_used() >= 2);
    }

    #[test]
    fn conv_pool_runner_tracks_software_outputs() {
        let mut rng = SmallRng::seed_from_u64(31);
        let net = conv_pool_net(&mut rng);
        let input = image_input(64, 1);
        let mut controller = BankController::new(2, 8, 4096, 8192);
        let mut runner = CommandRunner::compile(&net, &mut controller, &input).unwrap();
        // Conv needs one mat, the FC head another; pooling needs none.
        assert_eq!(runner.mats_used(), 2);
        let hw = runner.infer(&mut controller, &input).unwrap();
        let sw = net.forward(&input).unwrap();
        assert_eq!(hw.len(), sw.len());
        let max = sw.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(0.2);
        for (a, b) in hw.iter().zip(&sw) {
            assert!((a - b).abs() / max < 0.3, "hw {a} vs sw {b}");
        }
    }

    #[test]
    fn conv_runner_agrees_on_argmax_across_inputs() {
        let mut rng = SmallRng::seed_from_u64(32);
        let net = conv_pool_net(&mut rng);
        let calib = image_input(64, 0);
        let mut controller = BankController::new(2, 8, 4096, 8192);
        let mut runner = CommandRunner::compile(&net, &mut controller, &calib).unwrap();
        let mut agree = 0;
        let trials = 10;
        for t in 0..trials {
            let input = image_input(64, t + 1);
            let hw = runner.infer(&mut controller, &input).unwrap();
            let sw = net.forward(&input).unwrap();
            if argmax(&hw) == argmax(&sw) {
                agree += 1;
            }
        }
        assert!(agree >= trials - 2, "only {agree}/{trials} argmax agreements");
    }

    #[test]
    fn large_mean_pool_windows_compile_after_rounding() {
        // A 4x4 mean-pool window (n = 16) used to collapse to a zero
        // conductance level under floor quantization; round-to-nearest
        // keeps it programmable.
        let mut rng = SmallRng::seed_from_u64(33);
        let mut net = Network::new(vec![
            Layer::Conv(Conv2d::new(1, 2, 3, 8, 8, 1, Activation::Relu)),
            Layer::Pool(Pool2d::new(PoolKind::Mean, 2, 8, 8, 4)),
            Layer::Fc(FullyConnected::new(8, 3, Activation::Identity)),
        ])
        .expect("widths match");
        net.init_random(&mut rng);
        let input = image_input(64, 2);
        let mut controller = BankController::new(2, 8, 4096, 8192);
        let mut runner = CommandRunner::compile(&net, &mut controller, &input).unwrap();
        let hw = runner.infer(&mut controller, &input).unwrap();
        let sw = net.forward(&input).unwrap();
        let max = sw.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(0.2);
        for (a, b) in hw.iter().zip(&sw) {
            assert!((a - b).abs() / max < 0.3, "hw {a} vs sw {b}");
        }
    }

    #[test]
    fn command_runner_agrees_on_argmax_across_inputs() {
        let mut rng = SmallRng::seed_from_u64(22);
        let net = relu_net(&mut rng);
        let calib: Vec<f32> = vec![0.5; 20];
        let mut controller = BankController::new(2, 8, 4096, 8192);
        let mut runner = CommandRunner::compile(&net, &mut controller, &calib).unwrap();
        let mut agree = 0;
        let trials = 10;
        for t in 0..trials {
            let input: Vec<f32> = (0..20)
                .map(|i| (((i + t) * 11 % 17) as f32) / 17.0)
                .collect();
            let hw = runner.infer(&mut controller, &input).unwrap();
            let sw = net.forward(&input).unwrap();
            if argmax(&hw) == argmax(&sw) {
                agree += 1;
            }
        }
        assert!(
            agree >= trials - 2,
            "only {agree}/{trials} argmax agreements"
        );
    }

    #[test]
    fn command_runner_rejects_unsupported_layers() {
        let mut rng = SmallRng::seed_from_u64(23);
        let mut net = Network::new(vec![Layer::Fc(FullyConnected::new(
            8,
            4,
            Activation::Sigmoid,
        ))])
        .expect("widths match");
        net.init_random(&mut rng);
        let mut controller = BankController::new(1, 4, 1024, 1024);
        let err = CommandRunner::compile(&net, &mut controller, &[0.5; 8]);
        assert!(matches!(err, Err(PrimeError::MappingMismatch { .. })));
    }

    #[test]
    fn timed_inference_matches_plain_and_labels_layers() {
        let mut rng = SmallRng::seed_from_u64(31);
        let net = conv_pool_net(&mut rng);
        let mut controller = BankController::new(2, 8, 4096, 8192);
        let runner =
            CommandRunner::compile(&net, &mut controller, &[0.5; 64]).expect("fits one bank");
        let input = image_input(64, 3);
        let mut scratch = InferScratch::new();
        let (mut timed, mut plain, mut ns) = (Vec::new(), Vec::new(), Vec::new());
        runner
            .infer_timed_into(&mut controller, &input, &mut scratch, &mut timed, &mut ns)
            .expect("runs");
        runner
            .infer_into(&mut controller, &input, &mut scratch, &mut plain)
            .expect("runs");
        assert_eq!(timed, plain, "the stopwatch must not perturb the datapath");
        let labels = runner.layer_labels();
        assert_eq!(ns.len(), labels.len(), "one timing entry per planned layer");
        assert_eq!(
            labels,
            vec![
                "conv3x3 1-3ch 8x8 relu",
                "maxpool2x2 3ch",
                "meanpool2x2 3ch",
                "fc 12-4",
            ]
        );
        assert!(ns.iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn command_runner_rejects_wrong_sized_calibration() {
        let mut rng = SmallRng::seed_from_u64(29);
        let mut net = Network::new(vec![
            Layer::Conv(Conv2d::new(1, 2, 3, 6, 6, 1, Activation::Relu)),
            Layer::Fc(FullyConnected::new(72, 4, Activation::Identity)),
        ])
        .expect("widths match");
        net.init_random(&mut rng);
        let mut controller = BankController::new(2, 8, 4096, 8192);
        // 3 calibration values for a 36-input network: a typed error,
        // not an out-of-bounds index in window gathering.
        let err = CommandRunner::compile(&net, &mut controller, &[0.5; 3]);
        assert!(matches!(err, Err(PrimeError::MappingMismatch { .. })));
    }

    #[test]
    fn command_runner_rejects_sigmoid_conv() {
        let mut rng = SmallRng::seed_from_u64(26);
        let mut net = Network::new(vec![
            Layer::Conv(Conv2d::new(1, 2, 3, 6, 6, 1, Activation::Sigmoid)),
            Layer::Fc(FullyConnected::new(72, 4, Activation::Identity)),
        ])
        .expect("widths match");
        net.init_random(&mut rng);
        let mut controller = BankController::new(2, 8, 4096, 8192);
        let err = CommandRunner::compile(&net, &mut controller, &[0.5; 36]);
        assert!(matches!(err, Err(PrimeError::MappingMismatch { .. })));
    }

    #[test]
    fn capability_diagnostics_flag_sigmoid_layers() {
        let net = Network::new(vec![
            Layer::Conv(Conv2d::new(1, 2, 3, 6, 6, 1, Activation::Sigmoid)),
            Layer::Pool(Pool2d::new(PoolKind::Max, 2, 6, 6, 2)),
            Layer::Fc(FullyConnected::new(18, 4, Activation::Sigmoid)),
        ])
        .expect("widths match");
        let diags = CommandRunner::capability_diagnostics(&net);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.code == prime_analyze::Code::P017));
        let clean = conv_pool_net(&mut SmallRng::seed_from_u64(1));
        assert!(CommandRunner::capability_diagnostics(&clean).is_empty());
    }

    #[test]
    fn command_runner_respects_mat_budget() {
        let mut rng = SmallRng::seed_from_u64(24);
        // 600-input layer needs 3 row tiles; give the controller only 2 mats.
        let mut net = Network::new(vec![Layer::Fc(FullyConnected::new(
            600,
            4,
            Activation::Identity,
        ))])
        .expect("widths match");
        net.init_random(&mut rng);
        let mut controller = BankController::new(1, 2, 2048, 1024);
        let err = CommandRunner::compile(&net, &mut controller, &vec![0.5; 600]);
        assert!(matches!(err, Err(PrimeError::MappingMismatch { .. })));
    }

    #[test]
    fn inference_is_driven_by_commands() {
        let mut rng = SmallRng::seed_from_u64(25);
        let net = relu_net(&mut rng);
        let input: Vec<f32> = vec![0.4; 20];
        let mut controller = BankController::new(2, 8, 4096, 8192);
        let mut runner = CommandRunner::compile(&net, &mut controller, &input).unwrap();
        let before = controller.log().len();
        runner.infer(&mut controller, &input).unwrap();
        let issued = controller.log().len() - before;
        // At least one load per tile per layer.
        assert!(
            issued >= runner.mats_used(),
            "only {issued} commands issued"
        );
    }

    fn argmax(v: &[f32]) -> usize {
        let mut best = 0;
        for (i, &x) in v.iter().enumerate() {
            if x > v[best] {
                best = i;
            }
        }
        best
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// Row-ring gathering is element-identical to the naive im2col
        /// gather for every output pixel, across padded shapes. The test
        /// stages rows into the ring exactly as the resident executor
        /// does: slot `iy % kernel`, layout `[slot][in_ch][in_w]`,
        /// staging up to `need` rows before each output row.
        #[test]
        fn ring_gather_matches_naive_window(
            in_ch in 1usize..4,
            kernel in 1usize..5,
            pad in 0usize..3,
            in_h in 5usize..11,
            in_w in 5usize..11,
            seed in proptest::prelude::any::<u64>(),
        ) {
            use rand::Rng;
            let padding = pad.min(kernel.saturating_sub(1));
            let out_h = in_h + 2 * padding - kernel + 1;
            let out_w = in_w + 2 * padding - kernel + 1;
            let op = PlannedOp::Conv {
                in_ch,
                out_ch: 1,
                kernel,
                padding,
                in_h,
                in_w,
                out_h,
                out_w,
                resident: true,
                chunk_pixels: 1,
            };
            let mut rng = SmallRng::seed_from_u64(seed);
            let codes: Vec<i64> =
                (0..in_ch * in_h * in_w).map(|_| rng.gen_range(0..64)).collect();
            let mut ring = vec![0i64; kernel * in_ch * in_w];
            let mut staged_rows = 0usize;
            let (mut from_ring, mut naive) = (Vec::new(), Vec::new());
            for oy in 0..out_h {
                let need = (oy + kernel).saturating_sub(padding).min(in_h);
                while staged_rows < need {
                    let iy = staged_rows;
                    let slot = iy % kernel;
                    for ic in 0..in_ch {
                        let src = (ic * in_h + iy) * in_w;
                        let dst = (slot * in_ch + ic) * in_w;
                        ring[dst..dst + in_w].copy_from_slice(&codes[src..src + in_w]);
                    }
                    staged_rows += 1;
                }
                for ox in 0..out_w {
                    from_ring.clear();
                    CommandRunner::gather_window_from_ring(&op, &ring, oy, ox, &mut from_ring);
                    CommandRunner::gather_window(&op, &codes, oy, ox, &mut naive);
                    proptest::prop_assert_eq!(
                        &from_ring, &naive,
                        "pixel ({}, {}) k{} p{} {}x{}", oy, ox, kernel, padding, in_h, in_w
                    );
                }
            }
        }
    }

    /// The chunked weight-stationary path (row ring resident) and the
    /// per-pixel fallback produce bit-identical quantized outputs on a
    /// CNN-1-shaped stack. The fallback is forced by a buffer too small
    /// for the residency budget, not by a code switch, so this also pins
    /// the `conv_staging` decision for both controller geometries.
    #[test]
    fn chunked_and_per_pixel_conv_paths_are_bit_identical() {
        let mut rng = SmallRng::seed_from_u64(41);
        let mut net = Network::new(vec![
            Layer::Conv(Conv2d::new(1, 5, 5, 28, 28, 0, Activation::Relu)),
            Layer::Pool(Pool2d::new(PoolKind::Max, 5, 24, 24, 2)),
            Layer::Fc(FullyConnected::new(720, 10, Activation::Identity)),
        ])
        .expect("widths match");
        net.init_random(&mut rng);
        let input = image_input(28 * 28, 5);

        // Ring 5*28 + chunk 10*25 = 390 words: inside 4096/4, outside 1024/4.
        let mut resident_ctl = BankController::new(2, 8, 4096, 8192);
        let resident_runner =
            CommandRunner::compile(&net, &mut resident_ctl, &input).expect("compiles");
        let mut fallback_ctl = BankController::new(2, 8, 1024, 8192);
        let fallback_runner =
            CommandRunner::compile(&net, &mut fallback_ctl, &input).expect("compiles");
        assert!(
            matches!(
                resident_runner.layers[0].op,
                PlannedOp::Conv { resident: true, chunk_pixels: 10, .. }
            ),
            "4096-word buffer must take the weight-stationary schedule"
        );
        assert!(
            matches!(
                fallback_runner.layers[0].op,
                PlannedOp::Conv { resident: false, chunk_pixels: 1, .. }
            ),
            "1024-word buffer must fall back to per-pixel staging"
        );

        let mut scratch = InferScratch::new();
        let (mut chunked, mut per_pixel) = (Vec::new(), Vec::new());
        resident_runner
            .infer_into(&mut resident_ctl, &input, &mut scratch, &mut chunked)
            .expect("runs");
        fallback_runner
            .infer_into(&mut fallback_ctl, &input, &mut scratch, &mut per_pixel)
            .expect("runs");
        assert_eq!(
            chunked, per_pixel,
            "chunked and per-pixel conv paths must be digitally bit-identical"
        );
    }
}
